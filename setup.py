"""Setup shim.

The execution environment is fully offline and has no ``wheel`` package,
so PEP 517 editable builds (which require ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-build-isolation --no-use-pep517`` fall
back to the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
