#!/bin/sh
# Repo check: lint + the tier-1 test suite.
#
#   ./check.sh            # lint + tests
#   ./check.sh --no-lint  # tests only
#
# Both stages always run; the script exits non-zero if either fails,
# and lint violations alone are enough to fail it.
set -u
cd "$(dirname "$0")"

status=0

# Build artifacts must never be committed: fail if any tracked file is
# a compiled bytecode file (they once were, and they bloat every diff).
echo "== tracked bytecode guard =="
if git ls-files | grep -q '\.pyc$'; then
    echo "tracked .pyc files found — 'git rm --cached' them:" >&2
    git ls-files | grep '\.pyc$' >&2
    status=1
fi

if [ "${1:-}" != "--no-lint" ]; then
    echo "== ruff =="
    if command -v ruff >/dev/null 2>&1; then
        ruff check src tests examples || status=1
    elif python -m ruff --version >/dev/null 2>&1; then
        python -m ruff check src tests examples || status=1
    else
        echo "ruff not installed; skipping lint (CI runs it)"
    fi
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q || status=1

# A ~30s deterministic simulation smoke: three fixed seeds through the
# fault-simulation harness (drops, duplicates, delays, corruption,
# crashes, partitions).  Any invariant violation prints a one-line
# `--seed N` repro string and fails the check.
echo "== sim smoke (seeds 3..5) =="
PYTHONPATH=src python -m repro.simtest --runs 3 --start-seed 3 --steps 25 \
    || status=1

echo "== sim smoke, pipelined engine (seeds 3..5) =="
PYTHONPATH=src python -m repro.simtest --runs 3 --start-seed 3 --steps 25 \
    --pipeline || status=1

# Durable-store smoke: one fixed power-fail schedule through the WAL
# recovery invariant (every acked PUT before a crash served after it).
echo "== sim smoke, power-fail recovery (seed 3) =="
PYTHONPATH=src python -m repro.simtest --runs 1 --start-seed 3 --steps 25 \
    --power-fail || status=1

# Migration smoke: three fixed seeds streaming live joins/drains (with
# power failures on migration participants) through the single-owner
# invariant.
echo "== sim smoke, online resharding (seeds 3..5) =="
PYTHONPATH=src python -m repro.simtest --runs 3 --start-seed 3 --steps 25 \
    --migrate || status=1

# Adaptive-depth smoke: the same walk with the AIMD controller sizing
# the engine window; invariant 8 replays each schedule at depth 1 and
# requires byte-identical per-call results.
echo "== sim smoke, adaptive depth (seeds 3..5) =="
PYTHONPATH=src python -m repro.simtest --runs 3 --start-seed 3 --steps 25 \
    --pipeline --adaptive || status=1

# Pipelined-engine benchmark smoke: a reduced depth sweep that still
# exercises grouped dispatch, coalescing, and the result-identity check.
echo "== bench pipeline smoke =="
PYTHONPATH=src python -m repro.bench pipeline --quick || status=1

# Durability benchmark smoke: WAL logging overhead + one recovery sweep.
echo "== bench durable smoke =="
PYTHONPATH=src python -m repro.bench durable --quick || status=1

# Online-resharding benchmark smoke: foreground throughput during a
# streaming join vs the no-migration baseline and the blocking copy.
echo "== bench migrate smoke =="
PYTHONPATH=src python -m repro.bench migrate --quick || status=1

# Adaptive-depth benchmark smoke: static depths vs depth="auto", plus
# the same auto engine under a concurrent streaming join.
echo "== bench adaptive smoke =="
PYTHONPATH=src python -m repro.bench adaptive --quick || status=1

# Planned-reshard benchmark smoke: one planned multi-join window vs N
# serialized windows, plus the weighted-ring placement check.
echo "== bench reshard smoke =="
PYTHONPATH=src python -m repro.bench reshard --quick || status=1

if [ "$status" -ne 0 ]; then
    echo "CHECK FAILED" >&2
fi
exit "$status"
