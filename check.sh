#!/bin/sh
# Repo check: lint (when ruff is available) + the tier-1 test suite.
#
#   ./check.sh            # lint + tests
#   ./check.sh --no-lint  # tests only
set -eu
cd "$(dirname "$0")"

if [ "${1:-}" != "--no-lint" ]; then
    if command -v ruff >/dev/null 2>&1; then
        echo "== ruff =="
        ruff check src tests
    else
        echo "== ruff not installed; skipping lint =="
    fi
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q
