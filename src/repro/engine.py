"""Concurrent pipelined execution engine for store round trips.

Every layer below this one is synchronous: ``RpcClient.call`` blocks on
its own response, so a GET to shard A serializes behind a GET to shard
B even though distinct shards are distinct machines.  The engine drives
the pipelined ``submit()/wait()`` surface instead — up to ``depth``
correlated requests are put on the wire before the first response is
consumed — and adds **single-flight tag coalescing**: identical
in-flight tags share one store round trip, with followers handed the
leader's response.

Simulated-time correctness
--------------------------
The simulation executes on one OS thread, so "concurrency" here is
*logical*: the wire order of a round is submit×N then wait×N, and every
operation charges the same per-machine SimClock cycles it would charge
on the serial path (results, counters, and invariants are bit-identical
by construction).  What changes is the *schedule*: overlapped spans
advance per-machine sim time concurrently, not additively.  The engine
therefore reports a round's elapsed simulated time as its **critical
path**::

    makespan = max( max_i lane_busy[i],      # each of W client lanes
                    max_s shard_busy[s],     # each shard machine
                    max_op (app_op + shard_op) )  # any single op's chain

where ``lane_busy`` spreads the client-side (app machine) cost of the
round's ops over ``workers`` lanes round-robin, ``shard_busy`` is each
shard clock's advance during the round, and the last term keeps one
operation's own send→serve→receive chain serial.  With ``depth=1,
workers=1`` the expression degenerates to the exact serial sum, and a
deployment whose store shares the application's machine (no second
clock to overlap with) is forced to a single lane — one machine cannot
overlap with itself.

The asynchronous PUT flusher uses :meth:`PipelineEngine.background` to
account its drains as one extra lane that overlaps the next round of
foreground work; :meth:`settle` folds any un-overlapped remainder back
in serially.

Adaptive depth
--------------
``EngineConfig(depth="auto")`` replaces the static submit window with an
:class:`AdaptiveDepthController` — AIMD over the engine's virtual-clock
rounds: depth grows (slow-start doubling, then additively) while each
round's per-op critical-path latency keeps up with the best the window
has seen, and shrinks multiplicatively on failure, circuit-breaker, or
PUT back-pressure signals.  The controller only ever sees
**replay-deterministic** observations: round makespans here are sums of
modeled wire/crypto/store charges (``charge_compute``'s measured host
time never lands inside an engine round), so the decision sequence is a
pure function of the op stream — a property the simulation harness
digests and replays.  While the shard ring holds a dual-ownership
migration window the controller additionally caps depth and reports the
capped-off slots via :meth:`PipelineEngine.background_budget`, which a
:class:`~repro.cluster.migration.RangeMigrator` uses to widen its
between-rounds hand-off pacing — foreground latency stays bounded and
the freed slots go to the migration instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, Union

from .errors import ChannelError, ProtocolError, TransportError
from .net.messages import GetRequest, Message
from .obs.tracer import NULL_TRACER

# Failures that mean "the store did not serve this op" — the runtime
# degrades (or surfaces) them per item, exactly like the serial path.
_ENGINE_FAILURES = (TransportError, ChannelError, ProtocolError)

#: ``EngineConfig.depth`` sentinel selecting the adaptive controller.
AUTO_DEPTH = "auto"


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the pipelined engine."""

    #: Outstanding requests per round (submit window), or ``"auto"`` to
    #: let an :class:`AdaptiveDepthController` size each round between
    #: ``min_depth`` and ``max_depth``.
    depth: Union[int, str] = 8
    #: Client-side worker lanes the round's app cost is spread over.
    #: Clamped to the depth bound: lanes beyond the submit window can
    #: never hold an op (see :meth:`PipelineEngine._lanes`).
    workers: int = 4
    #: Single-flight: identical in-flight tags share one round trip.
    coalesce: bool = True
    #: Adaptive-mode depth bounds (ignored for a static ``depth``).
    min_depth: int = 1
    max_depth: int = 32

    def __post_init__(self):
        if isinstance(self.depth, str):
            if self.depth != AUTO_DEPTH:
                raise ProtocolError(
                    f"engine depth must be an int >= 1 or {AUTO_DEPTH!r}"
                )
        elif self.depth < 1:
            raise ProtocolError("engine depth must be >= 1")
        if self.workers < 1:
            raise ProtocolError("engine workers must be >= 1")
        if self.min_depth < 1:
            raise ProtocolError("engine min_depth must be >= 1")
        if self.max_depth < self.min_depth:
            raise ProtocolError("engine max_depth must be >= min_depth")
        bound = self.max_depth if self.adaptive else self.depth
        if self.workers > bound:
            object.__setattr__(self, "workers", bound)

    @property
    def adaptive(self) -> bool:
        return self.depth == AUTO_DEPTH

    @property
    def initial_depth(self) -> int:
        """Depth of the first round: the floor in auto mode (the
        controller slow-starts upward), the static value otherwise."""
        return self.min_depth if self.adaptive else self.depth


@dataclass(frozen=True)
class DepthObservation:
    """One engine round reduced to the deterministic signals the
    adaptive controller may consume.

    ``makespan_cycles`` is the round's critical-path advance — a sum of
    modeled wire/crypto/store charges, never measured host compute — so
    every field replays byte-identically for a fixed op stream.
    """

    ops: int
    makespan_cycles: float
    failures: int = 0
    backpressure: bool = False
    migration_active: bool = False
    #: False for a tail round that carried fewer ops than the submit
    #: window allowed: its per-op latency cannot amortize the fixed
    #: round costs, so it is no evidence for growing or shrinking.
    full: bool = True

    @property
    def per_op_cycles(self) -> float:
        return self.makespan_cycles / max(1, self.ops)


class AdaptiveDepthController:
    """AIMD governor for the engine's per-round submit window.

    The state machine is deliberately pure: no randomness, no wall
    clock — :meth:`observe` maps the previous state plus one
    :class:`DepthObservation` to the next depth, so identical
    observation streams always replay the identical decision sequence
    (pinned by property tests and the simulation harness's trace
    digest).

    Decision rule, in precedence order:

    1. **Shrink** multiplicatively (halve, floored at ``min_depth``)
       when the round carried failures (circuit-breaker opens, failover
       retries surface here) or PUT back-pressure — precedence over any
       grow signal, and the learned latency floor resets because the
       conditions it was learned under are gone.
    2. **Shrink** the same way when the round's per-op latency exceeds
       ``slow_factor`` × the best the current window has seen.
    3. **Grow** while per-op latency keeps up with the window's best
       (within ``grow_tolerance``): doubling below the slow-start
       threshold left by the last shrink, additively above it.
    4. Otherwise **hold**.

    A **migration cap** rides on top: while the shard ring holds a
    dual-ownership window, the returned depth is clamped to
    ``migration_cap`` and the clamped-off slots are published as
    :attr:`yielded_slots` — the engine's :meth:`background_budget`
    hands them to the streaming migrator.
    """

    def __init__(
        self,
        min_depth: int = 1,
        max_depth: int = 32,
        migration_cap: int | None = None,
        slow_factor: float = 1.25,
        grow_tolerance: float = 1.05,
        window: int = 8,
    ):
        if min_depth < 1:
            raise ProtocolError("min_depth must be >= 1")
        if max_depth < min_depth:
            raise ProtocolError("max_depth must be >= min_depth")
        if migration_cap is None:
            migration_cap = max(min_depth, min(max_depth, 8))
        if not (min_depth <= migration_cap <= max_depth):
            raise ProtocolError("migration_cap must lie in [min, max]")
        self.min_depth = min_depth
        self.max_depth = max_depth
        self.migration_cap = migration_cap
        self.slow_factor = slow_factor
        self.grow_tolerance = grow_tolerance
        self.window = max(1, window)
        # AIMD state.  ``_raw_depth`` evolves uncapped; the published
        # ``depth`` is the raw value clamped under an active migration.
        self._raw_depth = min_depth
        self.depth = min_depth
        self._ssthresh = max_depth  # slow-start until the first shrink
        self._best_per_op = float("inf")
        self._window_best = float("inf")
        self._window_rounds = 0
        #: Depth slots the migration cap clamped off this round (the
        #: engine grants them to the migrator as background budget).
        self.yielded_slots = 0
        # Counters (all deterministic ints).
        self.decisions = 0
        self.changes = 0
        self.grows = 0
        self.shrinks = 0
        self.migration_capped = 0
        #: Decision log: ``(decision #, depth, reason)`` — digestible.
        self.log: list[tuple[int, int, str]] = []

    def round_depth(self, migration_active: bool = False) -> int:
        """Depth the next round should use (cap applied statelessly, so
        a window that opened mid-batch takes effect immediately)."""
        if migration_active:
            return min(self._raw_depth, self.migration_cap)
        return self._raw_depth

    def observe(self, obs: DepthObservation) -> int:
        """Fold one round's observation in; returns the next depth."""
        self.decisions += 1
        previous = self.depth
        per_op = obs.per_op_cycles
        raw = self._raw_depth
        if obs.failures > 0 or obs.backpressure:
            reason = "failures" if obs.failures > 0 else "backpressure"
            self._ssthresh = max(self.min_depth, raw // 2)
            raw = self._ssthresh
            # The latency floor was learned under conditions that no
            # longer hold; relearn it instead of shrinking forever.
            self._best_per_op = float("inf")
            self._window_best = float("inf")
            self._window_rounds = 0
        elif not obs.full:
            reason = "partial"
        elif per_op > self.slow_factor * self._best_per_op:
            reason = "slow-round"
            self._ssthresh = max(self.min_depth, raw // 2)
            raw = self._ssthresh
            # Reset the floor with the depth: a floor learned at a
            # deeper window is unreachable at the shrunk one, and
            # keeping it would wedge the governor at min_depth (every
            # post-shrink round looks "slow" forever).
            self._best_per_op = float("inf")
            self._window_best = float("inf")
            self._window_rounds = 0
        else:
            self._best_per_op = min(self._best_per_op, per_op)
            self._window_best = min(self._window_best, per_op)
            self._window_rounds += 1
            if self._window_rounds >= self.window:
                # Window decay: the floor relaxes to the recent best so
                # a stale unreachable optimum cannot wedge the governor.
                self._best_per_op = self._window_best
                self._window_best = float("inf")
                self._window_rounds = 0
            if per_op <= self.grow_tolerance * self._best_per_op:
                reason = "grow"
                raw = raw * 2 if raw < self._ssthresh else raw + 1
            else:
                reason = "hold"
        raw = max(self.min_depth, min(self.max_depth, raw))
        self._raw_depth = raw
        if obs.migration_active and raw > self.migration_cap:
            self.depth = self.migration_cap
            self.yielded_slots = raw - self.migration_cap
            self.migration_capped += 1
            reason += "+migration-cap"
        else:
            self.depth = raw
            self.yielded_slots = 0
        if self.depth != previous:
            self.changes += 1
            if self.depth > previous:
                self.grows += 1
            else:
                self.shrinks += 1
        self.log.append((self.decisions, self.depth, reason))
        return self.depth

    def log_digest(self) -> str:
        """SHA-256 over the decision log — byte-identical across
        replays of the same observation stream."""
        joined = "\n".join(f"{n}:{d}:{r}" for n, d, r in self.log)
        return hashlib.sha256(joined.encode()).hexdigest()


@dataclass
class EngineBatch:
    """Result of one pipelined fan-out.

    ``responses[i]`` is the store's response for ``requests[i]`` — or an
    exception instance when that op failed after retries.  Coalesced
    followers share their leader's response object; ``leader_of`` maps
    each follower position to its leader's position.
    """

    responses: list
    leader_of: dict[int, int] = field(default_factory=dict)

    @property
    def coalesced(self) -> int:
        return len(self.leader_of)


class PipelineEngine:
    """Multi-slot pipelining + coalescing over an RpcClient-shaped peer.

    Parameters
    ----------
    client:
        Anything with ``submit(request) -> id`` / ``wait(id) -> Message``
        — an :class:`~repro.net.rpc.RpcClient` or a
        :class:`~repro.cluster.router.ClusterRouter`.
    clock:
        The application machine's SimClock (client-side costs land here).
    shard_clocks:
        Mapping of shard id to that shard machine's SimClock, or a
        callable returning one (so restarted shards are re-read live).
        Clocks identical to ``clock`` are ignored: co-located work
        cannot overlap with the caller.
    """

    def __init__(
        self,
        client,
        clock,
        shard_clocks: Mapping[str, object] | Callable[[], Mapping[str, object]] | None = None,
        config: EngineConfig | None = None,
        tracer=NULL_TRACER,
    ):
        self.client = client
        self.clock = clock
        if shard_clocks is None:
            shard_clocks = {}
        self._shard_clocks = (
            shard_clocks if callable(shard_clocks) else (lambda: shard_clocks)
        )
        self.config = config or EngineConfig()
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Accounting (cycles).  makespan is the critical-path schedule
        # bound; serial is the plain sum a serial client would take.
        self.makespan_cycles = 0.0
        self.serial_cycles = 0.0
        self.rounds = 0
        self.ops = 0
        self.failures = 0
        self.coalesced_total = 0
        # Background (flusher) work carried into the next round.
        self._bg_app = 0.0
        self._bg_shard: dict[str, float] = {}
        #: The AIMD depth governor (``depth="auto"`` only).
        self.controller: AdaptiveDepthController | None = None
        if self.config.adaptive:
            self.controller = AdaptiveDepthController(
                min_depth=self.config.min_depth,
                max_depth=self.config.max_depth,
            )
        # Set by the runtime when a bounded PUT queue forces a drain;
        # consumed (and cleared) by the next round's depth observation.
        self._backpressure_pending = False

    # -- adaptive depth ------------------------------------------------------
    @property
    def depth_current(self) -> int:
        """The submit window the next round will use."""
        if self.controller is None:
            return self.config.depth
        return self.controller.round_depth(self._migration_active())

    def _migration_active(self) -> bool:
        """True while the client's shard ring holds a dual-ownership
        migration window (single-store clients never do)."""
        return bool(getattr(self.client, "in_transition", False))

    def note_backpressure(self) -> None:
        """Record that a bounded PUT queue forced a foreground drain —
        the adaptive controller treats the next round as congested."""
        self._backpressure_pending = True

    def background_budget(self, parallelism: int = 1) -> int:
        """Migration batches worth overlapping before the next
        foreground round: one baseline background-lane slot per unit of
        ``parallelism``, plus every depth slot the adaptive controller
        yielded while capped under a migration window.

        ``parallelism`` is the caller's count of independent transfer
        targets — a planned multi-shard window shipping ranges to N
        distinct gaining shards overlaps N transfers against one
        foreground round (distinct destination machines ingest
        concurrently), where a single-shard window gets the classic one
        baseline slot."""
        base = max(1, parallelism)
        if self.controller is None:
            return base
        return base + self.controller.yielded_slots

    def _observe_round(
        self, ops: int, makespan: float, failures: int, migration: bool
    ) -> None:
        if self.controller is None:
            return
        backpressure = self._backpressure_pending
        self._backpressure_pending = False
        previous = self.controller.depth
        depth = self.controller.observe(DepthObservation(
            ops=ops,
            makespan_cycles=makespan,
            failures=failures,
            backpressure=backpressure,
            migration_active=migration,
            full=ops >= self.controller.round_depth(migration),
        ))
        _, _, reason = self.controller.log[-1]
        self.tracer.event(
            "engine.depth_decision", clock=self.clock,
            prev=previous, depth=depth, reason=reason,
            ops=ops, failures=failures,
            backpressure=int(backpressure), migration=int(migration),
        )

    # -- clock plumbing ------------------------------------------------------
    def _remote_clocks(self) -> dict[str, object]:
        """Shard clocks that are genuinely other machines."""
        return {
            sid: c for sid, c in self._shard_clocks().items() if c is not self.clock
        }

    def _lanes(self, remote: Mapping[str, object], depth: int | None = None) -> int:
        # Without a remote machine there is nothing to overlap with:
        # every charge lands on the one clock, so the round is serial.
        if not remote:
            return 1
        if depth is None:
            depth = self.depth_current
        return max(1, min(self.config.workers, depth))

    # -- fan-out -------------------------------------------------------------
    def run_gets(self, requests: Sequence[Message]) -> EngineBatch:
        """Pipeline a list of GETs; coalesce duplicate in-flight tags.

        Exactly one store round trip is performed per distinct tag; the
        followers of a tag receive the leader's response object without
        touching the wire (and without charging any clock).  When the
        client can plan shard groups (``plan_gets``), each round fans out
        one sub-batch record per shard so the shards serve concurrently
        and the channel's AEAD cost stays amortized across the group.
        """
        requests = list(requests)
        responses: list = [None] * len(requests)
        leader_of: dict[int, int] = {}
        wire: list[int] = []
        if self.config.coalesce:
            leaders: dict[bytes, int] = {}
            for i, request in enumerate(requests):
                tag = request.tag if isinstance(request, GetRequest) else None
                if tag is None:
                    wire.append(i)
                    continue
                leader = leaders.setdefault(tag, i)
                if leader == i:
                    wire.append(i)
                else:
                    leader_of[i] = leader
        else:
            wire = list(range(len(requests)))
        self.coalesced_total += len(leader_of)
        grouped = hasattr(self.client, "plan_gets") and hasattr(
            self.client, "submit_gets"
        )
        start = 0
        while start < len(wire):
            depth = self.depth_current  # re-read: adaptive depth moves
            round_indices = wire[start:start + depth]
            start += depth
            ops = [(i, requests[i]) for i in round_indices]
            if grouped:
                self._run_get_round(ops, responses)
            else:
                self._run_round(ops, responses)
        for follower, leader in leader_of.items():
            responses[follower] = responses[leader]
        return EngineBatch(responses=responses, leader_of=leader_of)

    def run_puts(self, requests: Sequence[Message]) -> EngineBatch:
        """Pipeline a list of PUTs (never coalesced: every PUT wants its
        own durability verdict, and the store dedups identical tags).
        When the client can plan shard groups (``plan_puts``), each round
        ships one grouped sub-batch record per owner shard instead of
        per-item PUTs, so the shards absorb their copies concurrently."""
        requests = list(requests)
        responses: list = [None] * len(requests)
        grouped = hasattr(self.client, "plan_puts") and hasattr(
            self.client, "submit_puts"
        )
        start = 0
        while start < len(requests):
            depth = self.depth_current  # re-read: adaptive depth moves
            ops = [
                (i, requests[i])
                for i in range(start, min(start + depth, len(requests)))
            ]
            start += depth
            if grouped:
                self._run_put_round(ops, responses)
            else:
                self._run_round(ops, responses)
        return EngineBatch(responses=responses)

    def _run_get_round(self, ops: list, responses: list) -> None:
        """One pipelined GET round over the client's shard groups.

        The round's ops are partitioned by the client (one group per
        primary shard); each group ships as a single record, is served by
        its shard concurrently with the other groups, and its app-side
        send/receive cost occupies one worker lane.  Clock charges stay
        identical to the serial per-shard sub-batch path; only the
        makespan accounting interprets them as overlapped.
        """
        self._run_grouped_round(
            ops, responses, self.client.plan_gets,
            self.client.submit_gets, self.client.wait_gets,
        )

    def _run_put_round(self, ops: list, responses: list) -> None:
        """One pipelined PUT round over the client's shard groups (same
        schedule shape as :meth:`_run_get_round`; replicated copies are
        the client's concern and stay inside each group's slot)."""
        self._run_grouped_round(
            ops, responses, self.client.plan_puts,
            self.client.submit_puts, self.client.wait_puts,
        )

    def _run_grouped_round(
        self, ops: list, responses: list, plan, submit, wait
    ) -> None:
        remote = self._remote_clocks()
        migration = self._migration_active()
        failures0 = self.failures
        lanes = self._lanes(remote)
        round_start = {sid: c.snapshot() for sid, c in remote.items()}
        lane_busy = [0.0] * lanes
        chains: list[float] = []
        group_requests = [request for _, request in ops]
        groups = plan(group_requests)
        with self.tracer.span(
            "engine.round", clock=self.clock, ops=len(ops),
            groups=len(groups), lanes=lanes,
        ) as span:
            pending: list = []
            for slot, positions in enumerate(groups):
                sub = [group_requests[p] for p in positions]
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                handle = error = None
                try:
                    handle = submit(sub)
                except _ENGINE_FAILURES as exc:
                    error = exc
                app_d = self.clock.since(app0)
                shard_d = sum(c.since(shard0[sid]) for sid, c in remote.items())
                pending.append((slot, positions, handle, error, app_d, shard_d))
            for slot, positions, handle, error, app_d, shard_d in pending:
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                if error is None:
                    try:
                        replies: list = wait(handle, len(positions))
                    except _ENGINE_FAILURES as exc:
                        replies = [exc] * len(positions)
                        self.failures += len(positions)
                else:
                    replies = [error] * len(positions)
                    self.failures += len(positions)
                app_d += self.clock.since(app0)
                shard_d += sum(c.since(shard0[sid]) for sid, c in remote.items())
                lane_busy[slot % lanes] += app_d
                chains.append(app_d + shard_d)
                for position, reply in zip(positions, replies):
                    index, _ = ops[position]
                    responses[index] = reply
            shard_fg = [c.since(round_start[sid]) for sid, c in remote.items()]
            shard_busy = [
                fg + self._bg_shard.pop(sid, 0.0)
                for fg, sid in zip(shard_fg, remote)
            ]
            bg_app = self._bg_app
            self._bg_app = 0.0
            makespan = max(
                max(lane_busy),
                max(shard_busy, default=0.0),
                max(chains, default=0.0),
                bg_app,
            )
            # The depth governor judges the *foreground* critical path:
            # background (flusher/migration) work folded into this round
            # is not evidence that the submit window is too deep.
            fg_makespan = max(
                max(lane_busy),
                max(shard_fg, default=0.0),
                max(chains, default=0.0),
            )
            serial = sum(lane_busy) + sum(shard_busy) + bg_app
            span.set("makespan_cycles", makespan)
            span.set("serial_cycles", serial)
        self.makespan_cycles += makespan
        self.serial_cycles += serial
        self.rounds += 1
        self.ops += len(ops)
        self._observe_round(
            len(ops), fg_makespan, self.failures - failures0, migration
        )

    def _run_round(self, ops: list, responses: list) -> None:
        """Submit every op of the round, then settle them in order.

        Clock charges are identical to the serial path; only the
        makespan accounting interprets them as overlapped.
        """
        remote = self._remote_clocks()
        migration = self._migration_active()
        failures0 = self.failures
        lanes = self._lanes(remote)
        round_start = {sid: c.snapshot() for sid, c in remote.items()}
        lane_busy = [0.0] * lanes
        chains: list[float] = []
        with self.tracer.span(
            "engine.round", clock=self.clock, ops=len(ops), lanes=lanes
        ) as span:
            pending: list = []
            for slot, (index, request) in enumerate(ops):
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                handle = error = None
                try:
                    handle = self.client.submit(request)
                except _ENGINE_FAILURES as exc:
                    error = exc
                app_d = self.clock.since(app0)
                shard_d = sum(c.since(shard0[sid]) for sid, c in remote.items())
                pending.append((slot, index, handle, error, app_d, shard_d))
            for slot, index, handle, error, app_d, shard_d in pending:
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                if error is None:
                    try:
                        response: object = self.client.wait(handle)
                    except _ENGINE_FAILURES as exc:
                        response = exc
                        self.failures += 1
                else:
                    response = error
                    self.failures += 1
                app_d += self.clock.since(app0)
                shard_d += sum(c.since(shard0[sid]) for sid, c in remote.items())
                lane_busy[slot % lanes] += app_d
                chains.append(app_d + shard_d)
                responses[index] = response
            shard_fg = [c.since(round_start[sid]) for sid, c in remote.items()]
            shard_busy = [
                fg + self._bg_shard.pop(sid, 0.0)
                for fg, sid in zip(shard_fg, remote)
            ]
            bg_app = self._bg_app
            self._bg_app = 0.0
            makespan = max(
                max(lane_busy),
                max(shard_busy, default=0.0),
                max(chains, default=0.0),
                bg_app,
            )
            # Foreground-only critical path for the depth governor (see
            # _run_grouped_round): background lanes are not depth evidence.
            fg_makespan = max(
                max(lane_busy),
                max(shard_fg, default=0.0),
                max(chains, default=0.0),
            )
            serial = sum(lane_busy) + sum(shard_busy) + bg_app
            span.set("makespan_cycles", makespan)
            span.set("serial_cycles", serial)
        self.makespan_cycles += makespan
        self.serial_cycles += serial
        self.rounds += 1
        self.ops += len(ops)
        self._observe_round(
            len(ops), fg_makespan, self.failures - failures0, migration
        )

    # -- background (flusher) lane -------------------------------------------
    def background(self):
        """Context manager accounting enclosed work as a background lane.

        The enclosed work (an async PUT drain) charges the clocks
        normally; its cost is credited to the *next* round's makespan as
        one extra lane — it overlaps the foreground, bounded below by
        itself.  Call :meth:`settle` to fold any remainder in serially.
        """
        return _BackgroundSpan(self)

    def parallel_region(self) -> "_ParallelRegion":
        """Context manager accounting enclosed per-task app work as
        spread over the worker lanes.

        The runtime uses it for per-item result verification: each
        :meth:`_ParallelRegion.task` measures one item's app-clock cost,
        tasks are assigned round-robin to ``min(workers, n_tasks)``
        lanes (the enclave's worker threads, one per core), and on exit
        the region contributes its busiest lane to the makespan and the
        plain sum to the serial total.  With ``workers=1`` it degenerates
        to the exact serial sum.
        """
        return _ParallelRegion(self)

    def settle(self) -> None:
        """Fold background work no later round overlapped into the
        makespan serially (nothing ran concurrently with it)."""
        extra_shard = max(self._bg_shard.values(), default=0.0)
        if self._bg_app or self._bg_shard:
            self.makespan_cycles += max(self._bg_app, extra_shard)
            self.serial_cycles += self._bg_app + sum(self._bg_shard.values())
            self._bg_app = 0.0
            self._bg_shard.clear()

    # -- reading ---------------------------------------------------------------
    @property
    def sim_seconds(self) -> float:
        """Critical-path (pipelined) simulated seconds across all rounds."""
        return self.makespan_cycles / self.clock.params.cpu_freq_hz

    @property
    def serial_sim_seconds(self) -> float:
        """What the same ops cost the serial client (plain cycle sum)."""
        return self.serial_cycles / self.clock.params.cpu_freq_hz

    @property
    def overlap_cycles_saved(self) -> float:
        return self.serial_cycles - self.makespan_cycles

    def reset_accounting(self) -> None:
        self.settle()
        self.makespan_cycles = 0.0
        self.serial_cycles = 0.0
        self.rounds = 0
        self.ops = 0
        self.failures = 0
        self.coalesced_total = 0

    def snapshot(self) -> dict:
        """Canonical ``engine.<metric>`` counters for the registry."""
        snap = {
            "engine.depth": self.config.depth,
            "engine.depth_current": self.depth_current,
            "engine.workers": self.config.workers,
            "engine.rounds": self.rounds,
            "engine.ops": self.ops,
            "engine.failures": self.failures,
            "engine.coalesced_gets": self.coalesced_total,
            "engine.sim_seconds_total": self.sim_seconds,
            "engine.serial_sim_seconds_total": self.serial_sim_seconds,
        }
        if self.controller is not None:
            snap["engine.depth_decisions"] = self.controller.decisions
            snap["engine.depth_changes"] = self.controller.changes
            snap["engine.depth_grows"] = self.controller.grows
            snap["engine.depth_shrinks"] = self.controller.shrinks
            snap["engine.depth_migration_caps"] = self.controller.migration_capped
        else:
            snap["engine.depth_decisions"] = 0
            snap["engine.depth_changes"] = 0
            snap["engine.depth_grows"] = 0
            snap["engine.depth_shrinks"] = 0
            snap["engine.depth_migration_caps"] = 0
        return snap


class _ParallelRegion:
    """Accounts a run of same-shaped app tasks as worker-lane work."""

    __slots__ = ("_engine", "_costs")

    def __init__(self, engine: PipelineEngine):
        self._engine = engine
        self._costs: list[float] = []

    def __enter__(self) -> "_ParallelRegion":
        return self

    def task(self) -> "_ParallelRegion":
        """Context manager measuring one task's app-clock delta."""
        return _RegionTask(self)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._costs:
            return False
        engine = self._engine
        lanes = max(1, min(engine.config.workers, len(self._costs)))
        lane_busy = [0.0] * lanes
        for i, cost in enumerate(self._costs):
            lane_busy[i % lanes] += cost
        engine.makespan_cycles += max(lane_busy)
        engine.serial_cycles += sum(self._costs)
        return False


class _RegionTask:
    """Measures one task's app-clock delta for its region."""

    __slots__ = ("_region", "_app0")

    def __init__(self, region: _ParallelRegion):
        self._region = region

    def __enter__(self) -> "_RegionTask":
        self._app0 = self._region._engine.clock.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._region._costs.append(
            self._region._engine.clock.since(self._app0)
        )
        return False


class _BackgroundSpan:
    """Measures one background drain's per-machine clock deltas."""

    __slots__ = ("_engine", "_app0", "_shard0", "_remote")

    def __init__(self, engine: PipelineEngine):
        self._engine = engine

    def __enter__(self) -> "_BackgroundSpan":
        self._remote = self._engine._remote_clocks()
        self._app0 = self._engine.clock.snapshot()
        self._shard0 = {sid: c.snapshot() for sid, c in self._remote.items()}
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        engine = self._engine
        engine._bg_app += engine.clock.since(self._app0)
        for sid, c in self._remote.items():
            delta = c.since(self._shard0[sid])
            if delta:
                engine._bg_shard[sid] = engine._bg_shard.get(sid, 0.0) + delta
        return False
