"""Concurrent pipelined execution engine for store round trips.

Every layer below this one is synchronous: ``RpcClient.call`` blocks on
its own response, so a GET to shard A serializes behind a GET to shard
B even though distinct shards are distinct machines.  The engine drives
the pipelined ``submit()/wait()`` surface instead — up to ``depth``
correlated requests are put on the wire before the first response is
consumed — and adds **single-flight tag coalescing**: identical
in-flight tags share one store round trip, with followers handed the
leader's response.

Simulated-time correctness
--------------------------
The simulation executes on one OS thread, so "concurrency" here is
*logical*: the wire order of a round is submit×N then wait×N, and every
operation charges the same per-machine SimClock cycles it would charge
on the serial path (results, counters, and invariants are bit-identical
by construction).  What changes is the *schedule*: overlapped spans
advance per-machine sim time concurrently, not additively.  The engine
therefore reports a round's elapsed simulated time as its **critical
path**::

    makespan = max( max_i lane_busy[i],      # each of W client lanes
                    max_s shard_busy[s],     # each shard machine
                    max_op (app_op + shard_op) )  # any single op's chain

where ``lane_busy`` spreads the client-side (app machine) cost of the
round's ops over ``workers`` lanes round-robin, ``shard_busy`` is each
shard clock's advance during the round, and the last term keeps one
operation's own send→serve→receive chain serial.  With ``depth=1,
workers=1`` the expression degenerates to the exact serial sum, and a
deployment whose store shares the application's machine (no second
clock to overlap with) is forced to a single lane — one machine cannot
overlap with itself.

The asynchronous PUT flusher uses :meth:`PipelineEngine.background` to
account its drains as one extra lane that overlaps the next round of
foreground work; :meth:`settle` folds any un-overlapped remainder back
in serially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .errors import ChannelError, ProtocolError, TransportError
from .net.messages import GetRequest, Message
from .obs.tracer import NULL_TRACER

# Failures that mean "the store did not serve this op" — the runtime
# degrades (or surfaces) them per item, exactly like the serial path.
_ENGINE_FAILURES = (TransportError, ChannelError, ProtocolError)


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for the pipelined engine."""

    #: Outstanding requests per round (submit window).
    depth: int = 8
    #: Client-side worker lanes the round's app cost is spread over.
    workers: int = 4
    #: Single-flight: identical in-flight tags share one round trip.
    coalesce: bool = True

    def __post_init__(self):
        if self.depth < 1:
            raise ProtocolError("engine depth must be >= 1")
        if self.workers < 1:
            raise ProtocolError("engine workers must be >= 1")


@dataclass
class EngineBatch:
    """Result of one pipelined fan-out.

    ``responses[i]`` is the store's response for ``requests[i]`` — or an
    exception instance when that op failed after retries.  Coalesced
    followers share their leader's response object; ``leader_of`` maps
    each follower position to its leader's position.
    """

    responses: list
    leader_of: dict[int, int] = field(default_factory=dict)

    @property
    def coalesced(self) -> int:
        return len(self.leader_of)


class PipelineEngine:
    """Multi-slot pipelining + coalescing over an RpcClient-shaped peer.

    Parameters
    ----------
    client:
        Anything with ``submit(request) -> id`` / ``wait(id) -> Message``
        — an :class:`~repro.net.rpc.RpcClient` or a
        :class:`~repro.cluster.router.ClusterRouter`.
    clock:
        The application machine's SimClock (client-side costs land here).
    shard_clocks:
        Mapping of shard id to that shard machine's SimClock, or a
        callable returning one (so restarted shards are re-read live).
        Clocks identical to ``clock`` are ignored: co-located work
        cannot overlap with the caller.
    """

    def __init__(
        self,
        client,
        clock,
        shard_clocks: Mapping[str, object] | Callable[[], Mapping[str, object]] | None = None,
        config: EngineConfig | None = None,
        tracer=NULL_TRACER,
    ):
        self.client = client
        self.clock = clock
        if shard_clocks is None:
            shard_clocks = {}
        self._shard_clocks = (
            shard_clocks if callable(shard_clocks) else (lambda: shard_clocks)
        )
        self.config = config or EngineConfig()
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Accounting (cycles).  makespan is the critical-path schedule
        # bound; serial is the plain sum a serial client would take.
        self.makespan_cycles = 0.0
        self.serial_cycles = 0.0
        self.rounds = 0
        self.ops = 0
        self.failures = 0
        self.coalesced_total = 0
        # Background (flusher) work carried into the next round.
        self._bg_app = 0.0
        self._bg_shard: dict[str, float] = {}

    # -- clock plumbing ------------------------------------------------------
    def _remote_clocks(self) -> dict[str, object]:
        """Shard clocks that are genuinely other machines."""
        return {
            sid: c for sid, c in self._shard_clocks().items() if c is not self.clock
        }

    def _lanes(self, remote: Mapping[str, object]) -> int:
        # Without a remote machine there is nothing to overlap with:
        # every charge lands on the one clock, so the round is serial.
        if not remote:
            return 1
        return max(1, min(self.config.workers, self.config.depth))

    # -- fan-out -------------------------------------------------------------
    def run_gets(self, requests: Sequence[Message]) -> EngineBatch:
        """Pipeline a list of GETs; coalesce duplicate in-flight tags.

        Exactly one store round trip is performed per distinct tag; the
        followers of a tag receive the leader's response object without
        touching the wire (and without charging any clock).  When the
        client can plan shard groups (``plan_gets``), each round fans out
        one sub-batch record per shard so the shards serve concurrently
        and the channel's AEAD cost stays amortized across the group.
        """
        requests = list(requests)
        responses: list = [None] * len(requests)
        leader_of: dict[int, int] = {}
        wire: list[int] = []
        if self.config.coalesce:
            leaders: dict[bytes, int] = {}
            for i, request in enumerate(requests):
                tag = request.tag if isinstance(request, GetRequest) else None
                if tag is None:
                    wire.append(i)
                    continue
                leader = leaders.setdefault(tag, i)
                if leader == i:
                    wire.append(i)
                else:
                    leader_of[i] = leader
        else:
            wire = list(range(len(requests)))
        self.coalesced_total += len(leader_of)
        grouped = hasattr(self.client, "plan_gets") and hasattr(
            self.client, "submit_gets"
        )
        for start in range(0, len(wire), self.config.depth):
            round_indices = wire[start:start + self.config.depth]
            ops = [(i, requests[i]) for i in round_indices]
            if grouped:
                self._run_get_round(ops, responses)
            else:
                self._run_round(ops, responses)
        for follower, leader in leader_of.items():
            responses[follower] = responses[leader]
        return EngineBatch(responses=responses, leader_of=leader_of)

    def run_puts(self, requests: Sequence[Message]) -> EngineBatch:
        """Pipeline a list of PUTs (never coalesced: every PUT wants its
        own durability verdict, and the store dedups identical tags).
        When the client can plan shard groups (``plan_puts``), each round
        ships one grouped sub-batch record per owner shard instead of
        per-item PUTs, so the shards absorb their copies concurrently."""
        requests = list(requests)
        responses: list = [None] * len(requests)
        grouped = hasattr(self.client, "plan_puts") and hasattr(
            self.client, "submit_puts"
        )
        for start in range(0, len(requests), self.config.depth):
            ops = [
                (i, requests[i])
                for i in range(start, min(start + self.config.depth, len(requests)))
            ]
            if grouped:
                self._run_put_round(ops, responses)
            else:
                self._run_round(ops, responses)
        return EngineBatch(responses=responses)

    def _run_get_round(self, ops: list, responses: list) -> None:
        """One pipelined GET round over the client's shard groups.

        The round's ops are partitioned by the client (one group per
        primary shard); each group ships as a single record, is served by
        its shard concurrently with the other groups, and its app-side
        send/receive cost occupies one worker lane.  Clock charges stay
        identical to the serial per-shard sub-batch path; only the
        makespan accounting interprets them as overlapped.
        """
        self._run_grouped_round(
            ops, responses, self.client.plan_gets,
            self.client.submit_gets, self.client.wait_gets,
        )

    def _run_put_round(self, ops: list, responses: list) -> None:
        """One pipelined PUT round over the client's shard groups (same
        schedule shape as :meth:`_run_get_round`; replicated copies are
        the client's concern and stay inside each group's slot)."""
        self._run_grouped_round(
            ops, responses, self.client.plan_puts,
            self.client.submit_puts, self.client.wait_puts,
        )

    def _run_grouped_round(
        self, ops: list, responses: list, plan, submit, wait
    ) -> None:
        remote = self._remote_clocks()
        lanes = self._lanes(remote)
        round_start = {sid: c.snapshot() for sid, c in remote.items()}
        lane_busy = [0.0] * lanes
        chains: list[float] = []
        group_requests = [request for _, request in ops]
        groups = plan(group_requests)
        with self.tracer.span(
            "engine.round", clock=self.clock, ops=len(ops),
            groups=len(groups), lanes=lanes,
        ) as span:
            pending: list = []
            for slot, positions in enumerate(groups):
                sub = [group_requests[p] for p in positions]
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                handle = error = None
                try:
                    handle = submit(sub)
                except _ENGINE_FAILURES as exc:
                    error = exc
                app_d = self.clock.since(app0)
                shard_d = sum(c.since(shard0[sid]) for sid, c in remote.items())
                pending.append((slot, positions, handle, error, app_d, shard_d))
            for slot, positions, handle, error, app_d, shard_d in pending:
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                if error is None:
                    try:
                        replies: list = wait(handle, len(positions))
                    except _ENGINE_FAILURES as exc:
                        replies = [exc] * len(positions)
                        self.failures += len(positions)
                else:
                    replies = [error] * len(positions)
                    self.failures += len(positions)
                app_d += self.clock.since(app0)
                shard_d += sum(c.since(shard0[sid]) for sid, c in remote.items())
                lane_busy[slot % lanes] += app_d
                chains.append(app_d + shard_d)
                for position, reply in zip(positions, replies):
                    index, _ = ops[position]
                    responses[index] = reply
            shard_busy = [
                c.since(round_start[sid]) + self._bg_shard.pop(sid, 0.0)
                for sid, c in remote.items()
            ]
            bg_app = self._bg_app
            self._bg_app = 0.0
            makespan = max(
                max(lane_busy),
                max(shard_busy, default=0.0),
                max(chains, default=0.0),
                bg_app,
            )
            serial = sum(lane_busy) + sum(shard_busy) + bg_app
            span.set("makespan_cycles", makespan)
            span.set("serial_cycles", serial)
        self.makespan_cycles += makespan
        self.serial_cycles += serial
        self.rounds += 1
        self.ops += len(ops)

    def _run_round(self, ops: list, responses: list) -> None:
        """Submit every op of the round, then settle them in order.

        Clock charges are identical to the serial path; only the
        makespan accounting interprets them as overlapped.
        """
        remote = self._remote_clocks()
        lanes = self._lanes(remote)
        round_start = {sid: c.snapshot() for sid, c in remote.items()}
        lane_busy = [0.0] * lanes
        chains: list[float] = []
        with self.tracer.span(
            "engine.round", clock=self.clock, ops=len(ops), lanes=lanes
        ) as span:
            pending: list = []
            for slot, (index, request) in enumerate(ops):
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                handle = error = None
                try:
                    handle = self.client.submit(request)
                except _ENGINE_FAILURES as exc:
                    error = exc
                app_d = self.clock.since(app0)
                shard_d = sum(c.since(shard0[sid]) for sid, c in remote.items())
                pending.append((slot, index, handle, error, app_d, shard_d))
            for slot, index, handle, error, app_d, shard_d in pending:
                app0 = self.clock.snapshot()
                shard0 = {sid: c.snapshot() for sid, c in remote.items()}
                if error is None:
                    try:
                        response: object = self.client.wait(handle)
                    except _ENGINE_FAILURES as exc:
                        response = exc
                        self.failures += 1
                else:
                    response = error
                    self.failures += 1
                app_d += self.clock.since(app0)
                shard_d += sum(c.since(shard0[sid]) for sid, c in remote.items())
                lane_busy[slot % lanes] += app_d
                chains.append(app_d + shard_d)
                responses[index] = response
            shard_busy = [
                c.since(round_start[sid]) + self._bg_shard.pop(sid, 0.0)
                for sid, c in remote.items()
            ]
            bg_app = self._bg_app
            self._bg_app = 0.0
            makespan = max(
                max(lane_busy),
                max(shard_busy, default=0.0),
                max(chains, default=0.0),
                bg_app,
            )
            serial = sum(lane_busy) + sum(shard_busy) + bg_app
            span.set("makespan_cycles", makespan)
            span.set("serial_cycles", serial)
        self.makespan_cycles += makespan
        self.serial_cycles += serial
        self.rounds += 1
        self.ops += len(ops)

    # -- background (flusher) lane -------------------------------------------
    def background(self):
        """Context manager accounting enclosed work as a background lane.

        The enclosed work (an async PUT drain) charges the clocks
        normally; its cost is credited to the *next* round's makespan as
        one extra lane — it overlaps the foreground, bounded below by
        itself.  Call :meth:`settle` to fold any remainder in serially.
        """
        return _BackgroundSpan(self)

    def parallel_region(self) -> "_ParallelRegion":
        """Context manager accounting enclosed per-task app work as
        spread over the worker lanes.

        The runtime uses it for per-item result verification: each
        :meth:`_ParallelRegion.task` measures one item's app-clock cost,
        tasks are assigned round-robin to ``min(workers, n_tasks)``
        lanes (the enclave's worker threads, one per core), and on exit
        the region contributes its busiest lane to the makespan and the
        plain sum to the serial total.  With ``workers=1`` it degenerates
        to the exact serial sum.
        """
        return _ParallelRegion(self)

    def settle(self) -> None:
        """Fold background work no later round overlapped into the
        makespan serially (nothing ran concurrently with it)."""
        extra_shard = max(self._bg_shard.values(), default=0.0)
        if self._bg_app or self._bg_shard:
            self.makespan_cycles += max(self._bg_app, extra_shard)
            self.serial_cycles += self._bg_app + sum(self._bg_shard.values())
            self._bg_app = 0.0
            self._bg_shard.clear()

    # -- reading ---------------------------------------------------------------
    @property
    def sim_seconds(self) -> float:
        """Critical-path (pipelined) simulated seconds across all rounds."""
        return self.makespan_cycles / self.clock.params.cpu_freq_hz

    @property
    def serial_sim_seconds(self) -> float:
        """What the same ops cost the serial client (plain cycle sum)."""
        return self.serial_cycles / self.clock.params.cpu_freq_hz

    @property
    def overlap_cycles_saved(self) -> float:
        return self.serial_cycles - self.makespan_cycles

    def reset_accounting(self) -> None:
        self.settle()
        self.makespan_cycles = 0.0
        self.serial_cycles = 0.0
        self.rounds = 0
        self.ops = 0
        self.failures = 0
        self.coalesced_total = 0

    def snapshot(self) -> dict:
        """Canonical ``engine.<metric>`` counters for the registry."""
        return {
            "engine.depth": self.config.depth,
            "engine.workers": self.config.workers,
            "engine.rounds": self.rounds,
            "engine.ops": self.ops,
            "engine.failures": self.failures,
            "engine.coalesced_gets": self.coalesced_total,
            "engine.sim_seconds_total": self.sim_seconds,
            "engine.serial_sim_seconds_total": self.serial_sim_seconds,
        }


class _ParallelRegion:
    """Accounts a run of same-shaped app tasks as worker-lane work."""

    __slots__ = ("_engine", "_costs")

    def __init__(self, engine: PipelineEngine):
        self._engine = engine
        self._costs: list[float] = []

    def __enter__(self) -> "_ParallelRegion":
        return self

    def task(self) -> "_ParallelRegion":
        """Context manager measuring one task's app-clock delta."""
        return _RegionTask(self)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._costs:
            return False
        engine = self._engine
        lanes = max(1, min(engine.config.workers, len(self._costs)))
        lane_busy = [0.0] * lanes
        for i, cost in enumerate(self._costs):
            lane_busy[i % lanes] += cost
        engine.makespan_cycles += max(lane_busy)
        engine.serial_cycles += sum(self._costs)
        return False


class _RegionTask:
    """Measures one task's app-clock delta for its region."""

    __slots__ = ("_region", "_app0")

    def __init__(self, region: _ParallelRegion):
        self._region = region

    def __enter__(self) -> "_RegionTask":
        self._app0 = self._region._engine.clock.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._region._costs.append(
            self._region._engine.clock.since(self._app0)
        )
        return False


class _BackgroundSpan:
    """Measures one background drain's per-machine clock deltas."""

    __slots__ = ("_engine", "_app0", "_shard0", "_remote")

    def __init__(self, engine: PipelineEngine):
        self._engine = engine

    def __enter__(self) -> "_BackgroundSpan":
        self._remote = self._engine._remote_clocks()
        self._app0 = self._engine.clock.snapshot()
        self._shard0 = {sid: c.snapshot() for sid, c in self._remote.items()}
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        engine = self._engine
        engine._bg_app += engine.clock.since(self._app0)
        for sid, c in self._remote.items():
            delta = c.since(self._shard0[sid])
            if delta:
                engine._bg_shard[sid] = engine._bg_shard.get(sid, 0.0) + delta
        return False
