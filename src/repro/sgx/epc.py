"""Enclave Page Cache (EPC) model with demand paging.

SGX machines of the paper's generation expose 128 MiB of protected
memory, roughly 90 MiB usable after SGX metadata (§V-A).  When enclaves
collectively touch more than that, the kernel driver transparently swaps
pages out (EWB) and back in (ELDU), each swap costing tens of thousands
of cycles — the reason the paper insists on keeping only small metadata
inside the ResultStore enclave (§II, §IV-B).

The model is page-granular LRU over *touched* pages: an enclave declares
memory regions, accesses charge page faults for non-resident pages, and
residency is bounded by the usable EPC size.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .cost_model import SimClock
from ..errors import EnclaveMemoryError

DEFAULT_EPC_TOTAL = 128 * 1024 * 1024
DEFAULT_EPC_USABLE = 90 * 1024 * 1024


@dataclass(frozen=True)
class PageKey:
    """Identity of one EPC page: (enclave, region, page index)."""

    enclave_id: int
    region: str
    index: int


class EpcManager:
    """Global LRU page cache shared by all enclaves on a platform."""

    def __init__(
        self,
        clock: SimClock,
        usable_bytes: int = DEFAULT_EPC_USABLE,
        allow_paging: bool = True,
    ):
        if usable_bytes <= 0:
            raise EnclaveMemoryError("EPC size must be positive")
        self._clock = clock
        self.page_size = clock.params.page_size
        self.capacity_pages = usable_bytes // self.page_size
        self.allow_paging = allow_paging
        self._resident: OrderedDict[PageKey, None] = OrderedDict()
        self.fault_count = 0
        self.eviction_count = 0

    # -- core ------------------------------------------------------------
    def _pages_for(self, offset: int, n_bytes: int) -> range:
        if n_bytes <= 0:
            return range(0)
        first = offset // self.page_size
        last = (offset + n_bytes - 1) // self.page_size
        return range(first, last + 1)

    def access(self, enclave_id: int, region: str, offset: int, n_bytes: int) -> int:
        """Touch a byte range; returns the number of page faults charged."""
        faults = 0
        for index in self._pages_for(offset, n_bytes):
            key = PageKey(enclave_id, region, index)
            if key in self._resident:
                self._resident.move_to_end(key)
                continue
            faults += 1
            if len(self._resident) >= self.capacity_pages:
                if not self.allow_paging:
                    raise EnclaveMemoryError(
                        "EPC exhausted and paging disabled "
                        f"({self.capacity_pages} pages resident)"
                    )
                self._resident.popitem(last=False)
                self.eviction_count += 1
            self._resident[key] = None
        if faults:
            self.fault_count += faults
            self._clock.charge_page_fault(faults)
        return faults

    def release_enclave(self, enclave_id: int) -> None:
        """Drop all pages of a destroyed enclave (no cost: EREMOVE is cheap
        relative to the swaps we model)."""
        stale = [k for k in self._resident if k.enclave_id == enclave_id]
        for key in stale:
            del self._resident[key]

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def resident_bytes(self) -> int:
        return self.resident_pages * self.page_size
