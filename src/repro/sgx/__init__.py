"""Simulated Intel SGX substrate.

The paper's system runs on real SGX hardware; this package is the
substitute substrate (see DESIGN.md §2): a deterministic machine model
with a cycle-accounted virtual clock (:mod:`.cost_model`), an EPC page
cache with demand paging (:mod:`.epc`), enclave lifecycle and the
ECALL/OCALL boundary (:mod:`.enclave`), measurement (:mod:`.measurement`),
sealing (:mod:`.sealing`), and local/remote attestation
(:mod:`.attestation`).
"""

from .attestation import AttestationService, Quote, Report
from .cost_model import CostParams, SimClock, Stopwatch
from .enclave import Enclave
from .epc import DEFAULT_EPC_TOTAL, DEFAULT_EPC_USABLE, EpcManager
from .measurement import Measurement, measure_code
from .platform import SgxPlatform
from .sealing import SealedBlob, SealPolicy

__all__ = [
    "AttestationService",
    "CostParams",
    "DEFAULT_EPC_TOTAL",
    "DEFAULT_EPC_USABLE",
    "Enclave",
    "EpcManager",
    "Measurement",
    "Quote",
    "Report",
    "SealPolicy",
    "SealedBlob",
    "SgxPlatform",
    "SimClock",
    "Stopwatch",
    "measure_code",
]
