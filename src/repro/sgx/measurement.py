"""Enclave measurement (MRENCLAVE / MRSIGNER).

SGX records a SHA-256 digest of an enclave's initial code and data as it
is built (MRENCLAVE) and the identity of the signing key (MRSIGNER).
Attestation and sealing key derivation are bound to these values.  Our
simulator measures the *code identity* a caller supplies — for SPEED
application enclaves this is the canonical function descriptions of the
trusted libraries linked in, which is exactly what lets DedupRuntime
"verify that the application indeed owns the actual code of the
function by scanning the underlying trusted library" (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashes import tagged_hash


@dataclass(frozen=True)
class Measurement:
    """The attested identity of an enclave."""

    mrenclave: bytes
    mrsigner: bytes

    def __post_init__(self):
        if len(self.mrenclave) != 32 or len(self.mrsigner) != 32:
            raise ValueError("measurement digests must be 32 bytes")


def measure_code(code_identity: bytes, signer: bytes = b"speed-dev") -> Measurement:
    """Build a measurement from an enclave's code identity bytes.

    ``code_identity`` is whatever uniquely describes the enclave's initial
    contents — for the SPEED case studies we feed the serialized set of
    trusted-library function descriptions plus the application name.
    """
    return Measurement(
        mrenclave=tagged_hash(b"sgx/mrenclave", code_identity),
        mrsigner=tagged_hash(b"sgx/mrsigner", signer),
    )
