"""The simulated SGX machine: clock, EPC, root keys, enclave registry.

One :class:`SgxPlatform` models one physical machine of the paper's
testbed (Xeon E3-1505 v5, 128 MiB EPC / 90 MiB usable, SDK v1.8).  All
simulated state is derived from an explicit seed so experiments replay
bit-for-bit.
"""

from __future__ import annotations

from .attestation import AttestationService, Quote
from .cost_model import CostParams, SimClock
from .enclave import Enclave
from .epc import DEFAULT_EPC_USABLE, EpcManager
from .measurement import Measurement, measure_code
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import tagged_hash
from ..errors import EnclaveError


class SgxPlatform:
    """One SGX-capable machine hosting any number of enclaves."""

    def __init__(
        self,
        seed: bytes = b"speed-platform-seed",
        name: str = "machine-0",
        params: CostParams | None = None,
        epc_usable_bytes: int = DEFAULT_EPC_USABLE,
        allow_paging: bool = True,
        attestation_service: AttestationService | None = None,
    ):
        self.name = name
        self.platform_id = tagged_hash(b"sgx/platform-id", name.encode(), seed)[:16]
        self.clock = SimClock(params)
        self.epc = EpcManager(self.clock, epc_usable_bytes, allow_paging)
        self._drbg = HmacDrbg(seed, personalization=b"platform/" + name.encode())
        # Hardware root secrets: never exposed outside the simulated package.
        self.seal_fabric_key = self._drbg.generate(32)
        self.report_key_root = self._drbg.generate(32)
        self._attestation_key = self._drbg.generate(32)
        self._attestation_service = attestation_service
        if attestation_service is not None:
            attestation_service.provision(self.platform_id, self._attestation_key)
        self._enclaves: dict[int, Enclave] = {}
        self._next_enclave_id = 1
        # Hardware monotonic counters (SGX PSE): persist across enclave
        # teardown and power failure, so sealed state can be anchored
        # against whole-state rollback.
        self._monotonic: dict[bytes, int] = {}

    # -- monotonic counters --------------------------------------------------
    def monotonic_read(self, counter_id: bytes = b"default") -> int:
        """Current value of a hardware monotonic counter (0 if never bumped)."""
        return self._monotonic.get(counter_id, 0)

    def monotonic_increment(self, counter_id: bytes = b"default") -> int:
        """Atomically bump a hardware monotonic counter; returns the new value."""
        value = self._monotonic.get(counter_id, 0) + 1
        self._monotonic[counter_id] = value
        return value

    # -- enclave lifecycle -------------------------------------------------
    def create_enclave(
        self, name: str, code_identity: bytes, signer: bytes = b"speed-dev"
    ) -> Enclave:
        """ECREATE/EINIT: build, measure, and launch an enclave."""
        measurement = measure_code(code_identity, signer)
        # Building an enclave hashes its initial contents page by page.
        self.clock.charge_hash(len(code_identity))
        enclave = Enclave(
            platform=self,
            enclave_id=self._next_enclave_id,
            name=name,
            measurement=measurement,
            drbg=self._drbg.fork(b"enclave/" + name.encode()),
        )
        self._enclaves[enclave.enclave_id] = enclave
        self._next_enclave_id += 1
        return enclave

    def destroy_enclave(self, enclave: Enclave) -> None:
        if enclave.enclave_id not in self._enclaves:
            raise EnclaveError("enclave does not belong to this platform")
        enclave.destroy()
        del self._enclaves[enclave.enclave_id]

    @property
    def enclaves(self) -> tuple[Enclave, ...]:
        return tuple(self._enclaves.values())

    # -- quoting -------------------------------------------------------------
    def sign_quote(self, source: Measurement, report_data: bytes) -> Quote:
        if self._attestation_service is None:
            raise EnclaveError(
                "platform was not provisioned with an attestation service"
            )
        return self._attestation_service.sign_quote(self.platform_id, source, report_data)
