"""Virtual clock and calibrated cost model for the simulated SGX platform.

The paper's evaluation runs on real SGX hardware (Xeon E3-1505 v5 @
2.8 GHz, SDK v1.8).  Our substrate is a simulator, so every operation
whose *cost* the paper measures is charged to a deterministic virtual
clock in CPU cycles:

* enclave transitions (ECALL/OCALL) — ~8,000 cycles each way, the figure
  reported by HotCalls [51] and cited by the paper as the source of the
  SGX overhead visible in Fig. 6;
* EPC paging (EWB/ELDU) — tens of thousands of cycles per 4 KiB page;
* in-enclave crypto — per-byte costs calibrated against the paper's
  Table I (SHA-256 tag generation, AES-GCM-128 encrypt/decrypt);
* marshalling across the enclave boundary — per-byte copy cost;
* application compute — measured Python wall time scaled by a per-app
  *native factor* (how much slower our pure-Python reimplementation is
  than the C library the paper used).

Reports therefore carry two numbers everywhere: the honest Python wall
time and the simulated time, which is the one whose *shape* should match
the paper.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import EnclaveError


@dataclass(frozen=True)
class CostParams:
    """Calibrated cost constants, in CPU cycles (per op / per byte).

    Defaults are derived from the paper's platform: 2.8 GHz Xeon E3-1505
    v5; Table I slopes/intercepts; HotCalls transition costs; Eleos/VAULT
    EPC paging figures.
    """

    cpu_freq_hz: float = 2.8e9

    # Enclave transitions (each direction).  The raw EENTER/EEXIT pair
    # costs ~8k cycles (HotCalls [51]), but the *effective* cost with
    # cache/TLB pollution observed by SGX system papers is several times
    # higher; we charge an effective 30k cycles (~10.7 us) per crossing.
    ecall_cycles: int = 30_000
    ocall_cycles: int = 30_000

    # Switchless ("hot") calls: the paper's SS V-B points at HotCalls [51]
    # and Eleos [10] as the fix for transition cost — a spinning worker
    # inside the enclave serves requests from a shared buffer without
    # EENTER/EEXIT, at ~600-1,400 cycles per call.  Enabling
    # ``switchless`` swaps the transition charge for this figure
    # (ablation A7 quantifies the effect on Fig. 6).
    switchless: bool = False
    hotcall_cycles: int = 1_200

    # Crossing the boundary copies data through untrusted buffers.
    marshal_cycles_per_byte: float = 0.5

    # EPC paging: evict (EWB) + load (ELDU) a 4 KiB page.
    page_fault_cycles: int = 40_000
    page_size: int = 4096

    # In-enclave SHA-256 (Table I "Tag Gen." slope ≈ 5.8 ns/B → ~16 cyc/B,
    # intercept ≈ 22 µs → ~62k cycles).
    hash_fixed_cycles: int = 62_000
    hash_cycles_per_byte: float = 16.0

    # In-enclave AES-GCM-128 encrypt (Table I "Result Enc."):
    # slope ≈ 1.7 ns/B → ~4.7 cyc/B, intercept ≈ 13 µs.
    aead_enc_fixed_cycles: int = 36_000
    aead_enc_cycles_per_byte: float = 4.7

    # In-enclave AES-GCM-128 decrypt (Table I "Result Dec."):
    # slope ≈ 0.23 ns/B → ~0.65 cyc/B, intercept ≈ 21 µs.
    aead_dec_fixed_cycles: int = 58_000
    aead_dec_cycles_per_byte: float = 0.65

    # AES key generation via RDRAND + schedule (Table I "Key Gen."
    # intercept beyond the hash term).
    keygen_fixed_cycles: int = 50_000

    # Loopback "secure channel" hop between co-located processes.
    net_fixed_cycles: int = 30_000
    net_cycles_per_byte: float = 1.2


class SimClock:
    """Deterministic cycle-accumulating clock with per-category breakdown.

    All simulated components share one clock (one clock per experiment).
    ``elapsed_seconds`` converts at the platform frequency.
    """

    def __init__(self, params: CostParams | None = None):
        self.params = params or CostParams()
        self._cycles: float = 0.0
        self._by_category: dict[str, float] = defaultdict(float)

    # -- raw charging ---------------------------------------------------
    def charge_cycles(self, cycles: float, category: str = "other") -> None:
        if cycles < 0:
            raise EnclaveError("cannot charge negative cycles")
        self._cycles += cycles
        self._by_category[category] += cycles

    def charge_seconds(self, seconds: float, category: str = "other") -> None:
        self.charge_cycles(seconds * self.params.cpu_freq_hz, category)

    # -- calibrated primitives ------------------------------------------
    def charge_ecall(self) -> None:
        cost = self.params.hotcall_cycles if self.params.switchless else self.params.ecall_cycles
        self.charge_cycles(cost, "transition")

    def charge_ocall(self) -> None:
        cost = self.params.hotcall_cycles if self.params.switchless else self.params.ocall_cycles
        self.charge_cycles(cost, "transition")

    def charge_marshal(self, n_bytes: int) -> None:
        self.charge_cycles(n_bytes * self.params.marshal_cycles_per_byte, "marshal")

    def charge_page_fault(self, n_pages: int = 1) -> None:
        self.charge_cycles(n_pages * self.params.page_fault_cycles, "paging")

    def charge_hash(self, n_bytes: int) -> None:
        self.charge_cycles(
            self.params.hash_fixed_cycles + n_bytes * self.params.hash_cycles_per_byte,
            "crypto",
        )

    def charge_aead_encrypt(self, n_bytes: int) -> None:
        self.charge_cycles(
            self.params.aead_enc_fixed_cycles
            + n_bytes * self.params.aead_enc_cycles_per_byte,
            "crypto",
        )

    def charge_aead_decrypt(self, n_bytes: int) -> None:
        self.charge_cycles(
            self.params.aead_dec_fixed_cycles
            + n_bytes * self.params.aead_dec_cycles_per_byte,
            "crypto",
        )

    def charge_keygen(self) -> None:
        self.charge_cycles(self.params.keygen_fixed_cycles, "crypto")

    def charge_network(self, n_bytes: int) -> None:
        self.charge_cycles(
            self.params.net_fixed_cycles + n_bytes * self.params.net_cycles_per_byte,
            "network",
        )

    def charge_compute(self, wall_seconds: float, native_factor: float = 1.0) -> None:
        """Charge application compute measured in Python wall time.

        ``native_factor`` is the calibrated slowdown of our pure-Python
        reimplementation versus the native library the paper used; the
        simulated platform executes the work ``native_factor`` times
        faster than we just did.
        """
        if native_factor <= 0:
            raise EnclaveError("native_factor must be positive")
        self.charge_seconds(wall_seconds / native_factor, "compute")

    # -- reading --------------------------------------------------------
    @property
    def cycles(self) -> float:
        return self._cycles

    def elapsed_seconds(self) -> float:
        return self._cycles / self.params.cpu_freq_hz

    def breakdown(self) -> dict[str, float]:
        """Cycles charged per category (copy)."""
        return dict(self._by_category)

    def snapshot(self) -> float:
        """Current cycle count, for measuring deltas around an operation."""
        return self._cycles

    def since(self, snapshot: float) -> float:
        return self._cycles - snapshot

    def reset(self) -> None:
        self._cycles = 0.0
        self._by_category.clear()


@dataclass
class Stopwatch:
    """Pairs a wall-clock timer with a SimClock delta for dual reporting."""

    clock: SimClock
    _wall_start: float = field(default=0.0, init=False)
    _sim_start: float = field(default=0.0, init=False)
    wall_seconds: float = field(default=0.0, init=False)
    sim_seconds: float = field(default=0.0, init=False)

    def __enter__(self) -> "Stopwatch":
        import time

        self._wall_start = time.perf_counter()
        self._sim_start = self.clock.snapshot()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self.wall_seconds = time.perf_counter() - self._wall_start
        self.sim_seconds = self.clock.since(self._sim_start) / self.clock.params.cpu_freq_hz
