"""Local and remote attestation for the simulated SGX platform.

The paper assumes "the integrity of an application is correctly verified
before actually running with hardware enclaves ... by the attestation
mechanism of Intel SGX" (§II-B), in both its intra-platform (local) and
remote forms.  We reproduce both:

* **Local attestation** — an enclave produces a *report* targeted at
  another enclave on the same platform; the report is MACed with a key
  derived from the platform root and the target's MRENCLAVE, so only the
  target can verify it (mirroring EREPORT/EGETKEY).
* **Remote attestation** — a platform's quoting identity signs the report
  into a *quote*; an :class:`AttestationService` (standing in for Intel's
  IAS/EPID infrastructure) verifies quotes from registered platforms.

MACs stand in for the asymmetric signatures of real SGX; the trust
topology (who can forge what) is identical for our threat model because
the signing keys never leave the simulated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from .measurement import Measurement
from ..crypto.constant_time import bytes_eq
from ..crypto.hashes import hmac_sha256, tagged_hash
from ..errors import AttestationError

REPORT_DATA_SIZE = 64


def _pad_report_data(data: bytes) -> bytes:
    if len(data) > REPORT_DATA_SIZE:
        raise AttestationError(f"report data exceeds {REPORT_DATA_SIZE} bytes")
    return data + b"\x00" * (REPORT_DATA_SIZE - len(data))


@dataclass(frozen=True)
class Report:
    """A local-attestation report (EREPORT output)."""

    source: Measurement
    target_mrenclave: bytes
    report_data: bytes
    mac: bytes

    def body(self) -> bytes:
        return tagged_hash(
            b"sgx/report-body",
            self.source.mrenclave,
            self.source.mrsigner,
            self.target_mrenclave,
            self.report_data,
        )


def make_report(
    report_key_root: bytes,
    source: Measurement,
    target_mrenclave: bytes,
    report_data: bytes,
) -> Report:
    """Create a report MACed with the target's report key."""
    data = _pad_report_data(report_data)
    partial = Report(source=source, target_mrenclave=target_mrenclave, report_data=data, mac=b"")
    report_key = hmac_sha256(report_key_root, b"report-key" + target_mrenclave)
    return Report(
        source=source,
        target_mrenclave=target_mrenclave,
        report_data=data,
        mac=hmac_sha256(report_key, partial.body()),
    )


def verify_report(report_key_root: bytes, own_mrenclave: bytes, report: Report) -> None:
    """Verify a report addressed to ``own_mrenclave``; raise on failure."""
    if report.target_mrenclave != own_mrenclave:
        raise AttestationError("report was not targeted at this enclave")
    report_key = hmac_sha256(report_key_root, b"report-key" + report.target_mrenclave)
    expected = hmac_sha256(report_key, report.body())
    if not bytes_eq(expected, report.mac):
        raise AttestationError("report MAC verification failed")


@dataclass(frozen=True)
class Quote:
    """A remote-attestation quote (signed report)."""

    platform_id: bytes
    source: Measurement
    report_data: bytes
    signature: bytes

    def body(self) -> bytes:
        return tagged_hash(
            b"sgx/quote-body",
            self.platform_id,
            self.source.mrenclave,
            self.source.mrsigner,
            self.report_data,
        )


class AttestationService:
    """Stand-in for the Intel Attestation Service.

    Platforms register their (simulated) EPID keys at provisioning time;
    relying parties submit quotes for verification.  One service instance
    models one deployment spanning several machines (used by the master
    ResultStore synchronisation in :mod:`repro.store.sync`).
    """

    def __init__(self):
        self._platform_keys: dict[bytes, bytes] = {}

    def provision(self, platform_id: bytes, attestation_key: bytes) -> None:
        if platform_id in self._platform_keys:
            raise AttestationError("platform already provisioned")
        self._platform_keys[platform_id] = attestation_key

    def sign_quote(
        self, platform_id: bytes, source: Measurement, report_data: bytes
    ) -> Quote:
        key = self._platform_keys.get(platform_id)
        if key is None:
            raise AttestationError("unknown platform")
        data = _pad_report_data(report_data)
        partial = Quote(platform_id=platform_id, source=source, report_data=data, signature=b"")
        return Quote(
            platform_id=platform_id,
            source=source,
            report_data=data,
            signature=hmac_sha256(key, partial.body()),
        )

    def verify_quote(self, quote: Quote) -> Measurement:
        """Verify a quote; returns the attested measurement on success."""
        key = self._platform_keys.get(quote.platform_id)
        if key is None:
            raise AttestationError("quote from unprovisioned platform")
        expected = hmac_sha256(key, quote.body())
        if not bytes_eq(expected, quote.signature):
            raise AttestationError("quote signature verification failed")
        return quote.source
