"""Enclave lifecycle, ECALL/OCALL boundary, and per-enclave services.

An :class:`Enclave` is created by an :class:`SgxPlatform` (see
:mod:`repro.sgx.platform`).  The simulator enforces the SGX programming
model the paper describes in §IV-A:

* the host enters the enclave via an **ECALL** and the enclave reaches
  out via an **OCALL** — both are context managers here, so mis-nesting
  (an ECALL from inside, an OCALL from outside) raises immediately;
* every transition charges the calibrated cycle cost to the platform
  clock, and arguments/results crossing the boundary charge marshalling
  cost — this is exactly the overhead the paper points to in Fig. 6;
* enclave heap accesses go through :meth:`Enclave.touch`, which the EPC
  model turns into page faults when the working set outgrows the EPC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .attestation import Quote, Report, make_report, verify_report
from .measurement import Measurement
from .sealing import SealedBlob, SealPolicy, seal_data, unseal_data
from ..crypto.drbg import HmacDrbg
from ..errors import EnclaveError
from ..obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .platform import SgxPlatform


class _Transition:
    """Context manager for one boundary crossing (ECALL or OCALL)."""

    def __init__(self, enclave: "Enclave", kind: str, name: str, in_bytes: int, out_bytes: int):
        self._enclave = enclave
        self._kind = kind
        self._name = name
        self._in_bytes = in_bytes
        self._out_bytes = out_bytes
        self._span = None

    def __enter__(self):
        tracer = self._enclave.tracer
        if tracer.enabled:
            self._span = tracer.span(
                f"sgx.{self._kind}",
                clock=self._enclave.platform.clock,
                op=self._name,
                enclave=self._enclave.name,
            )
            self._span.__enter__()
        self._enclave._enter_transition(self._kind, self._name, self._in_bytes)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._enclave._exit_transition(self._kind, self._out_bytes)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None
        return False


class Enclave:
    """One simulated enclave instance."""

    def __init__(
        self,
        platform: "SgxPlatform",
        enclave_id: int,
        name: str,
        measurement: Measurement,
        drbg: HmacDrbg,
    ):
        self.platform = platform
        self.enclave_id = enclave_id
        self.name = name
        self.measurement = measurement
        self._drbg = drbg
        self._call_stack: list[str] = []  # alternating "ecall"/"ocall"
        self._destroyed = False
        self.ecall_count = 0
        self.ocall_count = 0
        # Observability: a Session points this at its shared tracer so
        # boundary crossings surface as sgx.ecall/sgx.ocall spans.
        self.tracer = NULL_TRACER

    # -- boundary --------------------------------------------------------
    @property
    def inside(self) -> bool:
        """True when execution is currently inside the enclave."""
        return len(self._call_stack) % 2 == 1

    @property
    def transition_count(self) -> int:
        """Total boundary crossings entered so far (ECALLs + OCALLs).

        Each counted transition also pays a second crossing on return, so
        cycle cost is proportional to twice this number; as a *count* of
        world switches this is the figure the batching benchmark reports
        per call.
        """
        return self.ecall_count + self.ocall_count

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError(f"enclave {self.name!r} was destroyed")

    def ecall(self, name: str = "", in_bytes: int = 0, out_bytes: int = 0) -> _Transition:
        """Enter the enclave from the host (or from within an OCALL)."""
        return _Transition(self, "ecall", name, in_bytes, out_bytes)

    def ocall(self, name: str = "", in_bytes: int = 0, out_bytes: int = 0) -> _Transition:
        """Leave the enclave to run untrusted host code."""
        return _Transition(self, "ocall", name, in_bytes, out_bytes)

    def _enter_transition(self, kind: str, name: str, in_bytes: int) -> None:
        self._check_alive()
        if kind == "ecall":
            if self.inside:
                raise EnclaveError(f"nested ECALL {name!r} from inside enclave {self.name!r}")
            self.platform.clock.charge_ecall()
            self.ecall_count += 1
        else:
            if not self.inside:
                raise EnclaveError(f"OCALL {name!r} attempted outside enclave {self.name!r}")
            self.platform.clock.charge_ocall()
            self.ocall_count += 1
        self.platform.clock.charge_marshal(in_bytes)
        self._call_stack.append(kind)

    def _exit_transition(self, kind: str, out_bytes: int) -> None:
        if not self._call_stack or self._call_stack[-1] != kind:
            raise EnclaveError("mismatched enclave transition nesting")
        self._call_stack.pop()
        self.platform.clock.charge_marshal(out_bytes)
        # Returning crosses the boundary once more.
        if kind == "ecall":
            self.platform.clock.charge_ecall()
        else:
            self.platform.clock.charge_ocall()

    # -- memory ----------------------------------------------------------
    def touch(self, region: str, offset: int, n_bytes: int) -> int:
        """Access enclave heap memory; returns the page faults incurred."""
        self._check_alive()
        if not self.inside:
            raise EnclaveError("enclave memory is not accessible from outside (EPC isolation)")
        return self.platform.epc.access(self.enclave_id, region, offset, n_bytes)

    # -- randomness (sgx_read_rand) ---------------------------------------
    def read_rand(self, n_bytes: int) -> bytes:
        """Draw enclave-local randomness (deterministic under the seed)."""
        self._check_alive()
        if not self.inside:
            raise EnclaveError("sgx_read_rand must be called from inside the enclave")
        return self._drbg.generate(n_bytes)

    # -- sealing -----------------------------------------------------------
    def seal(self, data: bytes, policy: SealPolicy = SealPolicy.MRENCLAVE) -> SealedBlob:
        self._check_alive()
        if not self.inside:
            raise EnclaveError("sealing keys are only available inside the enclave")
        iv = self._drbg.generate(12)
        self.platform.clock.charge_aead_encrypt(len(data))
        return seal_data(self.platform.seal_fabric_key, self.measurement, data, policy, iv)

    def unseal(self, blob: SealedBlob) -> bytes:
        self._check_alive()
        if not self.inside:
            raise EnclaveError("unsealing is only possible inside the enclave")
        self.platform.clock.charge_aead_decrypt(len(blob.payload))
        return unseal_data(self.platform.seal_fabric_key, self.measurement, blob)

    # -- attestation -------------------------------------------------------
    def create_report(self, target: Measurement, report_data: bytes = b"") -> Report:
        """Local attestation: produce a report for a co-located enclave."""
        self._check_alive()
        if not self.inside:
            raise EnclaveError("EREPORT is an in-enclave instruction")
        self.platform.clock.charge_hash(128)
        return make_report(
            self.platform.report_key_root, self.measurement, target.mrenclave, report_data
        )

    def verify_peer_report(self, report: Report) -> Measurement:
        """Verify a report addressed to this enclave; returns the peer's
        measurement."""
        self._check_alive()
        if not self.inside:
            raise EnclaveError("report keys are only available inside the enclave")
        self.platform.clock.charge_hash(128)
        verify_report(self.platform.report_key_root, self.measurement.mrenclave, report)
        return report.source

    def create_quote(self, report_data: bytes = b"") -> Quote:
        """Remote attestation: have the platform's quoting identity sign."""
        self._check_alive()
        if not self.inside:
            raise EnclaveError("quoting starts from inside the enclave")
        self.platform.clock.charge_hash(512)
        return self.platform.sign_quote(self.measurement, report_data)

    # -- lifecycle -----------------------------------------------------------
    def destroy(self) -> None:
        if self._destroyed:
            return
        if self._call_stack:
            raise EnclaveError("cannot destroy an enclave with live calls")
        self._destroyed = True
        self.platform.epc.release_enclave(self.enclave_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "destroyed" if self._destroyed else ("inside" if self.inside else "outside")
        return f"<Enclave {self.name!r} id={self.enclave_id} {state}>"
