"""Data sealing for the simulated SGX platform.

Sealing lets an enclave persist secrets outside the EPC: the data is
AEAD-protected under a key derived from the platform's sealing fabric and
the enclave's identity.  Two key policies exist, as on real hardware:

* ``MRENCLAVE`` — only the *exact same* enclave build can unseal;
* ``MRSIGNER`` — any enclave from the same signer can unseal (used for
  upgradable services such as the ResultStore's persisted dictionary).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .measurement import Measurement
from ..crypto import gcm
from ..crypto.hashes import hmac_sha256
from ..errors import IntegrityError, SealingError


class SealPolicy(enum.Enum):
    MRENCLAVE = "mrenclave"
    MRSIGNER = "mrsigner"


@dataclass(frozen=True)
class SealedBlob:
    """A sealed secret: policy label + AEAD blob (iv || tag || ct)."""

    policy: SealPolicy
    payload: bytes


def derive_seal_key(
    fabric_key: bytes, measurement: Measurement, policy: SealPolicy
) -> bytes:
    """Derive the 16-byte sealing key for an enclave identity + policy."""
    identity = (
        measurement.mrenclave if policy is SealPolicy.MRENCLAVE else measurement.mrsigner
    )
    return hmac_sha256(fabric_key, b"seal/" + policy.value.encode() + identity)[:16]


def seal_data(
    fabric_key: bytes,
    measurement: Measurement,
    data: bytes,
    policy: SealPolicy,
    iv: bytes,
) -> SealedBlob:
    """Seal ``data`` to the given enclave identity."""
    key = derive_seal_key(fabric_key, measurement, policy)
    aad = b"speed/seal/" + policy.value.encode()
    return SealedBlob(policy=policy, payload=gcm.seal(key, iv, data, aad))


def unseal_data(fabric_key: bytes, measurement: Measurement, blob: SealedBlob) -> bytes:
    """Unseal a blob; raises :class:`SealingError` if this enclave's
    identity does not match the sealing identity or the blob was altered."""
    key = derive_seal_key(fabric_key, measurement, blob.policy)
    aad = b"speed/seal/" + blob.policy.value.encode()
    try:
        return gcm.open_(key, blob.payload, aad)
    except IntegrityError as exc:
        raise SealingError("unsealing failed: wrong identity or corrupt blob") from exc
