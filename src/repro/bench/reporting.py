"""Plain-text table rendering for the benchmark harness.

Every experiment prints the same rows/series the paper reports, in both
simulated (calibrated virtual clock) and measured (Python wall) time.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width table with a title rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def human_size(n_bytes: int) -> str:
    if n_bytes >= 1 << 20:
        return f"{n_bytes / (1 << 20):.0f}MB"
    if n_bytes >= 1 << 10:
        return f"{n_bytes / (1 << 10):.0f}KB"
    return f"{n_bytes}B"
