"""CSV export for experiment results.

Every ``run_*`` function in :mod:`repro.bench.harness` returns a list of
frozen dataclass rows; this module turns any such list into a CSV file
so the paper's figures can be re-plotted with external tooling::

    python -m repro.bench fig6 --csv out/
    # -> out/fig6.csv

Derived properties declared on the row classes (``speedup``,
``init_relative``, ...) are exported as additional columns.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import pathlib
from typing import Sequence


def _property_names(row) -> list[str]:
    cls = type(row)
    return [
        name for name in dir(cls)
        if isinstance(getattr(cls, name, None), property)
    ]


def _cell(value) -> object:
    if isinstance(value, float):
        return f"{value:.9g}"
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return ";".join(f"{k}={_cell(v)}" for k, v in sorted(value.items()))
    return value


def rows_to_csv(rows: Sequence) -> str:
    """Render a list of dataclass rows as CSV text."""
    if not rows:
        return ""
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError(f"expected dataclass rows, got {type(first).__name__}")
    field_names = [f.name for f in dataclasses.fields(first)]
    extra = _property_names(first)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(field_names + extra)
    for row in rows:
        values = [_cell(getattr(row, name)) for name in field_names]
        values += [_cell(getattr(row, name)) for name in extra]
        writer.writerow(values)
    return buffer.getvalue()


def write_csv(rows: Sequence, path: str | pathlib.Path) -> pathlib.Path:
    """Write rows to ``path`` (parent directories created); returns it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows))
    return path


def _json_cell(value) -> object:
    if isinstance(value, float):
        return float(f"{value:.9g}")
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {k: _json_cell(v) for k, v in sorted(value.items())}
    return value


def rows_to_records(rows: Sequence) -> list[dict]:
    """Render dataclass rows as JSON-ready dicts (fields + derived
    properties).  Numbers stay numbers; bytes become hex strings."""
    if not rows:
        return []
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError(f"expected dataclass rows, got {type(first).__name__}")
    names = [f.name for f in dataclasses.fields(first)] + _property_names(first)
    return [{name: _json_cell(getattr(row, name)) for name in names} for row in rows]


def write_json(rows: Sequence, path: str | pathlib.Path) -> pathlib.Path:
    """Write rows to ``path`` as a JSON array of objects; returns it."""
    import json

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows_to_records(rows), indent=2) + "\n")
    return path
