"""Experiment harness: one runner per table/figure of the paper.

Each ``run_*`` function regenerates one artifact of the evaluation
section (see DESIGN.md §4 for the experiment index) and returns
structured rows; ``print_*`` wrappers render them like the paper's
tables.  All runners are deterministic under their seeds.

Timing convention: ``sim_*`` fields are seconds on the calibrated
virtual clock (the series whose *shape* should match the paper);
``wall_*`` fields are honest Python wall-clock seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dataclass_replace
from typing import Any, Callable

from .reporting import format_table, human_size
from ..apps.registry import (
    CaseStudy,
    bow_case_study,
    compress_case_study,
    pattern_case_study,
    sift_case_study,
)
from ..baselines.presets import (
    no_dedup_runtime_config,
    single_key_runtime_config,
)
from ..baselines.unic import UnicRuntime, UnicStore
from ..core.runtime import RuntimeConfig
from ..core.scheme import CHALLENGE_SIZE, KEY_SIZE, CrossAppScheme
from ..core.tag import derive_locking_hash, derive_tag
from ..crypto import gcm
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import sha256
from ..deployment import (
    ClusterDeployment as _ClusterDeployment,
    Deployment as _Deployment,
)
from ..errors import SpeedError
from ..net.messages import GetRequest, PutRequest
from ..obs.exporters import diff_breakdown
from ..obs.tracer import Tracer
from ..sgx.cost_model import SimClock
from ..store.resultstore import StoreConfig
from ..workloads import (
    generate_rules,
    packet_trace,
    synthetic_image,
    synthetic_text,
    synthetic_webpage,
)

KB = 1024
MB = 1024 * 1024


# The harness assembles topologies by hand on purpose — it measures the
# exact components repro.connect() would wire together — so it opts out
# of the user-facing "use repro.connect()" deprecation nudge.
def Deployment(**kwargs):  # noqa: N802 - drop-in constructor shim
    return _Deployment(_warn=False, **kwargs)


def ClusterDeployment(**kwargs):  # noqa: N802 - drop-in constructor shim
    return _ClusterDeployment(_warn=False, **kwargs)


# ---------------------------------------------------------------------------
# Fig. 5 — relative running time of the four applications
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Row:
    label: str
    sim_baseline_s: float
    sim_init_s: float
    sim_subsq_s: float
    wall_baseline_s: float
    wall_init_s: float
    wall_subsq_s: float

    @property
    def init_relative(self) -> float:
        """Init. Comp. running time relative to baseline (Fig. 5 y-axis)."""
        return 100.0 * self.sim_init_s / self.sim_baseline_s

    @property
    def subsq_relative(self) -> float:
        return 100.0 * self.sim_subsq_s / self.sim_baseline_s

    @property
    def speedup(self) -> float:
        return self.sim_baseline_s / self.sim_subsq_s if self.sim_subsq_s else float("inf")


def _measure_case(
    case: CaseStudy, input_value: Any, seed: bytes, trials: int
) -> Fig5Row | None:
    """Measure baseline / initial / subsequent for one input."""

    def mean(values: list[float]) -> float:
        return sum(values) / len(values)

    sim_base, wall_base = [], []
    sim_init, wall_init = [], []
    sim_subsq, wall_subsq = [], []

    # Warm caches/JIT paths so wall-clock compute is comparable across
    # the baseline/init measurements (the compute term feeds the sim clock).
    case.func(input_value)

    for trial in range(trials):
        trial_seed = seed + trial.to_bytes(2, "big")

        # Baseline: without SPEED.
        from ..core.description import TrustedLibraryRegistry

        libs = TrustedLibraryRegistry()
        case.register_into(libs)
        d_base = Deployment(seed=trial_seed + b"/base")
        app = d_base.create_application(
            "baseline", libs, no_dedup_runtime_config("baseline")
        )
        case.deduplicable(app)(input_value)
        record = app.runtime.stats.records[-1]
        sim_base.append(record.sim_seconds)
        wall_base.append(record.wall_seconds)

        # Initial computation: SPEED with an empty store, synchronous PUT
        # (the paper's Init. Comp. includes "the time for secure storing
        # [the] result").
        libs2 = TrustedLibraryRegistry()
        case.register_into(libs2)
        d = Deployment(seed=trial_seed + b"/speed")
        app1 = d.create_application(
            "app-initial", libs2, RuntimeConfig(app_id="app-initial", async_put=False)
        )
        case.deduplicable(app1)(input_value)
        record = app1.runtime.stats.records[-1]
        sim_init.append(record.sim_seconds)
        wall_init.append(record.wall_seconds)

        # Subsequent computation: a second application, same computation.
        libs3 = TrustedLibraryRegistry()
        case.register_into(libs3)
        app2 = d.create_application("app-subsq", libs3)
        case.deduplicable(app2)(input_value)
        record = app2.runtime.stats.records[-1]
        if not record.hit:
            raise SpeedError("subsequent computation unexpectedly missed the store")
        sim_subsq.append(record.sim_seconds)
        wall_subsq.append(record.wall_seconds)

    return Fig5Row(
        label="",
        sim_baseline_s=mean(sim_base),
        sim_init_s=mean(sim_init),
        sim_subsq_s=mean(sim_subsq),
        wall_baseline_s=mean(wall_base),
        wall_init_s=mean(wall_init),
        wall_subsq_s=mean(wall_subsq),
    )


def _run_fig5(
    case_factory: Callable[[], CaseStudy],
    labeled_inputs: list[tuple[str, Any]],
    trials: int,
    seed: bytes,
) -> list[Fig5Row]:
    rows = []
    for label, value in labeled_inputs:
        case = case_factory()
        row = _measure_case(case, value, seed + label.encode(), trials)
        rows.append(
            Fig5Row(
                label=label,
                sim_baseline_s=row.sim_baseline_s,
                sim_init_s=row.sim_init_s,
                sim_subsq_s=row.sim_subsq_s,
                wall_baseline_s=row.wall_baseline_s,
                wall_init_s=row.wall_init_s,
                wall_subsq_s=row.wall_subsq_s,
            )
        )
    return rows


def run_fig5a_sift(sizes: list[int] | None = None, trials: int = 1, seed: int = 7) -> list[Fig5Row]:
    """Fig. 5(a): SIFT feature extraction under different image sizes."""
    sizes = sizes or [96, 128, 192, 256]
    inputs = [(f"{s}px", synthetic_image(s, seed=seed)) for s in sizes]
    return _run_fig5(sift_case_study, inputs, trials, b"fig5a")


def run_fig5b_compress(sizes: list[int] | None = None, trials: int = 1, seed: int = 7) -> list[Fig5Row]:
    """Fig. 5(b): zlib-style compression under different text sizes."""
    sizes = sizes or [16 * KB, 64 * KB, 128 * KB, 256 * KB]
    inputs = [(human_size(s), synthetic_text(s, seed=seed)) for s in sizes]
    return _run_fig5(compress_case_study, inputs, trials, b"fig5b")


def run_fig5c_pattern(
    payload_sizes: list[int] | None = None,
    n_rules: int = 3700,
    trials: int = 1,
    seed: int = 7,
) -> list[Fig5Row]:
    """Fig. 5(c): packet scanning against the full ruleset."""
    payload_sizes = payload_sizes or [256, 512, 1024, 2048]
    rules = generate_rules(n_rules, seed=seed)
    inputs = []
    for size in payload_sizes:
        payload = packet_trace(1, payload_size=size, duplicate_fraction=0.0, seed=seed + size)[0]
        inputs.append((human_size(len(payload)), payload))
    return _run_fig5(lambda: pattern_case_study(rules), inputs, trials, b"fig5c")


def run_fig5d_bow(word_counts: list[int] | None = None, trials: int = 1, seed: int = 7) -> list[Fig5Row]:
    """Fig. 5(d): BoW computation under different page sizes."""
    word_counts = word_counts or [2000, 4000, 8000, 16000]
    inputs = [(f"{n}w", synthetic_webpage(n, seed=seed)) for n in word_counts]
    return _run_fig5(bow_case_study, inputs, trials, b"fig5d")


def print_fig5(title: str, rows: list[Fig5Row]) -> str:
    headers = [
        "input", "base sim(s)", "init sim(s)", "subsq sim(s)",
        "init rel%", "subsq rel%", "speedup", "base wall(s)", "subsq wall(s)",
    ]
    table = [
        [
            r.label, r.sim_baseline_s, r.sim_init_s, r.sim_subsq_s,
            r.init_relative, r.subsq_relative, r.speedup,
            r.wall_baseline_s, r.wall_subsq_s,
        ]
        for r in rows
    ]
    return format_table(title, headers, table)


# ---------------------------------------------------------------------------
# Table I — cryptographic operations in DedupRuntime
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    input_bytes: int
    sim_ms: dict[str, float]
    wall_ms: dict[str, float]


TABLE1_OPS = ["tag_gen", "key_gen", "key_rec", "result_enc", "result_dec"]


def run_table1(sizes: list[int] | None = None, trials: int = 3, seed: int = 11) -> list[Table1Row]:
    """Table I: Tag Gen / Key Gen / Key Rec / Result Enc / Result Dec."""
    sizes = sizes or [1 * KB, 10 * KB, 100 * KB, 1 * MB]
    drbg = HmacDrbg(seed.to_bytes(4, "big"), b"table1")
    func_identity = drbg.generate(32)
    rows = []
    for size in sizes:
        data = drbg.generate(16) * (size // 16 + 1)
        data = data[:size]
        sim_acc = {op: 0.0 for op in TABLE1_OPS}
        wall_acc = {op: 0.0 for op in TABLE1_OPS}
        for _ in range(trials):
            clock = SimClock()

            def timed(op: str, fn: Callable[[], Any]) -> Any:
                start_wall = time.perf_counter()
                start_sim = clock.snapshot()
                out = fn()
                wall_acc[op] += time.perf_counter() - start_wall
                sim_acc[op] += clock.since(start_sim) / clock.params.cpu_freq_hz
                return out

            tag = timed("tag_gen", lambda: derive_tag(func_identity, data, clock))

            challenge = drbg.generate(CHALLENGE_SIZE)
            key = drbg.generate(KEY_SIZE)
            iv = drbg.generate(12)

            def key_gen():
                locking = derive_locking_hash(func_identity, data, challenge, clock)
                clock.charge_keygen()
                return bytes(a ^ b for a, b in zip(key, locking[:KEY_SIZE]))

            wrapped = timed("key_gen", key_gen)

            def key_rec():
                locking = derive_locking_hash(func_identity, data, challenge, clock)
                return bytes(a ^ b for a, b in zip(wrapped, locking[:KEY_SIZE]))

            recovered = timed("key_rec", key_rec)
            assert recovered == key

            def result_enc():
                clock.charge_aead_encrypt(len(data))
                return gcm.seal(key, iv, data, aad=tag)

            sealed = timed("result_enc", result_enc)

            def result_dec():
                clock.charge_aead_decrypt(len(sealed))
                return gcm.open_(key, sealed, aad=tag)

            plain = timed("result_dec", result_dec)
            assert plain == data
        rows.append(
            Table1Row(
                input_bytes=size,
                sim_ms={op: sim_acc[op] / trials * 1000 for op in TABLE1_OPS},
                wall_ms={op: wall_acc[op] / trials * 1000 for op in TABLE1_OPS},
            )
        )
    return rows


def print_table1(rows: list[Table1Row]) -> str:
    headers = ["Input", "Tag Gen.", "Key Gen.", "Key Rec.", "Res Enc.", "Res Dec."]
    sim_rows = [
        [human_size(r.input_bytes)] + [r.sim_ms[op] for op in TABLE1_OPS] for r in rows
    ]
    wall_rows = [
        [human_size(r.input_bytes)] + [r.wall_ms[op] for op in TABLE1_OPS] for r in rows
    ]
    return (
        format_table("Table I (simulated, ms)", headers, sim_rows)
        + "\n\n"
        + format_table("Table I (measured wall, ms)", headers, wall_rows)
    )


# ---------------------------------------------------------------------------
# Fig. 6 — ResultStore throughput (with and without SGX)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Row:
    size_bytes: int
    use_sgx: bool
    put_total_sim_s: float
    get_total_sim_s: float
    put_total_wall_s: float
    get_total_wall_s: float
    ops: int


def run_fig6(
    sizes: list[int] | None = None, ops: int = 100, seed: int = 13
) -> list[Fig6Row]:
    """Fig. 6: time to process ``ops`` PUTs and GETs of each size, with
    the store enclave enabled and disabled ("the incoming data are all
    different")."""
    sizes = sizes or [1 * KB, 10 * KB, 100 * KB, 1 * MB]
    rows = []
    for use_sgx in (True, False):
        for size in sizes:
            d = Deployment(
                seed=b"fig6" + bytes([use_sgx]) + size.to_bytes(4, "big"),
                store_config=StoreConfig(use_sgx=use_sgx),
            )
            if use_sgx:
                bench_enclave = d.platform.create_enclave("fig6-client", b"fig6-client-code")
            else:
                bench_enclave = None
            client = d.store.connect("fig6-client-addr", app_enclave=bench_enclave)
            drbg = HmacDrbg(seed.to_bytes(4, "big"), b"fig6")
            base = drbg.generate(4096)
            payloads = []
            for i in range(ops):
                tag = sha256(b"fig6-tag" + i.to_bytes(4, "big") + bytes([use_sgx]) + size.to_bytes(4, "big"))
                body = (base * (size // len(base) + 1))[:size - 8] + i.to_bytes(8, "big")
                payloads.append(
                    PutRequest(
                        tag=tag,
                        challenge=drbg.generate(CHALLENGE_SIZE),
                        wrapped_key=drbg.generate(KEY_SIZE),
                        sealed_result=body,
                        app_id="fig6",
                    )
                )

            clock = d.clock
            wall0, sim0 = time.perf_counter(), clock.snapshot()
            for put in payloads:
                client.call(put)
            put_wall = time.perf_counter() - wall0
            put_sim = clock.since(sim0) / clock.params.cpu_freq_hz

            wall0, sim0 = time.perf_counter(), clock.snapshot()
            for put in payloads:
                response = client.call(GetRequest(tag=put.tag, app_id="fig6"))
                assert response.found
            get_wall = time.perf_counter() - wall0
            get_sim = clock.since(sim0) / clock.params.cpu_freq_hz

            rows.append(
                Fig6Row(
                    size_bytes=size,
                    use_sgx=use_sgx,
                    put_total_sim_s=put_sim,
                    get_total_sim_s=get_sim,
                    put_total_wall_s=put_wall,
                    get_total_wall_s=get_wall,
                    ops=ops,
                )
            )
    return rows


def print_fig6(rows: list[Fig6Row]) -> str:
    headers = ["size", "SGX", "PUT total sim(s)", "GET total sim(s)",
               "PUT wall(s)", "GET wall(s)", "ops"]
    table = [
        [
            human_size(r.size_bytes), "yes" if r.use_sgx else "no",
            r.put_total_sim_s, r.get_total_sim_s,
            r.put_total_wall_s, r.get_total_wall_s, r.ops,
        ]
        for r in rows
    ]
    return format_table("Fig. 6: ResultStore throughput", headers, table)


# ---------------------------------------------------------------------------
# Ablation A1 — result-protection schemes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SchemeRow:
    scheme: str
    sim_init_s: float
    sim_subsq_s: float
    encrypted_at_rest: bool


def run_ablation_schemes(text_bytes: int = 64 * KB, seed: int = 17) -> list[SchemeRow]:
    """A1: cross-app RCE vs single-key (§III-B) vs UNIC plaintext."""
    from ..apps.compress import deflate
    from ..core.description import TrustedLibraryRegistry

    data = synthetic_text(text_bytes, seed=seed)
    rows = []
    for name, config_factory, encrypted in (
        ("cross-app (III-C)", lambda: RuntimeConfig(app_id="a", async_put=False), True),
        ("single-key (III-B)", lambda: single_key_runtime_config("a"), True),
    ):
        case = compress_case_study()
        libs = TrustedLibraryRegistry()
        case.register_into(libs)
        d = Deployment(seed=b"a1" + name.encode())
        cfg = config_factory()
        cfg.async_put = False
        app1 = d.create_application("a1-app1", libs, cfg)
        case.deduplicable(app1)(data)
        init = app1.runtime.stats.records[-1].sim_seconds

        libs2 = TrustedLibraryRegistry()
        case.register_into(libs2)
        cfg2 = config_factory()
        app2 = d.create_application("a1-app2", libs2, cfg2)
        case.deduplicable(app2)(data)
        subsq = app2.runtime.stats.records[-1].sim_seconds
        rows.append(SchemeRow(name, init, subsq, encrypted))

    # UNIC plaintext baseline.
    clock = SimClock()
    store = UnicStore(mac_key=b"\x01" * 32)
    unic = UnicRuntime(
        store, deflate, encode=lambda b: b, decode=lambda b: b,
        clock=clock, native_factor=300.0,
    )
    s0 = clock.snapshot()
    unic.call(data, data)
    init = clock.since(s0) / clock.params.cpu_freq_hz
    s0 = clock.snapshot()
    unic.call(data, data)
    subsq = clock.since(s0) / clock.params.cpu_freq_hz
    rows.append(SchemeRow("UNIC plaintext [16]", init, subsq, False))
    return rows


def print_ablation_schemes(rows: list[SchemeRow]) -> str:
    headers = ["scheme", "init sim(s)", "subsq sim(s)", "encrypted at rest"]
    return format_table(
        "Ablation A1: result-protection schemes",
        headers,
        [[r.scheme, r.sim_init_s, r.sim_subsq_s, "yes" if r.encrypted_at_rest else "NO"] for r in rows],
    )


# ---------------------------------------------------------------------------
# Ablation A2 — synchronous vs asynchronous PUT
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AsyncPutRow:
    mode: str
    sim_init_latency_s: float


def run_ablation_async_put(text_bytes: int = 64 * KB, seed: int = 19) -> list[AsyncPutRow]:
    """A2: initial-computation latency with sync vs async PUT (§V-B)."""
    from ..core.description import TrustedLibraryRegistry

    data = synthetic_text(text_bytes, seed=seed)
    rows = []
    for mode, async_put in (("sync PUT", False), ("async PUT", True)):
        case = compress_case_study()
        libs = TrustedLibraryRegistry()
        case.register_into(libs)
        d = Deployment(seed=b"a2" + mode.encode())
        app = d.create_application(
            "a2-app", libs, RuntimeConfig(app_id="a2-app", async_put=async_put)
        )
        case.deduplicable(app)(data)
        latency = app.runtime.stats.records[-1].sim_seconds
        app.runtime.flush_puts()
        rows.append(AsyncPutRow(mode, latency))
    return rows


def print_ablation_async_put(rows: list[AsyncPutRow]) -> str:
    return format_table(
        "Ablation A2: PUT on/off the critical path",
        ["mode", "init latency sim(s)"],
        [[r.mode, r.sim_init_latency_s] for r in rows],
    )


# ---------------------------------------------------------------------------
# Ablation A3 — metadata-outside vs results-inside EPC
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EpcRow:
    design: str
    entries: int
    result_bytes: int
    page_faults: int
    sim_total_s: float


def run_ablation_epc(
    n_entries: int = 256,
    result_bytes: int = 64 * KB,
    epc_usable: int = 4 * MB,
    seed: int = 23,
) -> list[EpcRow]:
    """A3: why the paper stores ciphertexts outside the enclave.

    Fills a store whose EPC is deliberately small, then sweeps GETs; the
    blobs-in-EPC variant thrashes while the paper's design stays flat.
    """
    rows = []
    for design, blobs_in_epc in (("metadata-only in EPC (paper)", False),
                                 ("results inside EPC", True)):
        d = Deployment(
            seed=b"a3" + design.encode(),
            store_config=StoreConfig(use_sgx=True, blobs_in_epc=blobs_in_epc),
            epc_usable_bytes=epc_usable,
        )
        enclave = d.platform.create_enclave("a3-client", b"a3-client-code")
        client = d.store.connect("a3-client-addr", app_enclave=enclave)
        drbg = HmacDrbg(seed.to_bytes(4, "big"), b"a3")
        block = drbg.generate(1024)
        tags = []
        for i in range(n_entries):
            tag = sha256(b"a3" + design.encode() + i.to_bytes(4, "big"))
            tags.append(tag)
            body = (block * (result_bytes // len(block) + 1))[:result_bytes - 8] + i.to_bytes(8, "big")
            client.call(PutRequest(tag=tag, challenge=drbg.generate(32),
                                   wrapped_key=drbg.generate(16),
                                   sealed_result=body, app_id="a3"))
        faults_before = d.platform.epc.fault_count
        sim0 = d.clock.snapshot()
        for tag in tags:
            response = client.call(GetRequest(tag=tag, app_id="a3"))
            assert response.found
        sim_total = d.clock.since(sim0) / d.clock.params.cpu_freq_hz
        rows.append(
            EpcRow(
                design=design,
                entries=n_entries,
                result_bytes=result_bytes,
                page_faults=d.platform.epc.fault_count - faults_before,
                sim_total_s=sim_total,
            )
        )
    return rows


def print_ablation_epc(rows: list[EpcRow]) -> str:
    return format_table(
        "Ablation A3: EPC pressure (GET sweep)",
        ["design", "entries", "result size", "page faults", "GET total sim(s)"],
        [[r.design, r.entries, human_size(r.result_bytes), r.page_faults, r.sim_total_s]
         for r in rows],
    )


# ---------------------------------------------------------------------------
# Ablation A4 — DoS quota under a PUT flood
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class QuotaRow:
    policy: str
    flood_puts: int
    accepted_from_attacker: int
    honest_entries_surviving: int


def run_ablation_quota(flood: int = 200, honest: int = 20, seed: int = 29) -> list[QuotaRow]:
    """A4: a malicious app floods PUTs; quotas cap the damage (§III-D)."""
    from ..store.quota import QuotaPolicy

    rows = []
    for policy_name, quota in (
        ("no quota", None),
        ("quota: 32 entries/app", QuotaPolicy(max_entries_per_app=32)),
    ):
        d = Deployment(
            seed=b"a4" + policy_name.encode(),
            store_config=StoreConfig(
                use_sgx=True, capacity_entries=128, eviction="lru", quota=quota
            ),
        )
        honest_enclave = d.platform.create_enclave("a4-honest", b"a4-honest-code")
        attacker_enclave = d.platform.create_enclave("a4-attacker", b"a4-attacker-code")
        honest_client = d.store.connect("a4-honest-addr", app_enclave=honest_enclave)
        attacker_client = d.store.connect("a4-attacker-addr", app_enclave=attacker_enclave)
        drbg = HmacDrbg(seed.to_bytes(4, "big"), b"a4")

        honest_tags = []
        for i in range(honest):
            tag = sha256(b"a4-honest" + policy_name.encode() + i.to_bytes(4, "big"))
            honest_tags.append(tag)
            honest_client.call(PutRequest(tag=tag, challenge=drbg.generate(32),
                                          wrapped_key=drbg.generate(16),
                                          sealed_result=drbg.generate(256),
                                          app_id="honest"))
        accepted = 0
        for i in range(flood):
            tag = sha256(b"a4-flood" + policy_name.encode() + i.to_bytes(4, "big"))
            put = PutRequest(tag=tag, challenge=drbg.generate(32),
                             wrapped_key=drbg.generate(16),
                             sealed_result=drbg.generate(256), app_id="attacker")
            attacker_client.send_oneway(put)
        for response in attacker_client.drain_responses():
            if getattr(response, "accepted", False):
                accepted += 1
        surviving = sum(1 for t in honest_tags if d.store.contains(t))
        rows.append(QuotaRow(policy_name, flood, accepted, surviving))
    return rows


def print_ablation_quota(rows: list[QuotaRow]) -> str:
    return format_table(
        "Ablation A4: PUT-flood DoS vs quota",
        ["policy", "flood PUTs", "accepted from attacker", "honest entries surviving"],
        [[r.policy, r.flood_puts, r.accepted_from_attacker, r.honest_entries_surviving]
         for r in rows],
    )


# ---------------------------------------------------------------------------
# Ablation A5 — adaptive deduplication strategy (paper §VII future work)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveRow:
    policy: str
    workload: str
    calls: int
    store_gets: int
    sim_total_s: float


def run_ablation_adaptive(calls: int = 40, seed: int = 31) -> list[AdaptiveRow]:
    """A5: the adaptive policy suppresses lookups on workloads where
    deduplication does not pay, and leaves profitable workloads alone."""
    from .. import RuntimeConfig
    from ..core.adaptive import AdaptiveDedupPolicy
    from ..core.description import TrustedLibraryRegistry

    rows = []
    workloads = {
        # A trivially fast function over all-unique inputs: dedup never pays.
        "cheap+unique": lambda i: synthetic_text(256, seed=seed + i),
        # An expensive function over a highly repetitive stream: dedup wins.
        "slow+repetitive": lambda i: synthetic_text(64 * KB, seed=seed + (i % 3)),
    }
    for policy_name, make_policy_obj in (
        ("always-on", lambda: None),
        ("adaptive", lambda: AdaptiveDedupPolicy(min_observations=6, probe_interval=20)),
    ):
        for workload_name, make_input in workloads.items():
            case = compress_case_study()
            libs = TrustedLibraryRegistry()
            case.register_into(libs)
            d = Deployment(seed=b"a5" + policy_name.encode() + workload_name.encode())
            app = d.create_application(
                "a5-app", libs,
                RuntimeConfig(app_id="a5-app", adaptive=make_policy_obj()),
            )
            dedup = case.deduplicable(app)
            sim0 = d.clock.snapshot()
            for i in range(calls):
                dedup(make_input(i))
                app.runtime.flush_puts()
            sim_total = d.clock.since(sim0) / d.clock.params.cpu_freq_hz
            rows.append(AdaptiveRow(
                policy=policy_name,
                workload=workload_name,
                calls=calls,
                store_gets=d.store.stats.gets,
                sim_total_s=sim_total,
            ))
    return rows


def print_ablation_adaptive(rows: list[AdaptiveRow]) -> str:
    return format_table(
        "Ablation A5: adaptive deduplication strategy",
        ["policy", "workload", "calls", "store GETs", "total sim(s)"],
        [[r.policy, r.workload, r.calls, r.store_gets, r.sim_total_s] for r in rows],
    )


# ---------------------------------------------------------------------------
# Ablation A6 — oblivious metadata access (Path ORAM, paper §III-D)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ObliviousRow:
    design: str
    ops: int
    sim_total_s: float
    oram_accesses: int


def run_ablation_oblivious(n_entries: int = 64, gets: int = 128, seed: int = 37) -> list[ObliviousRow]:
    """A6: the overhead of hiding the metadata access pattern.

    Fills a store and replays a GET workload against the plain dictionary
    and the Path-ORAM dictionary; the difference is the "extra overhead"
    the paper anticipated when discussing oblivious memory access.
    """
    rows = []
    for design, oblivious in (("plain dictionary (paper)", False),
                              ("Path ORAM metadata", True)):
        d = Deployment(
            seed=b"a6" + design.encode(),
            store_config=StoreConfig(
                oblivious_metadata=oblivious,
                oblivious_capacity=max(256, 2 * n_entries),
            ),
        )
        enclave = d.platform.create_enclave("a6-client", b"a6-client-code")
        client = d.store.connect("a6-client-addr", app_enclave=enclave)
        drbg = HmacDrbg(seed.to_bytes(4, "big"), b"a6")
        tags = []
        for i in range(n_entries):
            tag = sha256(b"a6" + design.encode() + i.to_bytes(4, "big"))
            tags.append(tag)
            client.call(PutRequest(tag=tag, challenge=drbg.generate(32),
                                   wrapped_key=drbg.generate(16),
                                   sealed_result=drbg.generate(1024), app_id="a6"))
        sim0 = d.clock.snapshot()
        for i in range(gets):
            response = client.call(GetRequest(tag=tags[i % n_entries], app_id="a6"))
            assert response.found
        sim_total = d.clock.since(sim0) / d.clock.params.cpu_freq_hz
        accesses = d.store._dict.oram.accesses if oblivious else 0
        rows.append(ObliviousRow(design=design, ops=gets,
                                 sim_total_s=sim_total, oram_accesses=accesses))
    return rows


def print_ablation_oblivious(rows: list[ObliviousRow]) -> str:
    return format_table(
        "Ablation A6: oblivious metadata access",
        ["design", "GET ops", "total sim(s)", "ORAM path accesses"],
        [[r.design, r.ops, r.sim_total_s, r.oram_accesses] for r in rows],
    )


# ---------------------------------------------------------------------------
# E9 — incremental processing (the introduction's motivating workload)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class IncrementalRow:
    epoch: int
    pages: int
    new_pages: int
    hit_rate: float
    sim_epoch_s: float


def run_incremental(
    epochs: int = 4,
    pages_per_epoch: int = 12,
    churn: float = 0.25,
    seed: int = 41,
) -> list[IncrementalRow]:
    """E9: "incrementally updated datasets are constantly being processed
    by the same or similar computing tasks" (§I).  Re-crawl a page set
    whose content churns by ``churn`` per epoch; the hit rate climbs to
    ``1 - churn`` and the per-epoch cost collapses accordingly."""
    from ..core.description import TrustedLibraryRegistry

    case = bow_case_study()
    libs = TrustedLibraryRegistry()
    case.register_into(libs)
    d = Deployment(seed=b"e9-incremental")
    app = d.create_application("crawler", libs)
    dedup = case.deduplicable(app)

    corpus = [synthetic_webpage(600, seed=seed + i) for i in range(pages_per_epoch)]
    next_fresh = pages_per_epoch
    rows = []
    for epoch in range(epochs):
        if epoch > 0:
            n_churn = max(1, int(churn * pages_per_epoch))
            for slot in range(n_churn):
                corpus[(epoch * 7 + slot) % pages_per_epoch] = synthetic_webpage(
                    600, seed=seed + next_fresh
                )
                next_fresh += 1
        hits_before = app.runtime.stats.hits
        sim0 = d.clock.snapshot()
        for page in corpus:
            dedup(page)
            app.runtime.flush_puts()
        sim_epoch = d.clock.since(sim0) / d.clock.params.cpu_freq_hz
        epoch_hits = app.runtime.stats.hits - hits_before
        rows.append(IncrementalRow(
            epoch=epoch,
            pages=pages_per_epoch,
            new_pages=pages_per_epoch - epoch_hits,
            hit_rate=epoch_hits / pages_per_epoch,
            sim_epoch_s=sim_epoch,
        ))
    return rows


def print_incremental(rows: list[IncrementalRow]) -> str:
    return format_table(
        "E9: incremental re-crawl processing",
        ["epoch", "pages", "new pages", "hit rate", "epoch sim(s)"],
        [[r.epoch, r.pages, r.new_pages, f"{r.hit_rate:.0%}", r.sim_epoch_s]
         for r in rows],
    )


# ---------------------------------------------------------------------------
# E10 — speedup as a function of workload duplication ratio
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DuplicationRow:
    duplicate_fraction: float
    calls: int
    hit_rate: float
    sim_total_s: float
    sim_baseline_s: float

    @property
    def speedup(self) -> float:
        return self.sim_baseline_s / self.sim_total_s if self.sim_total_s else float("inf")


def run_duplication_sweep(
    fractions: list[float] | None = None,
    calls: int = 24,
    text_bytes: int = 32 * KB,
    seed: int = 43,
) -> list[DuplicationRow]:
    """E10: how much duplication a workload needs before SPEED pays.

    Generalises Fig. 5: instead of a guaranteed-hit second call, run a
    realistic stream whose duplicate fraction varies and report the
    end-to-end speedup over the no-SPEED baseline.
    """
    from ..core.description import TrustedLibraryRegistry
    from ..workloads import text_corpus

    fractions = fractions if fractions is not None else [0.0, 0.25, 0.5, 0.75, 0.9]
    rows = []
    for fraction in fractions:
        corpus = text_corpus(calls, text_bytes, duplicate_fraction=fraction,
                             seed=seed)

        def run(config_factory) -> float:
            case = compress_case_study()
            libs = TrustedLibraryRegistry()
            case.register_into(libs)
            d = Deployment(seed=b"e10-%d" % int(fraction * 100))
            app = d.create_application("app", libs, config_factory())
            dedup = case.deduplicable(app)
            sim0 = d.clock.snapshot()
            for doc in corpus:
                dedup(doc)
                app.runtime.flush_puts()
            return (
                d.clock.since(sim0) / d.clock.params.cpu_freq_hz,
                app.runtime.stats.hit_rate(),
            )

        sim_speed, hit_rate = run(lambda: RuntimeConfig(app_id="speed"))
        sim_base, _ = run(lambda: no_dedup_runtime_config("base"))
        rows.append(DuplicationRow(
            duplicate_fraction=fraction,
            calls=calls,
            hit_rate=hit_rate,
            sim_total_s=sim_speed,
            sim_baseline_s=sim_base,
        ))
    return rows


def print_duplication_sweep(rows: list[DuplicationRow]) -> str:
    return format_table(
        "E10: speedup vs workload duplication ratio",
        ["dup fraction", "calls", "hit rate", "SPEED sim(s)",
         "baseline sim(s)", "speedup"],
        [[f"{r.duplicate_fraction:.0%}", r.calls, f"{r.hit_rate:.0%}",
          r.sim_total_s, r.sim_baseline_s, r.speedup] for r in rows],
    )


# ---------------------------------------------------------------------------
# Batch — amortizing transitions/records across calls (the batched pipeline)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchRow:
    """One (phase, batch size) cell of the batching sweep.

    ``transitions`` counts enclave boundary crossings entered across the
    whole deployment (application + store enclaves); ``channel_records``
    counts records the client sealed.  ``identical`` is True when the
    phase's results matched the sequential reference bit-for-bit (always
    True for the store-level phases, which assert their responses).
    """

    phase: str
    batch_size: int
    ops: int
    size_bytes: int
    transitions: int
    channel_records: int
    sim_total_s: float
    wall_total_s: float
    identical: bool = True
    # Per-phase latency totals ({span name: {count, sim_s, wall_s}})
    # attributed to this row's request loop by the session tracer.
    phase_breakdown: dict = field(default_factory=dict)

    @property
    def transitions_per_call(self) -> float:
        return self.transitions / self.ops

    @property
    def records_per_call(self) -> float:
        return self.channel_records / self.ops

    @property
    def sim_ops_per_s(self) -> float:
        return self.ops / self.sim_total_s if self.sim_total_s else float("inf")

    @property
    def wall_ops_per_s(self) -> float:
        return self.ops / self.wall_total_s if self.wall_total_s else float("inf")


def _chunks(seq: list, size: int) -> list[list]:
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def run_batch_store(
    batch_sizes: list[int] | None = None,
    ops: int = 128,
    size_bytes: int = 1 * KB,
    seed: int = 53,
) -> list[BatchRow]:
    """Fig. 6 regime, batched: ``ops`` PUTs then ``ops`` GETs against the
    SGX-backed store, issued in batches of each sweep size.  Batch size 1
    uses the plain per-item wire path, so it is the unbatched baseline."""
    batch_sizes = batch_sizes or [1, 4, 16, 64, 128]
    rows = []
    for batch in batch_sizes:
        tracer = Tracer()
        d = Deployment(
            seed=b"batch-store" + batch.to_bytes(4, "big"),
            store_config=StoreConfig(use_sgx=True),
            tracer=tracer,
        )
        enclave = d.platform.create_enclave("batch-client", b"batch-client-code")
        client = d.store.connect("batch-client-addr", app_enclave=enclave)
        drbg = HmacDrbg(seed.to_bytes(4, "big"), b"batch")
        base = drbg.generate(4096)
        puts = []
        for i in range(ops):
            tag = sha256(b"batch-tag" + batch.to_bytes(4, "big") + i.to_bytes(4, "big"))
            body = (base * (size_bytes // len(base) + 1))[:size_bytes - 8] + i.to_bytes(8, "big")
            puts.append(PutRequest(
                tag=tag,
                challenge=drbg.generate(CHALLENGE_SIZE),
                wrapped_key=drbg.generate(KEY_SIZE),
                sealed_result=body,
                app_id="batch",
            ))

        def transitions() -> int:
            return enclave.transition_count + d.store.enclave.transition_count

        def sweep(phase: str, requests: list, check) -> BatchRow:
            trans0, rec0 = transitions(), client.records_sent
            phases0 = tracer.phase_breakdown()
            wall0, sim0 = time.perf_counter(), d.clock.snapshot()
            for chunk in _chunks(requests, batch):
                if len(chunk) == 1:
                    check(client.call(chunk[0]))
                else:
                    for response in client.call_batch(chunk):
                        check(response)
            return BatchRow(
                phase=phase,
                batch_size=batch,
                ops=len(requests),
                size_bytes=size_bytes,
                transitions=transitions() - trans0,
                channel_records=client.records_sent - rec0,
                sim_total_s=d.clock.since(sim0) / d.clock.params.cpu_freq_hz,
                wall_total_s=time.perf_counter() - wall0,
                phase_breakdown=diff_breakdown(phases0, tracer.phase_breakdown()),
            )

        rows.append(sweep("put", puts, lambda r: None))
        gets = [GetRequest(tag=p.tag, app_id="batch") for p in puts]

        def check_found(response) -> None:
            assert response.found

        rows.append(sweep("get", gets, check_found))
    return rows


def run_batch_execute(
    batch_sizes: list[int] | None = None,
    calls: int = 24,
    text_bytes: int = 8 * KB,
    duplicate_fraction: float = 0.5,
    seed: int = 59,
) -> list[BatchRow]:
    """Fig. 5-style rerun through :meth:`DedupRuntime.execute_many`.

    A sequential reference processes the corpus one :meth:`execute` at a
    time; the batched runs chunk the same corpus through ``execute_many``
    (with the L1 cache serving intra-batch duplicates) and must produce
    bit-identical results."""
    from ..core.description import TrustedLibraryRegistry
    from ..workloads import text_corpus

    batch_sizes = batch_sizes or [8, 24]
    corpus = text_corpus(calls, text_bytes, duplicate_fraction=duplicate_fraction,
                         seed=seed)

    def fresh_app(tag: bytes, config: RuntimeConfig):
        case = compress_case_study()
        libs = TrustedLibraryRegistry()
        case.register_into(libs)
        d = Deployment(seed=b"batch-exec" + tag, tracer=Tracer())
        return case, d, d.create_application("batch-app", libs, config)

    def measure(app, d, body) -> tuple[BatchRow, list]:
        trans0 = app.enclave.transition_count + d.store.enclave.transition_count
        rec0 = app.runtime.client.records_sent
        phases0 = d.tracer.phase_breakdown()
        wall0, sim0 = time.perf_counter(), d.clock.snapshot()
        results = body()
        trans1 = app.enclave.transition_count + d.store.enclave.transition_count
        return BatchRow(
            phase="",
            batch_size=0,
            ops=len(corpus),
            size_bytes=text_bytes,
            transitions=trans1 - trans0,
            channel_records=app.runtime.client.records_sent - rec0,
            sim_total_s=d.clock.since(sim0) / d.clock.params.cpu_freq_hz,
            wall_total_s=time.perf_counter() - wall0,
            phase_breakdown=diff_breakdown(
                phases0, d.tracer.phase_breakdown()
            ),
        ), results

    # Sequential reference: one execute per document, flushing between.
    case, d_seq, app_seq = fresh_app(b"/seq", RuntimeConfig(app_id="batch-app"))
    dedup = case.deduplicable(app_seq)

    def run_seq() -> list:
        out = []
        for doc in corpus:
            out.append(dedup(doc))
            app_seq.runtime.flush_puts()
        return out

    row, reference = measure(app_seq, d_seq, run_seq)
    rows = [dataclass_replace(row, phase="execute-seq", batch_size=1)]

    for batch in sorted({b for b in batch_sizes if 1 < b <= calls} | {calls}):
        case_b, d_b, app_b = fresh_app(
            b"/b" + batch.to_bytes(4, "big"),
            RuntimeConfig(app_id="batch-app", l1_cache_entries=4 * calls),
        )

        def run_batched() -> list:
            out = []
            for chunk in _chunks(corpus, batch):
                out.extend(app_b.runtime.execute_many(
                    case_b.description, chunk,
                    input_parser=case_b.input_parser,
                    result_parser=case_b.result_parser,
                    native_factor=case_b.native_factor,
                ))
                app_b.runtime.flush_puts()
            return out

        row, results = measure(app_b, d_b, run_batched)
        rows.append(dataclass_replace(
            row, phase="execute-batch", batch_size=batch,
            identical=results == reference,
        ))
    return rows


def run_batch(
    batch_sizes: list[int] | None = None,
    ops: int = 128,
    size_bytes: int = 1 * KB,
    calls: int = 24,
    text_bytes: int = 8 * KB,
    seed: int = 53,
) -> list[BatchRow]:
    """The full batching experiment: store-level GET/PUT sweep plus the
    ``execute_many`` end-to-end rerun."""
    rows = run_batch_store(batch_sizes=batch_sizes, ops=ops,
                           size_bytes=size_bytes, seed=seed)
    exec_sizes = None
    if batch_sizes is not None:
        exec_sizes = [b for b in batch_sizes if 1 < b <= calls]
    rows += run_batch_execute(batch_sizes=exec_sizes, calls=calls,
                              text_bytes=text_bytes, seed=seed + 6)
    return rows


def print_batch(rows: list[BatchRow]) -> str:
    headers = ["phase", "batch", "ops", "size", "trans/call", "rec/call",
               "sim ops/s", "wall ops/s", "identical"]
    table = [
        [
            r.phase, r.batch_size, r.ops, human_size(r.size_bytes),
            r.transitions_per_call, r.records_per_call,
            r.sim_ops_per_s, r.wall_ops_per_s,
            "yes" if r.identical else "NO",
        ]
        for r in rows
    ]
    return format_table("Batch: amortized transitions and records", headers, table)


# ---------------------------------------------------------------------------
# Ablation A7 — switchless (hot) calls vs classic transitions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SwitchlessRow:
    mode: str
    size_bytes: int
    get_total_sim_s: float
    ops: int


def run_ablation_switchless(
    sizes: list[int] | None = None, ops: int = 50, seed: int = 47
) -> list[SwitchlessRow]:
    """A7: the SS V-B mitigation — replace ECALL/OCALL transitions with
    HotCalls-style shared-buffer calls and re-measure the store's GET
    path (the Fig. 6 regime where transition cost dominates)."""
    from ..sgx.cost_model import CostParams

    sizes = sizes or [1 * KB, 10 * KB]
    rows = []
    for mode, switchless in (("classic ECALL/OCALL", False), ("switchless (HotCalls)", True)):
        for size in sizes:
            d = Deployment(
                seed=b"a7" + mode.encode() + size.to_bytes(4, "big"),
                cost_params=CostParams(switchless=switchless),
            )
            enclave = d.platform.create_enclave("a7-client", b"a7-client-code")
            client = d.store.connect("a7-client-addr", app_enclave=enclave)
            drbg = HmacDrbg(seed.to_bytes(4, "big"), b"a7")
            tags = []
            for i in range(ops):
                tag = sha256(b"a7" + bytes([switchless]) + size.to_bytes(4, "big") + i.to_bytes(4, "big"))
                tags.append(tag)
                client.call(PutRequest(tag=tag, challenge=drbg.generate(32),
                                       wrapped_key=drbg.generate(16),
                                       sealed_result=drbg.generate(min(size, 4096)) * max(1, size // 4096),
                                       app_id="a7"))
            sim0 = d.clock.snapshot()
            for tag in tags:
                assert client.call(GetRequest(tag=tag, app_id="a7")).found
            rows.append(SwitchlessRow(
                mode=mode, size_bytes=size,
                get_total_sim_s=d.clock.since(sim0) / d.clock.params.cpu_freq_hz,
                ops=ops,
            ))
    return rows


def print_ablation_switchless(rows: list[SwitchlessRow]) -> str:
    return format_table(
        "Ablation A7: switchless calls (HotCalls/Eleos mitigation)",
        ["mode", "size", "GET total sim(s)", "ops"],
        [[r.mode, human_size(r.size_bytes), r.get_total_sim_s, r.ops] for r in rows],
    )


# ---------------------------------------------------------------------------
# Cluster — sharded ResultStore scaling and failover
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterRow:
    phase: str            # put | get | failover-get | repair-get
    n_shards: int
    replication_factor: int
    ops: int
    size_bytes: int
    bottleneck_sim_s: float   # busiest shard machine's clock advance
    client_sim_s: float       # app machine's clock advance (sanity series)
    wall_total_s: float
    failovers: int            # router failovers during this phase
    read_repairs: int         # read-repair PUTs queued during this phase
    results_lost: int         # GETs that found nothing (should be 0)
    baseline_sim_s: float = 0.0  # same-phase 1-shard bottleneck time
    # Per-phase latency totals ({span name: {count, sim_s, wall_s}})
    # attributed to this row's request loop by the cluster's tracer.
    phase_breakdown: dict = field(default_factory=dict)

    @property
    def sim_ops_per_s(self) -> float:
        if self.bottleneck_sim_s <= 0:
            return float("inf")
        return self.ops / self.bottleneck_sim_s

    @property
    def speedup(self) -> float:
        """Throughput relative to the single-shard run of this phase."""
        if self.baseline_sim_s <= 0 or self.bottleneck_sim_s <= 0:
            return 0.0
        return self.baseline_sim_s / self.bottleneck_sim_s


def _cluster_payloads(ops: int, size_bytes: int, seed: int, label: bytes) -> list:
    drbg = HmacDrbg(seed.to_bytes(4, "big"), b"cluster" + label)
    base = drbg.generate(4096)
    puts = []
    for i in range(ops):
        tag = sha256(b"cluster-tag" + label + i.to_bytes(4, "big"))
        body = (base * (size_bytes // len(base) + 1))[:size_bytes - 8] + i.to_bytes(8, "big")
        puts.append(PutRequest(
            tag=tag,
            challenge=drbg.generate(CHALLENGE_SIZE),
            wrapped_key=drbg.generate(KEY_SIZE),
            sealed_result=body,
            app_id="cluster-bench",
        ))
    return puts


def _cluster_phase(d, router, phase, requests, size_bytes, expect_found=False):
    """Run one request phase and report the *store-side* bottleneck: the
    largest clock advance across the shard machines.  Shards are
    independent machines serving disjoint tag ranges, so the cluster
    drains an open-loop Fig. 6 workload at the pace of its busiest
    shard; the app machine's own advance is reported alongside (it is
    workload-bound and flat across shard counts)."""
    freq = d.clock.params.cpu_freq_hz
    shard_clocks = {
        sid: node.platform.clock for sid, node in d.cluster.shards.items()
    }
    shard0 = {sid: clock.snapshot() for sid, clock in shard_clocks.items()}
    app0 = d.clock.snapshot()
    fail0 = router.stats.failovers
    repair0 = router.stats.read_repairs
    tracer = d.cluster.tracer
    phases0 = tracer.phase_breakdown() if tracer.enabled else {}
    lost = 0
    wall0 = time.perf_counter()
    for request in requests:
        response = router.call(request)
        if expect_found and not response.found:
            lost += 1
    wall = time.perf_counter() - wall0
    bottleneck = max(
        clock.since(shard0[sid]) for sid, clock in shard_clocks.items()
    )
    return ClusterRow(
        phase=phase,
        n_shards=len(shard_clocks),
        replication_factor=d.cluster.config.replication_factor,
        ops=len(requests),
        size_bytes=size_bytes,
        bottleneck_sim_s=bottleneck / freq,
        client_sim_s=d.clock.since(app0) / freq,
        wall_total_s=wall,
        failovers=router.stats.failovers - fail0,
        read_repairs=router.stats.read_repairs - repair0,
        results_lost=lost,
        phase_breakdown=(
            diff_breakdown(phases0, tracer.phase_breakdown())
            if tracer.enabled else {}
        ),
    )


def run_cluster(
    shard_counts: list[int] | None = None,
    replication_factors: list[int] | None = None,
    ops: int = 96,
    size_bytes: int = 1 * KB,
    seed: int = 61,
) -> list[ClusterRow]:
    """Cluster scaling sweep plus a failover run, Fig. 6 regime.

    The sweep drives ``ops`` PUTs then ``ops`` GETs of all-different
    items through a :class:`~repro.deployment.ClusterDeployment` at each
    (shard count, replication factor); the single-shard RF-1 run *is*
    the single-store baseline (same code path, one shard owning the
    whole ring).  The failover run then kills one of four shards mid
    write stream and shows reads surviving on replicas with zero loss,
    and read-repair refilling the shard after it revives.
    """
    shard_counts = shard_counts or [1, 2, 4, 8]
    replication_factors = replication_factors or [1, 2]
    rows: list[ClusterRow] = []
    baselines: dict[str, float] = {}
    configs = [
        (n, rf)
        for rf in sorted(replication_factors)
        for n in sorted(shard_counts)
        if rf <= n
    ]
    if (1, 1) in configs:  # baseline first so later rows can reference it
        configs.remove((1, 1))
    configs.insert(0, (1, 1))

    for n, rf in configs:
        label = bytes([n, rf])
        d = ClusterDeployment(
            seed=b"bench-cluster" + label,
            n_shards=n,
            replication_factor=rf,
            tracer=Tracer(),
        )
        enclave = d.platform.create_enclave("cluster-bench", b"cluster-bench-code")
        router = d.cluster.connect("cluster-bench", enclave)
        puts = _cluster_payloads(ops, size_bytes, seed, label)
        gets = [GetRequest(tag=p.tag, app_id="cluster-bench") for p in puts]
        for phase, requests, expect in (("put", puts, False), ("get", gets, True)):
            row = _cluster_phase(d, router, phase, requests, size_bytes,
                                 expect_found=expect)
            if n == 1 and rf == 1:
                baselines[phase] = row.bottleneck_sim_s
            rows.append(dataclass_replace(
                row, baseline_sim_s=baselines.get(phase, 0.0)
            ))

    # Failover: 4 shards, RF 2; shard-0 dies after half the writes.
    d = ClusterDeployment(
        seed=b"bench-cluster-failover", n_shards=4, replication_factor=2,
        tracer=Tracer(),
    )
    enclave = d.platform.create_enclave("cluster-bench", b"cluster-bench-code")
    router = d.cluster.connect("cluster-bench", enclave)
    puts = _cluster_payloads(ops, size_bytes, seed, b"failover")
    gets = [GetRequest(tag=p.tag, app_id="cluster-bench") for p in puts]
    for put in puts[: ops // 2]:
        router.call(put)
    d.cluster.kill_shard("shard-0")
    for put in puts[ops // 2:]:
        router.call(put)
    rows.append(_cluster_phase(d, router, "failover-get", gets, size_bytes,
                               expect_found=True))
    d.cluster.revive_shard("shard-0")
    rows.append(_cluster_phase(d, router, "repair-get", gets, size_bytes,
                               expect_found=True))
    router.drain_responses()  # absorb the read-repair acks
    return rows


def print_cluster(rows: list[ClusterRow]) -> str:
    headers = ["phase", "shards", "RF", "ops", "bottleneck sim(s)",
               "sim ops/s", "speedup", "failovers", "repairs", "lost"]
    table = [
        [
            r.phase, r.n_shards, r.replication_factor, r.ops,
            r.bottleneck_sim_s, r.sim_ops_per_s,
            f"{r.speedup:.2f}x" if r.speedup else "-",
            r.failovers, r.read_repairs, r.results_lost,
        ]
        for r in rows
    ]
    return format_table(
        "Cluster: sharded ResultStore throughput and failover",
        headers, table,
    )


# ---------------------------------------------------------------------------
# Pipeline — concurrent pipelined execution engine (engine.py)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PipelineRow:
    phase: str            # get-heavy | coalesce
    n_shards: int
    depth: int            # engine depth (0 = serial client, no engine)
    workers: int
    ops: int
    elapsed_sim_s: float  # app + store machine time, engine overlap removed
    serial_sim_s: float   # same workload through the serial client
    wall_total_s: float
    identical: bool       # results byte-identical to the serial run
    hits: int
    misses: int
    degraded: int
    coalesced: int        # calls served by single-flight coalescing
    store_gets: int       # GET lookups the shard stores actually served

    @property
    def sim_ops_per_s(self) -> float:
        if self.elapsed_sim_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_sim_s

    @property
    def speedup(self) -> float:
        """Throughput relative to the serial client on the same topology."""
        if self.serial_sim_s <= 0 or self.elapsed_sim_s <= 0:
            return 0.0
        return self.serial_sim_s / self.elapsed_sim_s


def _pipeline_inputs(ops: int, seed: int) -> list[bytes]:
    return [
        (seed * 100_000 + i).to_bytes(4, "big") * 64  # 256 B, all distinct
        for i in range(ops)
    ]


def _pipeline_run(session, description, inputs, engine=None):
    """Drive one batch through ``session`` and return
    ``(elapsed_sim_s, wall_s, values, counters)`` where ``elapsed_sim_s``
    charges the app machine plus every shard machine and then removes
    the engine's overlap credit (serial sessions have none)."""
    deployment = session.deployment
    freq = session.clock.params.cpu_freq_hz
    shard_clocks = {
        shard_id: node.platform.clock
        for shard_id, node in deployment.cluster.shards.items()
    }
    shard0 = {sid: clock.snapshot() for sid, clock in shard_clocks.items()}
    app0 = session.clock.snapshot()
    saved0 = engine.overlap_cycles_saved if engine is not None else 0.0
    stats = session.runtime.stats
    hits0, misses0 = stats.hits, stats.misses
    degraded0, coalesced0 = stats.degraded, stats.coalesced_hits
    gets0 = sum(
        node.store.stats.gets
        for node in deployment.cluster.shards.values()
    )
    wall0 = time.perf_counter()
    results = session.execute_many_results(description, inputs)
    wall = time.perf_counter() - wall0
    elapsed = session.clock.since(app0) + sum(
        clock.since(shard0[sid]) for sid, clock in shard_clocks.items()
    )
    if engine is not None:
        elapsed -= engine.overlap_cycles_saved - saved0
    counters = dict(
        hits=stats.hits - hits0,
        misses=stats.misses - misses0,
        degraded=stats.degraded - degraded0,
        coalesced=stats.coalesced_hits - coalesced0,
        store_gets=sum(
            node.store.stats.gets
            for node in deployment.cluster.shards.values()
        ) - gets0,
    )
    return elapsed / freq, wall, [r.value for r in results], counters


def run_pipeline(
    depths: list[int] | None = None,
    shard_counts: list[int] | None = None,
    ops: int = 48,
    workers: int = 4,
    duplicates: int = 16,
    seed: int = 71,
) -> list[PipelineRow]:
    """Pipelined execution engine sweep (GET-heavy) plus a coalescing run.

    For each shard count a writer warms the cluster, then sibling
    applications replay the same all-distinct batch: once through the
    serial client (the ``depth=0`` row and the baseline for ``speedup``)
    and once per engine depth with multi-slot pipelining on.  The
    engine's critical-path accounting is what ``elapsed_sim_s`` reports;
    results must stay byte-identical and the hit/miss/degraded totals
    must not move.  The final ``coalesce`` rows replay one warm tag
    ``duplicates`` times in a single batch: the serial client pays one
    store GET per call while the engine's single-flight mode takes
    exactly one round trip and serves the rest as coalesced hits.
    """
    from ..session import connect

    depths = depths or [1, 4, 8, 16]
    shard_counts = shard_counts or [1, 4]
    rows: list[PipelineRow] = []

    for n_shards in sorted(shard_counts):
        writer = connect(
            shards=n_shards, replication_factor=1,
            seed=b"bench-pipeline" + bytes([n_shards]), tracing=False,
        )

        @writer.mark(version="1.0")
        def pipeline_kernel(data: bytes) -> bytes:
            return bytes(b ^ 0x5A for b in data)

        inputs = _pipeline_inputs(ops, seed)
        pipeline_kernel.map(inputs)
        writer.flush_puts()

        serial = writer.sibling("serial-reader")
        elapsed, wall, base_values, counters = _pipeline_run(
            serial, pipeline_kernel.description, inputs
        )
        serial_s = elapsed
        rows.append(PipelineRow(
            phase="get-heavy", n_shards=n_shards, depth=0, workers=1,
            ops=ops, elapsed_sim_s=elapsed, serial_sim_s=serial_s,
            wall_total_s=wall, identical=True, **counters,
        ))
        for depth in sorted(depths):
            reader = writer.sibling(f"reader-depth{depth}")
            engine = reader.enable_pipeline(depth=depth, workers=workers)
            elapsed, wall, values, counters = _pipeline_run(
                reader, pipeline_kernel.description, inputs, engine
            )
            rows.append(PipelineRow(
                phase="get-heavy", n_shards=n_shards, depth=depth,
                workers=workers, ops=ops, elapsed_sim_s=elapsed,
                serial_sim_s=serial_s, wall_total_s=wall,
                identical=values == base_values, **counters,
            ))

    # Coalescing: one warm tag hit `duplicates` times in a single batch.
    writer = connect(
        shards=4, replication_factor=1,
        seed=b"bench-pipeline-coalesce", tracing=False,
    )

    @writer.mark(version="1.0")
    def pipeline_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x5A for b in data)

    burst = [_pipeline_inputs(1, seed + 1)[0]] * duplicates
    pipeline_kernel.map(burst[:1])
    writer.flush_puts()
    serial = writer.sibling("coalesce-serial")
    elapsed, wall, base_values, counters = _pipeline_run(
        serial, pipeline_kernel.description, burst
    )
    serial_s = elapsed
    rows.append(PipelineRow(
        phase="coalesce", n_shards=4, depth=0, workers=1,
        ops=duplicates, elapsed_sim_s=elapsed, serial_sim_s=serial_s,
        wall_total_s=wall, identical=True, **counters,
    ))
    reader = writer.sibling("coalesce-reader")
    engine = reader.enable_pipeline(depth=8, workers=workers)
    elapsed, wall, values, counters = _pipeline_run(
        reader, pipeline_kernel.description, burst, engine
    )
    rows.append(PipelineRow(
        phase="coalesce", n_shards=4, depth=8, workers=workers,
        ops=duplicates, elapsed_sim_s=elapsed, serial_sim_s=serial_s,
        wall_total_s=wall, identical=values == base_values, **counters,
    ))
    return rows


def print_pipeline(rows: list[PipelineRow]) -> str:
    headers = ["phase", "shards", "depth", "workers", "ops",
               "elapsed sim(s)", "sim ops/s", "speedup", "identical",
               "hits", "misses", "degraded", "coalesced", "store gets"]
    table = [
        [
            r.phase, r.n_shards, r.depth or "-", r.workers, r.ops,
            r.elapsed_sim_s, r.sim_ops_per_s,
            f"{r.speedup:.2f}x" if r.depth else "-",
            "yes" if r.identical else "NO",
            r.hits, r.misses, r.degraded, r.coalesced, r.store_gets,
        ]
        for r in rows
    ]
    return format_table(
        "Pipeline: multi-slot engine speedup and single-flight coalescing",
        headers, table,
    )


# ---------------------------------------------------------------------------
# Durable — WAL logging overhead and power-fail recovery (repro.durable)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DurableRow:
    phase: str             # overhead | recovery
    group_commit: int      # WAL group-commit size (0 = durability off)
    ops: int               # distinct PUT-path calls driven through the store
    store_sim_s: float     # shard-machine (PUT-path) virtual-clock seconds
    baseline_sim_s: float  # same workload with durability off
    wal_records: int
    wal_segments: int
    log_bytes: int
    recovery_sim_s: float  # shard seconds for power_fail + WAL recovery
    records_replayed: int
    entries_restored: int

    @property
    def overhead_pct(self) -> float:
        """Logging overhead relative to the non-durable PUT path."""
        if self.baseline_sim_s <= 0:
            return 0.0
        return 100.0 * (self.store_sim_s - self.baseline_sim_s) / self.baseline_sim_s

    @property
    def recovery_us_per_record(self) -> float:
        if not self.records_replayed:
            return 0.0
        return 1e6 * self.recovery_sim_s / self.records_replayed


def _durable_session(group_commit: int, seed_tag: bytes, durable: bool = True):
    """One single-shard cluster session (the store on its own machine, so
    the shard clock isolates the PUT-path cost) with an effectively
    infinite checkpoint interval: the sweep measures pure logging and
    pure replay, not checkpoint scheduling."""
    from ..session import connect

    config = StoreConfig(
        durable=True, wal_group_commit=group_commit,
        checkpoint_interval=1 << 30,
    ) if durable else StoreConfig()
    return connect(
        shards=1, replication_factor=1, seed=seed_tag,
        tracing=False, store_config=config,
    )


def _durable_fill(session, ops: int, payload_bytes: int):
    """Drive ``ops`` distinct-input calls through the PUT path and return
    the shard machine's virtual-clock seconds they cost."""

    @session.mark(version="1.0")
    def durable_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0xA5 for b in data)

    inputs = [
        i.to_bytes(4, "big") * (payload_bytes // 4) for i in range(ops)
    ]
    node = next(iter(session.cluster.shards.values()))
    clock = node.platform.clock
    s0 = clock.snapshot()
    durable_kernel.map(inputs)
    session.flush_puts()
    return clock.since(s0) / clock.params.cpu_freq_hz, node


def run_durable(
    group_commits: list[int] | None = None,
    log_lengths: list[int] | None = None,
    ops: int = 48,
    payload_bytes: int = KB,
    seed: int = 83,
) -> list[DurableRow]:
    """Durability sweep (``repro.durable``), two phases.

    **overhead** — the same all-distinct PUT workload runs once with
    durability off (the ``group_commit=0`` baseline row) and once per
    WAL group-commit size; ``overhead_pct`` is the shard machine's extra
    virtual-clock cost for sealing the log.  Small groups pay the seal's
    fixed AEAD cost per record; larger groups amortize it.

    **recovery** — per log length L, a durable store is filled with L
    entries, power-failed (volatile state wiped), and recovered from
    its WAL alone; ``recovery_sim_s`` against ``records_replayed``
    shows replay scaling ~linearly in the log length.
    """
    group_commits = group_commits or [1, 4, 8, 16, 32]
    log_lengths = log_lengths or [16, 64, 256]
    rows: list[DurableRow] = []

    base_tag = b"bench-durable" + bytes([seed % 251])
    baseline_s, _node = _durable_fill(
        _durable_session(8, base_tag + b"/base", durable=False),
        ops, payload_bytes,
    )
    rows.append(DurableRow(
        phase="overhead", group_commit=0, ops=ops,
        store_sim_s=baseline_s, baseline_sim_s=baseline_s,
        wal_records=0, wal_segments=0, log_bytes=0,
        recovery_sim_s=0.0, records_replayed=0, entries_restored=0,
    ))
    for group in sorted(group_commits):
        session = _durable_session(group, base_tag + bytes([group % 251]))
        elapsed, node = _durable_fill(session, ops, payload_bytes)
        log = node.store.durable
        rows.append(DurableRow(
            phase="overhead", group_commit=group, ops=ops,
            store_sim_s=elapsed, baseline_sim_s=baseline_s,
            wal_records=log.records_logged, wal_segments=len(log.segments),
            log_bytes=log.log_bytes,
            recovery_sim_s=0.0, records_replayed=0, entries_restored=0,
        ))

    for length in sorted(log_lengths):
        session = _durable_session(8, base_tag + b"/rec" + length.to_bytes(4, "big"))
        _elapsed, node = _durable_fill(session, length, 256)
        log = node.store.durable
        records, segments, log_bytes = (
            log.records_logged, len(log.segments), log.log_bytes,
        )
        shard_id = next(iter(session.cluster.shards))
        clock = node.platform.clock
        r0 = clock.snapshot()
        report = session.power_fail_shard(shard_id)
        recovery_s = clock.since(r0) / clock.params.cpu_freq_hz
        rows.append(DurableRow(
            phase="recovery", group_commit=8, ops=length,
            store_sim_s=0.0, baseline_sim_s=0.0,
            wal_records=records, wal_segments=segments, log_bytes=log_bytes,
            recovery_sim_s=recovery_s,
            records_replayed=report.records_replayed,
            # With checkpointing disabled for the sweep every restored
            # entry arrives via replay, not the checkpoint image.
            entries_restored=report.entries_restored + report.puts_replayed,
        ))
    return rows


def print_durable(rows: list[DurableRow]) -> str:
    headers = ["phase", "group", "ops", "store sim(s)", "overhead",
               "records", "segments", "log bytes", "recovery sim(s)",
               "replayed", "restored", "us/record"]
    table = [
        [
            r.phase, r.group_commit or "-", r.ops,
            r.store_sim_s, f"{r.overhead_pct:+.1f}%" if r.group_commit else "-",
            r.wal_records, r.wal_segments, r.log_bytes,
            r.recovery_sim_s if r.phase == "recovery" else "-",
            r.records_replayed, r.entries_restored,
            f"{r.recovery_us_per_record:.1f}" if r.phase == "recovery" else "-",
        ]
        for r in rows
    ]
    return format_table(
        "Durable: WAL logging overhead and power-fail recovery", headers, table,
    )


# ---------------------------------------------------------------------------
# Migrate — foreground throughput while the ring reshards (repro.cluster)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MigrateRow:
    phase: str             # baseline | stop-the-world | streaming
    n_shards: int          # shard count before the join
    ops: int               # foreground GET-path calls served
    rounds: int            # foreground batches driven
    elapsed_sim_s: float   # total sim seconds (app + shards - overlap)
    baseline_sim_s: float  # the no-migration phase's elapsed_sim_s
    p50_round_s: float     # median per-round foreground sim latency
    p99_round_s: float     # worst-case-ish per-round foreground latency
    entries_moved: int
    bytes_moved: int
    batches: int           # migration batches shipped
    foreground_stalls: int # migration batches that blocked the foreground
    identical: bool        # results byte-identical to the baseline phase

    @property
    def fg_ops_per_s(self) -> float:
        return self.ops / self.elapsed_sim_s if self.elapsed_sim_s > 0 else 0.0

    @property
    def fg_throughput_ratio(self) -> float:
        """Foreground throughput relative to the no-migration baseline
        (1.0 = no slowdown; the acceptance bound is >= 0.70 for the
        streaming phase)."""
        if self.elapsed_sim_s <= 0:
            return 0.0
        return self.baseline_sim_s / self.elapsed_sim_s


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return ordered[index]


def _migrate_session(n_shards: int, seed_tag: bytes):
    from ..session import connect

    # Non-durable shards: this sweep measures foreground throughput, not
    # crash-safety (simtest --migrate covers that), so the hand-off marks
    # stay in-memory and the WAL's fsync costs don't mask the comparison.
    return connect(
        shards=n_shards, replication_factor=2, seed=seed_tag,
        tracing=False, vnodes=4,
    )


def _migrate_phase(
    n_shards: int,
    seed_tag: bytes,
    inputs: list[bytes],
    rounds: int,
    batch: int,
    migration: str,  # "none" | "blocking" | "streaming"
    batch_entries: int,
):
    """Warm a cluster, then drive ``rounds`` foreground GET batches while
    the requested migration mode runs.  Returns (per-round sim latencies,
    total sim seconds, foreground values, migration counters).

    Latency is the engine's critical-path makespan: migration batches
    that stream as its background lane overlap the foreground (bounded
    by the busiest machine — background work on a shard still serializes
    with that shard's foreground requests), while the legacy blocking
    copy and any un-overlapped remainder land on the critical path in
    full."""
    session = _migrate_session(n_shards, seed_tag)

    @session.mark(version="1.0")
    def migrate_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x3C for b in data)

    migrate_kernel.map(inputs)
    session.flush_puts()

    reader = session.sibling("migrate-reader")
    engine = reader.enable_pipeline(depth=8, workers=4)
    cluster = session.cluster
    deployment = session.deployment
    freq = reader.clock.params.cpu_freq_hz

    def clocks():
        return {
            sid: node.platform.clock
            for sid, node in deployment.cluster.shards.items()
        }

    migrator = None
    if migration == "streaming":
        from ..cluster.migration import MigrationConfig

        migrator = cluster.begin_add_shard(
            config=MigrationConfig(batch_entries=batch_entries),
            engine=engine,
        )

    description = migrate_kernel.description
    round_latencies: list[float] = []
    values: list[bytes] = []
    makespan0 = engine.makespan_cycles
    moved = bytes_moved = batches = stalls = 0
    blocking_cycles = 0.0

    for round_index in range(rounds):
        offset = (round_index * batch) % len(inputs)
        window = (inputs + inputs)[offset:offset + batch]
        round_cycles = -engine.makespan_cycles
        if migration == "blocking" and round_index == rounds // 2:
            # The legacy stop-the-world path: the ring changes first,
            # then every affected range is copied in one blocking sweep
            # while this round's foreground requests wait — the whole
            # copy lands on the critical path inside one round.
            from ..cluster.migration import migrate_for_join

            shard0 = {sid: c.snapshot() for sid, c in clocks().items()}
            node = cluster._spawn_shard()
            for app_name, enclave, router in cluster._routers:
                client = node.store.connect(
                    f"{app_name}->{node.shard_id}",
                    app_enclave=enclave,
                    attestation_service=cluster.attestation,
                )
                router.attach_shard(node.shard_id, client)
            report = migrate_for_join(cluster, node.shard_id)
            copy_cycles = sum(
                c.since(shard0.get(sid, 0.0)) for sid, c in clocks().items()
            )
            round_cycles += copy_cycles
            blocking_cycles += copy_cycles
            moved += report.moved
            bytes_moved += report.bytes_moved
            batches += report.transfers
            stalls += report.transfers
        results = reader.execute_many_results(description, window)
        values.extend(r.value for r in results)
        round_cycles += engine.makespan_cycles
        round_latencies.append(round_cycles / freq)
        if migrator is not None and migrator.pending_ranges():
            # Interleave: a slice of the hand-off advances between
            # foreground rounds, overlapped as the engine's background
            # lane and paced so the hand-off drains across the remaining
            # rounds instead of piling up at the end.
            rounds_left = max(1, rounds - 1 - round_index)
            pending = len(migrator.pending_ranges())
            budget = max(1, -(-pending // rounds_left))
            for _ in range(budget):
                if not migrator.pending_ranges():
                    break
                migrator.step()

    if migrator is not None:
        while migrator.pending_ranges():
            migrator.step()
        migrator.finish()
        moved += migrator.moved
        bytes_moved += migrator.bytes_moved
        batches += migrator.batches
        stalls += migrator.stalled_batches
    # Background work no foreground round overlapped folds in serially.
    engine.settle()

    # The engine's makespan delta covers every foreground round plus the
    # folded/settled background lanes; the blocking copy ran outside the
    # engine's rounds and its full cost is on the critical path.
    total_cycles = (engine.makespan_cycles - makespan0) + blocking_cycles
    counters = dict(
        entries_moved=moved, bytes_moved=bytes_moved,
        batches=batches, foreground_stalls=stalls,
    )
    return round_latencies, total_cycles / freq, values, counters


def run_migrate(
    n_shards: int = 3,
    ops: int = 48,
    rounds: int = 16,
    batch_entries: int = 8,
    seed: int = 97,
) -> list[MigrateRow]:
    """Online resharding sweep: foreground throughput during a join.

    Three phases over the same warm GET-heavy workload (``rounds``
    pipelined batches over ``ops`` distinct entries):

    * **baseline** — no topology change; sets the reference throughput.
    * **stop-the-world** — the legacy blocking join lands mid-run: the
      ring changes, then every affected range is copied in one sweep
      while the foreground waits.
    * **streaming** — ``Session.add_shard``'s path: the dual-ownership
      window opens and ranges stream across in ``batch_entries``-sized
      batches between foreground rounds, overlapped as the pipeline
      engine's background lane.

    The acceptance bound (checked by CI from ``BENCH_migrate.json``) is
    ``fg_throughput_ratio >= 0.70`` for the streaming phase: foreground
    throughput during the join stays at >= 70% of the no-migration
    baseline, while the stop-the-world phase shows the stall the
    streaming path removes.
    """
    base_tag = b"bench-migrate" + bytes([seed % 251])
    inputs = _pipeline_inputs(ops, seed)
    batch = max(1, ops // 2)

    rows: list[MigrateRow] = []
    base_lat, base_total, base_values, _counters = _migrate_phase(
        n_shards, base_tag + b"/base", inputs, rounds, batch, "none",
        batch_entries,
    )
    fg_ops = rounds * batch
    rows.append(MigrateRow(
        phase="baseline", n_shards=n_shards, ops=fg_ops, rounds=rounds,
        elapsed_sim_s=base_total, baseline_sim_s=base_total,
        p50_round_s=_percentile(base_lat, 0.50),
        p99_round_s=_percentile(base_lat, 0.99),
        entries_moved=0, bytes_moved=0, batches=0, foreground_stalls=0,
        identical=True,
    ))
    for phase, mode in (("stop-the-world", "blocking"), ("streaming", "streaming")):
        lat, total, values, counters = _migrate_phase(
            n_shards, base_tag + b"/" + mode.encode(), inputs, rounds, batch,
            mode, batch_entries,
        )
        rows.append(MigrateRow(
            phase=phase, n_shards=n_shards, ops=fg_ops, rounds=rounds,
            elapsed_sim_s=total, baseline_sim_s=base_total,
            p50_round_s=_percentile(lat, 0.50),
            p99_round_s=_percentile(lat, 0.99),
            identical=values == base_values,
            **counters,
        ))
    return rows


def print_migrate(rows: list[MigrateRow]) -> str:
    headers = ["phase", "shards", "fg ops", "elapsed sim(s)", "fg ops/s",
               "vs baseline", "p50 round(s)", "p99 round(s)", "moved",
               "bytes", "batches", "stalls", "identical"]
    table = [
        [
            r.phase, r.n_shards, r.ops, r.elapsed_sim_s,
            f"{r.fg_ops_per_s:.1f}", f"{r.fg_throughput_ratio:.2f}x",
            r.p50_round_s, r.p99_round_s, r.entries_moved,
            human_size(r.bytes_moved), r.batches, r.foreground_stalls,
            "yes" if r.identical else "NO",
        ]
        for r in rows
    ]
    return format_table(
        "Migrate: foreground throughput during an online join", headers, table,
    )


# ---------------------------------------------------------------------------
# Reshard — one planned multi-shard window vs N serialized windows
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReshardRow:
    phase: str             # baseline | serialized | planned | weighted-ring
    n_shards: int          # shard count before the reshape
    joins: int             # shards the reshape adds
    ops: int               # foreground GET-path calls served
    rounds: int            # foreground batches driven
    elapsed_sim_s: float   # total sim seconds (critical-path makespan)
    baseline_sim_s: float  # the no-reshape phase's elapsed_sim_s
    p50_round_s: float
    p99_round_s: float
    windows: int           # dual-ownership windows opened
    dual_rounds: int       # foreground rounds run inside an open window
    entries_moved: int
    bytes_moved: int
    batches: int           # migration batches shipped
    foreground_stalls: int # migration batches that blocked the foreground
    identical: bool        # results byte-identical to the baseline phase
    max_weight_err: float  # weighted-ring placement check (0.0 elsewhere)

    @property
    def fg_ops_per_s(self) -> float:
        return self.ops / self.elapsed_sim_s if self.elapsed_sim_s > 0 else 0.0

    @property
    def fg_throughput_ratio(self) -> float:
        """Foreground throughput relative to the no-reshape baseline.
        The acceptance bound (CI, ``BENCH_reshard.json``) is planned >=
        serialized: one batched window must not be slower than the N
        serialized windows it replaces."""
        if self.elapsed_sim_s <= 0:
            return 0.0
        return self.baseline_sim_s / self.elapsed_sim_s


def _reshard_phase(
    n_shards: int,
    seed_tag: bytes,
    inputs: list[bytes],
    rounds: int,
    batch: int,
    mode: str,  # "none" | "serialized" | "planned"
    joins: int,
    batch_entries: int,
):
    """Warm a cluster, then drive ``rounds`` foreground GET batches while
    the cluster grows by ``joins`` shards — either through ``joins``
    serialized single-shard windows (each opened only after the previous
    settles, the pre-plan reality of ``ShardRing._require_idle``) or
    through **one** planned window batching every join
    (:meth:`StoreCluster.begin_plan`).  Returns (per-round latencies,
    total sim seconds, foreground values, counters).

    Both modes drain greedily through
    :meth:`RangeMigrator.overlap_steps` — the engine's background
    budget is the pacing.  A serialized single-join window only ever
    has one gaining shard, so it is bound to one background lane per
    foreground gap; the planned window's budget widens to one lane per
    gaining shard, so its transfers overlap each other as well as the
    foreground and the single dual-ownership window closes sooner."""
    from ..cluster.migration import MigrationConfig
    from ..cluster.ring import TopologyPlan

    session = _migrate_session(n_shards, seed_tag)

    @session.mark(version="1.0")
    def reshard_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x5A for b in data)

    reshard_kernel.map(inputs)
    session.flush_puts()

    reader = session.sibling("reshard-reader")
    engine = reader.enable_pipeline(depth=8, workers=4)
    cluster = session.cluster
    config = MigrationConfig(batch_entries=batch_entries)
    freq = reader.clock.params.cpu_freq_hz

    migrator = None
    opened = 0
    windows = 0
    if mode == "planned":
        plan = TopologyPlan()
        for _ in range(joins):
            plan = plan.join()
        migrator = cluster.begin_plan(plan, config=config, engine=engine)
        opened = joins
        windows = 1

    description = reshard_kernel.description
    round_latencies: list[float] = []
    values: list[bytes] = []
    makespan0 = engine.makespan_cycles
    moved = bytes_moved = batches = stalls = dual_rounds = 0

    for round_index in range(rounds):
        if mode == "serialized" and migrator is None and opened < joins:
            migrator = cluster.begin_add_shard(config=config, engine=engine)
            opened += 1
            windows += 1
        if cluster.ring.in_transition:
            dual_rounds += 1
        offset = (round_index * batch) % len(inputs)
        window = (inputs + inputs)[offset:offset + batch]
        round_cycles = -engine.makespan_cycles
        results = reader.execute_many_results(description, window)
        values.extend(r.value for r in results)
        round_cycles += engine.makespan_cycles
        round_latencies.append(round_cycles / freq)
        if migrator is not None:
            # Greedy drain: demand says "everything now" and the
            # engine's background budget is the cap — one lane for a
            # serialized join, one lane per gaining shard for a plan.
            migrator.overlap_steps(1)
            if not migrator.pending_ranges():
                migrator.finish()
                moved += migrator.moved
                bytes_moved += migrator.bytes_moved
                batches += migrator.batches
                stalls += migrator.stalled_batches
                migrator = None

    # Whatever did not drain inside the rounds finishes serially, and
    # serialized windows that never got a round still have to run — the
    # cost of paying N windows where one would do.
    while True:
        if migrator is not None:
            while migrator.pending_ranges():
                if not migrator.step():
                    break
            migrator.finish()
            moved += migrator.moved
            bytes_moved += migrator.bytes_moved
            batches += migrator.batches
            stalls += migrator.stalled_batches
            migrator = None
        if mode == "serialized" and opened < joins:
            migrator = cluster.begin_add_shard(config=config, engine=engine)
            opened += 1
            windows += 1
            continue
        break
    engine.settle()

    total_cycles = engine.makespan_cycles - makespan0
    counters = dict(
        windows=windows, dual_rounds=dual_rounds, entries_moved=moved,
        bytes_moved=bytes_moved, batches=batches, foreground_stalls=stalls,
    )
    return round_latencies, total_cycles / freq, values, counters


#: Deterministic weighted membership for the placement-accuracy row:
#: sha256 vnode placement is fixed, so these shards' ownership shares at
#: ``vnodes=64`` are known to sit within the 10% CI bound of their
#: weight fractions.
_RESHARD_WEIGHTS = (
    ("cap-0", 1.0), ("cap-1", 2.0), ("cap-2", 2.0), ("cap-3", 1.0),
)


def _weighted_placement_error(vnodes: int = 64) -> float:
    """Worst relative deviation of ``load_share`` from the weight
    fraction over the :data:`_RESHARD_WEIGHTS` membership."""
    from ..cluster.ring import ShardRing

    ring = ShardRing(vnodes=vnodes)
    for sid, weight in _RESHARD_WEIGHTS:
        ring.add_shard(sid, weight=weight)
    total = sum(weight for _, weight in _RESHARD_WEIGHTS)
    worst = 0.0
    for sid, weight in _RESHARD_WEIGHTS:
        fraction = weight / total
        worst = max(worst, abs(ring.load_share(sid) - fraction) / fraction)
    return worst


def run_reshard(
    n_shards: int = 4,
    joins: int = 4,
    ops: int = 48,
    rounds: int = 16,
    batch_entries: int = 8,
    seed: int = 131,
) -> list[ReshardRow]:
    """Planned topology transitions: one batched window vs N serialized.

    Three phases over the same warm GET-heavy workload:

    * **baseline** — no topology change; sets the reference throughput.
    * **serialized** — the cluster grows ``n_shards`` → ``n_shards +
      joins`` through ``joins`` single-shard windows, each opened only
      after the previous settles (the pre-plan restriction of
      ``ShardRing._require_idle``): N dual-ownership windows, and
      entries whose ownership shifts under several intermediate rings
      move more than once.
    * **planned** — the same growth as **one**
      :class:`~repro.cluster.ring.TopologyPlan` window: a single range
      diff from the old ring to the final ring, every moved range handed
      off exactly once, and transfers to distinct gaining shards
      overlapping each other via the engine's widened background budget.

    A fourth **weighted-ring** row reports the placement-accuracy check:
    the worst relative deviation of ``load_share`` from the weight
    fraction over a deterministic weighted membership at ``vnodes=64``
    (CI bound: within 10%).

    CI asserts from ``BENCH_reshard.json``: planned
    ``fg_throughput_ratio`` >= serialized, planned ``dual_rounds`` <=
    serialized, zero ``foreground_stalls`` in both (the engine overlaps
    every batch), and ``max_weight_err`` <= 0.10.
    """
    base_tag = b"bench-reshard" + bytes([seed % 251])
    # 4 KiB payloads: hand-off cost is dominated by transfer bytes, so
    # the phases compare how much data they move, not per-range fixed
    # overheads.
    inputs = [
        (seed * 100_000 + i).to_bytes(4, "big") * 1024 for i in range(ops)
    ]
    batch = max(1, ops // 2)

    rows: list[ReshardRow] = []
    base_lat, base_total, base_values, _counters = _reshard_phase(
        n_shards, base_tag + b"/base", inputs, rounds, batch, "none",
        joins, batch_entries,
    )
    fg_ops = rounds * batch
    rows.append(ReshardRow(
        phase="baseline", n_shards=n_shards, joins=0, ops=fg_ops,
        rounds=rounds, elapsed_sim_s=base_total, baseline_sim_s=base_total,
        p50_round_s=_percentile(base_lat, 0.50),
        p99_round_s=_percentile(base_lat, 0.99),
        windows=0, dual_rounds=0, entries_moved=0, bytes_moved=0,
        batches=0, foreground_stalls=0, identical=True, max_weight_err=0.0,
    ))
    for phase in ("serialized", "planned"):
        lat, total, values, counters = _reshard_phase(
            n_shards, base_tag + b"/" + phase.encode(), inputs, rounds,
            batch, phase, joins, batch_entries,
        )
        rows.append(ReshardRow(
            phase=phase, n_shards=n_shards, joins=joins, ops=fg_ops,
            rounds=rounds, elapsed_sim_s=total, baseline_sim_s=base_total,
            p50_round_s=_percentile(lat, 0.50),
            p99_round_s=_percentile(lat, 0.99),
            identical=values == base_values, max_weight_err=0.0,
            **counters,
        ))
    rows.append(ReshardRow(
        phase="weighted-ring", n_shards=len(_RESHARD_WEIGHTS), joins=0,
        ops=0, rounds=0, elapsed_sim_s=0.0, baseline_sim_s=0.0,
        p50_round_s=0.0, p99_round_s=0.0, windows=0, dual_rounds=0,
        entries_moved=0, bytes_moved=0, batches=0, foreground_stalls=0,
        identical=True, max_weight_err=_weighted_placement_error(),
    ))
    return rows


def print_reshard(rows: list[ReshardRow]) -> str:
    headers = ["phase", "shards", "joins", "fg ops", "elapsed sim(s)",
               "vs baseline", "windows", "dual rounds", "moved", "bytes",
               "batches", "stalls", "identical", "weight err"]
    table = [
        [
            r.phase, r.n_shards, r.joins, r.ops, r.elapsed_sim_s,
            f"{r.fg_throughput_ratio:.2f}x", r.windows, r.dual_rounds,
            r.entries_moved, human_size(r.bytes_moved), r.batches,
            r.foreground_stalls, "yes" if r.identical else "NO",
            f"{r.max_weight_err:.3f}",
        ]
        for r in rows
    ]
    return format_table(
        "Reshard: one planned window vs N serialized windows", headers, table,
    )


# ---------------------------------------------------------------------------
# Adaptive — AIMD depth control vs the static sweep (engine.py)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveDepthRow:
    phase: str            # get-heavy | join
    n_shards: int
    depth: str            # "0" (serial) | static depth | "auto"
    ops: int              # measured foreground ops
    rounds: int           # measured foreground batches (join phase)
    elapsed_sim_s: float  # critical-path sim time of the measured ops
    baseline_sim_s: float # serial client (sweep) / no-join auto (join)
    depth_final: int      # controller depth after the measured run
    depth_changes: int
    depth_shrinks: int
    depth_caps: int       # rounds clamped by the migration cap
    entries_moved: int
    foreground_stalls: int
    identical: bool       # results byte-identical to the baseline run

    @property
    def sim_ops_per_s(self) -> float:
        if self.elapsed_sim_s <= 0:
            return float("inf")
        return self.ops / self.elapsed_sim_s

    @property
    def vs_baseline(self) -> float:
        """Throughput relative to this phase's baseline run."""
        if self.baseline_sim_s <= 0 or self.elapsed_sim_s <= 0:
            return 0.0
        return self.baseline_sim_s / self.elapsed_sim_s


def _adaptive_controller_stats(engine) -> dict:
    controller = getattr(engine, "controller", None)
    if controller is None:
        depth = engine.config.depth if engine is not None else 0
        return dict(depth_final=depth, depth_changes=0, depth_shrinks=0,
                    depth_caps=0)
    return dict(
        depth_final=controller.depth,
        depth_changes=controller.changes,
        depth_shrinks=controller.shrinks,
        depth_caps=controller.migration_capped,
    )


def run_adaptive(
    depths: list[int] | None = None,
    ops: int = 48,
    rounds: int = 12,
    workers: int = 4,
    batch_entries: int = 8,
    seed: int = 83,
) -> list[AdaptiveDepthRow]:
    """Adaptive depth control sweep: static depths vs ``depth="auto"``.

    **get-heavy** — on a warm 4-shard cluster, every reader first drives
    one priming batch (the adaptive controller converges during it; the
    static engines prime the same state for symmetry), then replays a
    distinct measured batch.  The acceptance bound (checked by CI from
    ``BENCH_adaptive.json``): the auto row lands within 10% of the best
    static depth and strictly beats the depth-1 anti-sweet-spot.

    **join** — the same auto engine drives ``rounds`` foreground GET
    batches while a streaming shard join runs concurrently: the
    controller caps its depth under the dual-ownership window and
    yields the capped-off slots to the migrator
    (:meth:`RangeMigrator.overlap_steps`).  Bound: foreground
    throughput stays >= 0.70x of the no-join auto baseline (the PR 8
    streaming-migration bound, now under adaptive depth).
    """
    from ..session import connect

    depths = depths or [1, 4, 8, 16]
    max_depth = max(16, max(depths))
    rows: list[AdaptiveDepthRow] = []

    # -- phase 1: static depths vs auto on a warm 4-shard cluster -----------
    writer = connect(
        shards=4, replication_factor=1,
        seed=b"bench-adaptive" + bytes([seed % 251]), tracing=False,
    )

    @writer.mark(version="1.0")
    def adaptive_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x6B for b in data)

    description = adaptive_kernel.description
    warm_inputs = _pipeline_inputs(ops, seed)
    measured = _pipeline_inputs(ops, seed + 1)
    adaptive_kernel.map(warm_inputs + measured)
    writer.flush_puts()

    def measure(depth_spec):
        reader = writer.sibling(f"adaptive-reader-{depth_spec}")
        engine = None
        if depth_spec != 0:
            engine = reader.enable_pipeline(
                depth=depth_spec, workers=workers,
                min_depth=1, max_depth=max_depth,
            )
        reader.execute_many_results(description, warm_inputs)  # prime
        elapsed, _wall, values, _counters = _pipeline_run(
            reader, description, measured, engine
        )
        return elapsed, values, engine

    serial_s, base_values, _ = measure(0)
    rows.append(AdaptiveDepthRow(
        phase="get-heavy", n_shards=4, depth="0", ops=ops, rounds=1,
        elapsed_sim_s=serial_s, baseline_sim_s=serial_s,
        depth_final=0, depth_changes=0, depth_shrinks=0, depth_caps=0,
        entries_moved=0, foreground_stalls=0, identical=True,
    ))
    for depth_spec in sorted(depths) + ["auto"]:
        elapsed, values, engine = measure(depth_spec)
        rows.append(AdaptiveDepthRow(
            phase="get-heavy", n_shards=4, depth=str(depth_spec), ops=ops,
            rounds=1, elapsed_sim_s=elapsed, baseline_sim_s=serial_s,
            entries_moved=0, foreground_stalls=0,
            identical=values == base_values,
            **_adaptive_controller_stats(engine),
        ))

    # -- phase 2: the same auto engine with a concurrent streaming join -----
    batch = max(1, ops // 2)

    def join_phase(join: bool):
        session = connect(
            shards=4, replication_factor=2, vnodes=2,
            seed=b"bench-adaptive-join" + bytes([seed % 251]),
            tracing=False,
        )

        @session.mark(version="1.0")
        def join_kernel(data: bytes) -> bytes:
            return bytes(b ^ 0x2D for b in data)

        join_inputs = _pipeline_inputs(ops, seed + 2)
        join_kernel.map(join_inputs)
        session.flush_puts()
        reader = session.sibling("adaptive-join-reader")
        engine = reader.enable_pipeline(
            depth="auto", workers=workers, min_depth=1, max_depth=max_depth,
        )
        reader.execute_many_results(join_kernel.description, join_inputs)
        migrator = None
        if join:
            from ..cluster.migration import MigrationConfig

            migrator = session.cluster.begin_add_shard(
                config=MigrationConfig(batch_entries=batch_entries),
                engine=engine,
            )
        values: list[bytes] = []
        moved = stalls = 0
        makespan0 = engine.makespan_cycles
        for round_index in range(rounds):
            offset = (round_index * batch) % len(join_inputs)
            window = (join_inputs + join_inputs)[offset:offset + batch]
            results = reader.execute_many_results(
                join_kernel.description, window
            )
            values.extend(r.value for r in results)
            if migrator is not None:
                if migrator.pending_ranges():
                    # The controller's yielded depth slots bound the
                    # migrator's between-rounds intrusion budget.
                    migrator.overlap_steps(max(1, rounds - 1 - round_index))
                if not migrator.pending_ranges():
                    # Close the dual-ownership window the moment the
                    # hand-off drains: the migration depth cap lifts and
                    # the controller's full depth returns mid-run.
                    migrator.finish()
                    moved, stalls = migrator.moved, migrator.stalled_batches
                    migrator = None
        if migrator is not None:
            while migrator.pending_ranges():
                migrator.step()
            migrator.finish()
            moved, stalls = migrator.moved, migrator.stalled_batches
        engine.settle()
        total = (engine.makespan_cycles - makespan0) / \
            reader.clock.params.cpu_freq_hz
        return total, values, moved, stalls, engine

    base_total, base_values, _, _, engine = join_phase(join=False)
    rows.append(AdaptiveDepthRow(
        phase="join", n_shards=4, depth="auto", ops=rounds * batch,
        rounds=rounds, elapsed_sim_s=base_total, baseline_sim_s=base_total,
        entries_moved=0, foreground_stalls=0, identical=True,
        **_adaptive_controller_stats(engine),
    ))
    total, values, moved, stalls, engine = join_phase(join=True)
    rows.append(AdaptiveDepthRow(
        phase="join", n_shards=5, depth="auto", ops=rounds * batch,
        rounds=rounds, elapsed_sim_s=total, baseline_sim_s=base_total,
        entries_moved=moved, foreground_stalls=stalls,
        identical=values == base_values,
        **_adaptive_controller_stats(engine),
    ))
    return rows


def print_adaptive(rows: list[AdaptiveDepthRow]) -> str:
    headers = ["phase", "shards", "depth", "ops", "elapsed sim(s)",
               "sim ops/s", "vs baseline", "final depth", "changes",
               "shrinks", "caps", "moved", "stalls", "identical"]
    table = [
        [
            r.phase, r.n_shards, r.depth, r.ops, r.elapsed_sim_s,
            f"{r.sim_ops_per_s:.1f}", f"{r.vs_baseline:.2f}x",
            r.depth_final or "-", r.depth_changes, r.depth_shrinks,
            r.depth_caps, r.entries_moved, r.foreground_stalls,
            "yes" if r.identical else "NO",
        ]
        for r in rows
    ]
    return format_table(
        "Adaptive: AIMD depth control vs static depths", headers, table,
    )
