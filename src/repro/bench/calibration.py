"""Calibration workflow for the native factors (DESIGN.md §2).

Each case study carries a *native factor*: how much faster the paper's
C/C++ library runs than our pure-Python substitute.  The factors shipped
in :mod:`repro.apps.registry` were derived with this utility: measure
the Python wall cost per byte on a reference workload, divide by the
published/na(t)ive per-byte cost of the original library, and round to a
defensible order of magnitude.

Run it after changing any case-study implementation::

    python -m repro.bench.calibration
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .reporting import format_table
from ..apps import compress, mapreduce, pattern, sift
from ..workloads import generate_rules, packet_trace, synthetic_image, synthetic_text, synthetic_webpage


@dataclass(frozen=True)
class CalibrationRow:
    case: str
    workload: str
    python_seconds: float
    python_ns_per_byte: float
    assumed_native_ns_per_byte: float
    suggested_factor: float
    shipped_factor: float


# Native per-byte costs on the paper's platform, from the paper's own
# numbers where derivable and from library documentation otherwise.
_NATIVE_NS_PER_BYTE = {
    # siftpp is famously slow: seconds for sub-megapixel images.
    "sift": 550.0,
    # zlib on prose at default level: ~18 MB/s inside an enclave.
    "compress": 55.0,
    # No stable native per-byte cost exists here: the scan is ruleset-
    # dominated, and the paper's per-packet cost is only known indirectly
    # (Fig. 5(c): baseline ≈ 316-412x the ~0.1-0.3 ms hit path, i.e.
    # tens of ms per packet).  Anchoring at the 256 B-1 KB band of our
    # measured scan times yields this effective per-byte figure; the
    # shipped factor 2.0 reproduces the paper's speedup range there.
    "pattern": 190_000.0,
    # a compact C++ MapReduce word count.
    "bow": 70.0,
}


def _measure(func, value) -> float:
    func(value)  # warm caches
    start = time.perf_counter()
    func(value)
    return time.perf_counter() - start


def run_calibration(seed: int = 7) -> list[CalibrationRow]:
    """Measure all four case studies and suggest native factors."""
    rows = []

    image = synthetic_image(192, seed=seed)
    seconds = _measure(sift.sift, image)
    rows.append(_row("sift", f"192px image ({image.nbytes}B)", seconds,
                     image.nbytes, shipped=1.0))

    text = synthetic_text(64 * 1024, seed=seed)
    seconds = _measure(compress.deflate, text)
    rows.append(_row("compress", "64KB prose", seconds, len(text), shipped=110.0))

    rules = generate_rules(3700, seed=seed)
    compiled = pattern.CompiledRuleset(rules)
    packet = packet_trace(1, payload_size=1024, duplicate_fraction=0.0, seed=seed)[0]
    seconds = _measure(compiled.scan, packet)
    rows.append(_row("pattern", f"{len(packet)}B packet vs 3700 rules",
                     seconds, len(packet), shipped=2.0))

    page = synthetic_webpage(8000, seed=seed)
    seconds = _measure(mapreduce.bag_of_words, page)
    rows.append(_row("bow", f"{len(page)}B page", seconds, len(page), shipped=6.0))
    return rows


def _row(case: str, workload: str, seconds: float, n_bytes: int,
         shipped: float) -> CalibrationRow:
    python_ns = seconds * 1e9 / max(1, n_bytes)
    native_ns = _NATIVE_NS_PER_BYTE[case]
    return CalibrationRow(
        case=case,
        workload=workload,
        python_seconds=seconds,
        python_ns_per_byte=python_ns,
        assumed_native_ns_per_byte=native_ns,
        suggested_factor=python_ns / native_ns,
        shipped_factor=shipped,
    )


def print_calibration(rows: list[CalibrationRow]) -> str:
    return format_table(
        "Native-factor calibration",
        ["case", "workload", "python (s)", "py ns/B", "native ns/B",
         "suggested factor", "shipped factor"],
        [[r.case, r.workload, r.python_seconds, r.python_ns_per_byte,
          r.assumed_native_ns_per_byte, r.suggested_factor, r.shipped_factor]
         for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover - manual workflow
    print(print_calibration(run_calibration()))
