"""CLI entry point: ``python -m repro.bench <experiment> [--quick] [--csv DIR]``.

Experiments: fig5a fig5b fig5c fig5d table1 fig6 a1 a2 a3 a4 a5 a6 a7 e9 e10
batch cluster pipeline durable migrate adaptive reshard all
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import harness
from .export import write_csv, write_json


def _runners(quick: bool) -> dict[str, tuple]:
    """experiment -> (runner thunk, printer, optional title)."""
    trials = 1 if quick else 3
    return {
        "fig5a": (
            lambda: harness.run_fig5a_sift(
                sizes=[64, 96] if quick else None, trials=trials
            ),
            harness.print_fig5, "Fig. 5(a): SIFT feature extraction",
        ),
        "fig5b": (
            lambda: harness.run_fig5b_compress(
                sizes=[16 * harness.KB, 64 * harness.KB] if quick else None,
                trials=trials,
            ),
            harness.print_fig5, "Fig. 5(b): data compression",
        ),
        "fig5c": (
            lambda: harness.run_fig5c_pattern(
                payload_sizes=[256, 512] if quick else None,
                n_rules=400 if quick else 3700, trials=trials,
            ),
            harness.print_fig5,
            f"Fig. 5(c): pattern matching ({400 if quick else 3700} rules)",
        ),
        "fig5d": (
            lambda: harness.run_fig5d_bow(
                word_counts=[1000, 2000] if quick else None, trials=trials
            ),
            harness.print_fig5, "Fig. 5(d): BoW computation",
        ),
        "table1": (
            lambda: harness.run_table1(
                sizes=[harness.KB, 10 * harness.KB] if quick else None,
                trials=1 if quick else 3,
            ),
            harness.print_table1, None,
        ),
        "fig6": (
            lambda: harness.run_fig6(
                sizes=[harness.KB, 10 * harness.KB] if quick else None,
                ops=20 if quick else 100,
            ),
            harness.print_fig6, None,
        ),
        "a1": (
            lambda: harness.run_ablation_schemes(
                text_bytes=(16 if quick else 64) * harness.KB
            ),
            harness.print_ablation_schemes, None,
        ),
        "a2": (
            lambda: harness.run_ablation_async_put(
                text_bytes=(16 if quick else 64) * harness.KB
            ),
            harness.print_ablation_async_put, None,
        ),
        "a3": (
            lambda: harness.run_ablation_epc(
                **(dict(n_entries=128, result_bytes=64 * harness.KB) if quick else {})
            ),
            harness.print_ablation_epc, None,
        ),
        "a4": (
            lambda: harness.run_ablation_quota(),
            harness.print_ablation_quota, None,
        ),
        "a5": (
            lambda: harness.run_ablation_adaptive(calls=20 if quick else 40),
            harness.print_ablation_adaptive, None,
        ),
        "a6": (
            lambda: harness.run_ablation_oblivious(
                **(dict(n_entries=32, gets=64) if quick else {})
            ),
            harness.print_ablation_oblivious, None,
        ),
        "a7": (
            lambda: harness.run_ablation_switchless(ops=20 if quick else 50),
            harness.print_ablation_switchless, None,
        ),
        "e9": (
            lambda: harness.run_incremental(epochs=3 if quick else 4),
            harness.print_incremental, None,
        ),
        "e10": (
            lambda: harness.run_duplication_sweep(
                **(dict(fractions=[0.0, 0.5, 0.9], calls=12,
                        text_bytes=8 * harness.KB) if quick else {})
            ),
            harness.print_duplication_sweep, None,
        ),
        "batch": (
            lambda: harness.run_batch(
                **(dict(batch_sizes=[1, 4, 16], ops=32, calls=8,
                        text_bytes=4 * harness.KB) if quick else {})
            ),
            harness.print_batch, None,
        ),
        "cluster": (
            lambda: harness.run_cluster(
                **(dict(shard_counts=[1, 2, 4], ops=32) if quick else {})
            ),
            harness.print_cluster, None,
        ),
        "pipeline": (
            lambda: harness.run_pipeline(
                **(dict(depths=[1, 8], ops=24, duplicates=8) if quick else {})
            ),
            harness.print_pipeline, None,
        ),
        "durable": (
            lambda: harness.run_durable(
                **(dict(group_commits=[1, 8], log_lengths=[16, 64], ops=24)
                   if quick else {})
            ),
            harness.print_durable, None,
        ),
        "migrate": (
            lambda: harness.run_migrate(
                **(dict(ops=24, rounds=12) if quick else {})
            ),
            harness.print_migrate, None,
        ),
        "adaptive": (
            lambda: harness.run_adaptive(
                **(dict(depths=[1, 8], ops=24, rounds=12) if quick else {})
            ),
            harness.print_adaptive, None,
        ),
        "reshard": (
            lambda: harness.run_reshard(
                **(dict(joins=2, ops=24, rounds=12) if quick else {})
            ),
            harness.print_reshard, None,
        ),
    }


EXPERIMENTS = list(_runners(False))


def run_experiment(
    name: str,
    quick: bool,
    csv_dir: str | None = None,
    json_path: str | None = None,
) -> str:
    registry = _runners(quick)
    if name not in registry:
        raise ValueError(f"unknown experiment {name!r}")
    runner, printer, title = registry[name]
    rows = runner()
    if csv_dir is not None:
        write_csv(rows, pathlib.Path(csv_dir) / f"{name}.csv")
    if json_path is None and name in ("batch", "cluster", "pipeline",
                                      "durable", "migrate", "adaptive",
                                      "reshard"):
        # These sweeps always leave a machine-readable artifact so their
        # acceptance numbers can be checked without re-running.
        json_path = f"BENCH_{name}.json"
    if json_path is not None:
        write_json(rows, json_path)
    if title is not None:
        return printer(title, rows)
    return printer(rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ["all"])
    parser.add_argument("--quick", action="store_true", help="reduced sizes/trials")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write <experiment>.csv files into DIR")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write rows as JSON to PATH (the batch "
                             "experiment writes BENCH_batch.json by default)")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_experiment(name, args.quick, args.csv, args.json))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
