"""Deterministic synthetic workloads standing in for the paper's datasets.

Each generator documents which dataset it substitutes and preserves the
property the experiment depends on (sizes, structure, and above all the
duplicate fraction that computation deduplication exploits).
"""

from .images import image_stream, synthetic_image
from .packets import packet_trace
from .rules import PLANTED_CONTENTS, generate_rules
from .text import synthetic_text, text_corpus
from .webpages import synthetic_webpage, webpage_stream

__all__ = [
    "PLANTED_CONTENTS",
    "generate_rules",
    "image_stream",
    "packet_trace",
    "synthetic_image",
    "synthetic_text",
    "synthetic_webpage",
    "text_corpus",
    "webpage_stream",
]
