"""Synthetic image workload (substitute for the paper's Internet images).

The paper's Case 1 runs SIFT over "different sized images from the
Internet".  We generate deterministic grayscale images with blob, edge,
and texture structure (so SIFT finds real keypoints) and a stream with a
controllable duplicate fraction (the quantity deduplication exploits).
"""

from __future__ import annotations

import numpy as np

from ..errors import SpeedError


def synthetic_image(size: int, seed: int = 0) -> np.ndarray:
    """One ``size``x``size`` float64 grayscale image in [0, 1]."""
    if size < 32:
        raise SpeedError("images below 32px have no usable scale space")
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    image = np.zeros((size, size), dtype=np.float64)

    # Gaussian blobs at random positions/scales give corner-like features.
    n_blobs = max(24, size // 4)
    for _ in range(n_blobs):
        cy, cx = rng.uniform(0.05 * size, 0.95 * size, 2)
        radius = rng.uniform(size / 96, size / 12)
        amplitude = rng.uniform(0.3, 1.0) * rng.choice([-1.0, 1.0])
        image += amplitude * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * radius**2))

    # Rectangles create strong edges.
    for _ in range(max(10, size // 12)):
        y0, x0 = rng.integers(0, size - size // 8, 2)
        h, w = rng.integers(size // 24, size // 6, 2)
        image[y0:y0 + h, x0:x0 + w] += rng.uniform(-0.7, 0.7)

    # Oriented sinusoidal texture plus fine-grained noise.
    for _ in range(3):
        fy, fx = rng.uniform(0.05, 0.4, 2)
        phase = rng.uniform(0, 2 * np.pi)
        image += 0.15 * np.sin(2 * np.pi * (fy * yy + fx * xx) + phase)
    image += 0.08 * rng.standard_normal((size, size))

    image -= image.min()
    peak = image.max()
    if peak > 0:
        image /= peak
    # 8-bit grayscale, like a decoded photograph.
    return np.round(image * 255.0).astype(np.uint8)


def image_stream(
    count: int,
    size: int,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> list[np.ndarray]:
    """A stream of images in which ``duplicate_fraction`` are repeats of
    earlier ones (drawn uniformly from the unique pool)."""
    if not 0.0 <= duplicate_fraction < 1.0:
        raise SpeedError("duplicate_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed ^ 0x5EED)
    n_unique = max(1, round(count * (1.0 - duplicate_fraction)))
    unique = [synthetic_image(size, seed=seed + i) for i in range(n_unique)]
    stream = list(unique)
    while len(stream) < count:
        stream.append(unique[int(rng.integers(0, n_unique))])
    rng.shuffle(stream)
    return stream[:count]
