"""Synthetic packet-trace generator (substitute for m57-Patents / 4SICS).

The paper's Case 3 feeds "over 4 million valid network packets" from two
public captures.  Our generator reproduces the properties that matter to
the experiment: payloads drawn from a bounded pool of flows (network
traces are highly redundant — the quantity deduplication exploits),
protocol-shaped content (HTTP-ish requests, binary control frames), and
a small planted-malicious fraction that triggers IDS rules.
"""

from __future__ import annotations

import numpy as np

from .rules import PLANTED_CONTENTS

_HTTP_PATHS = [b"/index.html", b"/api/v1/status", b"/login", b"/static/app.js",
               b"/images/logo.png", b"/health", b"/metrics", b"/favicon.ico"]
_HOSTS = [b"example.com", b"intranet.local", b"update.vendor.net", b"files.corp"]


def _http_payload(rng: np.random.Generator, size: int) -> bytes:
    path = _HTTP_PATHS[int(rng.integers(0, len(_HTTP_PATHS)))]
    host = _HOSTS[int(rng.integers(0, len(_HOSTS)))]
    head = b"GET " + path + b" HTTP/1.1\r\nHost: " + host + b"\r\nUser-Agent: synth/1.0\r\n\r\n"
    body = bytes(int(b) for b in rng.integers(32, 127, max(0, size - len(head))))
    return (head + body)[:max(size, len(head))]


def _binary_payload(rng: np.random.Generator, size: int) -> bytes:
    # SCADA-ish frame: magic, function code, register run, CRC filler.
    head = b"\x68" + bytes(int(b) for b in rng.integers(0, 256, 3)) + b"\x68"
    body = bytes(int(b) for b in rng.integers(0, 256, max(0, size - len(head))))
    return head + body


def _malicious_payload(rng: np.random.Generator, size: int) -> bytes:
    marker = PLANTED_CONTENTS[int(rng.integers(0, len(PLANTED_CONTENTS)))]
    base = _http_payload(rng, size)
    insert_at = int(rng.integers(0, max(1, len(base) - len(marker))))
    return base[:insert_at] + marker + base[insert_at + len(marker):]


def packet_trace(
    count: int,
    payload_size: int = 512,
    duplicate_fraction: float = 0.6,
    malicious_fraction: float = 0.02,
    seed: int = 0,
) -> list[bytes]:
    """Generate a deterministic trace of ``count`` payloads.

    ``duplicate_fraction`` controls how many packets repeat an earlier
    payload byte-for-byte (retransmissions, polling traffic, repeated
    downloads), which is what drives the paper's 316-412x speedups.
    """
    rng = np.random.default_rng(seed)
    n_unique = max(1, round(count * (1.0 - duplicate_fraction)))
    unique: list[bytes] = []
    for i in range(n_unique):
        roll = rng.random()
        size = int(payload_size * rng.uniform(0.5, 1.5))
        if roll < malicious_fraction:
            unique.append(_malicious_payload(rng, size))
        elif roll < 0.7:
            unique.append(_http_payload(rng, size))
        else:
            unique.append(_binary_payload(rng, size))
    trace = list(unique)
    while len(trace) < count:
        trace.append(unique[int(rng.integers(0, n_unique))])
    rng.shuffle(trace)
    return trace[:count]
