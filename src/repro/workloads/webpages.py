"""Synthetic web-page generator (substitute for the CommonCrawl WET set).

The paper's Case 4 word-counts "300,000 web pages from the CommonCrawl
dataset".  We synthesise pages with title/heading/paragraph structure,
light markup (exercising the BoW tokenizer's stripping path), a Zipf
vocabulary, and a crawl-like duplicate fraction (mirrors, unchanged
re-crawls) controlled per stream.
"""

from __future__ import annotations

import numpy as np

from .text import _VOCABULARY, _zipf_weights


def synthetic_webpage(n_words: int = 400, seed: int = 0) -> str:
    """One page of roughly ``n_words`` words with light HTML structure."""
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(len(_VOCABULARY))

    def words(n: int) -> str:
        picks = rng.choice(len(_VOCABULARY), size=n, p=weights)
        return " ".join(_VOCABULARY[w] for w in picks)

    lines = [f"<title>{words(int(rng.integers(3, 8)))}</title>"]
    remaining = n_words
    while remaining > 0:
        if rng.random() < 0.15:
            lines.append(f"<h2>{words(int(rng.integers(2, 6)))}</h2>")
        paragraph_len = int(rng.integers(30, 80))
        lines.append(f"<p>{words(min(paragraph_len, remaining))}</p>")
        remaining -= paragraph_len
    return "\n".join(lines)


def webpage_stream(
    count: int,
    n_words: int = 400,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> list[str]:
    """A crawl of ``count`` pages with repeated (re-crawled) pages."""
    rng = np.random.default_rng(seed ^ 0xCAFE)
    n_unique = max(1, round(count * (1.0 - duplicate_fraction)))
    unique = [synthetic_webpage(n_words, seed=seed + i) for i in range(n_unique)]
    stream = list(unique)
    while len(stream) < count:
        stream.append(unique[int(rng.integers(0, n_unique))])
    rng.shuffle(stream)
    return stream[:count]
