"""Synthetic Snort-like rule generator (substitute for the Snort rules).

The paper's Case 3 uses "over 3,700 patterns from Snort rules".  Real
Snort rules combine literal ``content`` strings (hex or keyword) with an
optional ``pcre`` clause; this generator reproduces that mix with fixed
keyword/protocol pools and deterministic seeding.  A small fraction of
rules is planted to actually fire on the synthetic traffic (see
:mod:`repro.workloads.packets`), matching IDS reality where most rules
never trigger.
"""

from __future__ import annotations

import numpy as np

from ..apps.pattern.ruleset import Rule

_KEYWORDS = [
    b"cmd.exe", b"/etc/passwd", b"SELECT", b"UNION", b"<script>", b"powershell",
    b"wget ", b"curl ", b"base64,", b"eval(", b"../..", b"\\x90\\x90", b"admin",
    b"login", b"passwd=", b"token=", b"sessionid", b"shellcode", b"DROP TABLE",
    b"xp_cmdshell", b"AUTH PLAIN", b"USER anonymous", b"PASS ", b"PUT /",
]
_PCRE_TEMPLATES = [
    r"User-Agent: [a-z]{4,12}bot",
    r"GET /[a-z0-9]{8,16}\.php\?id=\d+",
    r"(admin|root|guest):[^\s]{4,16}",
    r"\x00\x01[\x02-\x7f]{4}",
    r"Host: [a-z0-9.-]+\.(ru|cn|tk)",
    r"cmd=([a-z]+;){2,8}",
    r"[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}:\d{2,5}",
    r"password=\w{1,16}&",
]
# Content strings deliberately present in the synthetic traffic so that a
# realistic minority of rules fires.
PLANTED_CONTENTS = [b"MALWARE-BEACON", b"EXFIL-CHUNK", b"CVE-2019-0001", b"EVILBOT"]


def _hex_content(rng: np.random.Generator) -> bytes:
    length = int(rng.integers(4, 12))
    return bytes(int(b) for b in rng.integers(0, 256, length))


def generate_rules(count: int = 3700, seed: int = 0) -> list[Rule]:
    """Deterministically generate ``count`` rules."""
    rng = np.random.default_rng(seed)
    rules: list[Rule] = []
    for rule_id in range(1, count + 1):
        roll = rng.random()
        contents: list[bytes] = []
        pcre: str | None = None
        if rule_id <= len(PLANTED_CONTENTS) * 4:
            # Planted rules: guaranteed to match some synthetic packets.
            contents = [PLANTED_CONTENTS[rule_id % len(PLANTED_CONTENTS)]]
        elif roll < 0.55:
            # Keyword-content rules (possibly multiple contents).
            n = int(rng.integers(1, 3))
            picks = rng.choice(len(_KEYWORDS), size=n, replace=False)
            contents = [_KEYWORDS[p] for p in picks]
            # Salt one content so most rules are unique byte strings.
            contents[0] = contents[0] + b"/" + str(int(rng.integers(0, 10**6))).encode()
        elif roll < 0.8:
            contents = [_hex_content(rng)]
        else:
            template = _PCRE_TEMPLATES[int(rng.integers(0, len(_PCRE_TEMPLATES)))]
            pcre = template
            if rng.random() < 0.5:
                contents = [_KEYWORDS[int(rng.integers(0, len(_KEYWORDS)))]]
        rules.append(
            Rule(
                rule_id=rule_id,
                message=f"synthetic rule {rule_id}",
                contents=tuple(contents),
                pcre=pcre,
            )
        )
    return rules
