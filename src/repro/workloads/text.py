"""Synthetic text workload (substitute for the Boost-library text files).

The paper's Case 2 compresses "different sized text files from the Boost
Library".  We synthesise English-like prose from a fixed vocabulary with
a Zipf frequency profile and sentence/paragraph structure — compressible
in the same regime as source-tree documentation (ratios around 0.3-0.5
under our codec), and byte-for-byte reproducible from the seed.
"""

from __future__ import annotations

import numpy as np

_VOCABULARY = (
    "the of and to in a is that it for as with was on are be this by from "
    "or an have not they which one had you were all their there can more "
    "has but some what when out other into time only could these two may "
    "then do first any my now such like our over man me even most made "
    "after also did many before must through years where much your way "
    "system data result function enclave secure compute memory store key "
    "cache page table thread process network packet byte code library "
    "value input output state buffer size block stream file record index"
).split()


def _zipf_weights(n: int) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / ranks
    return weights / weights.sum()


def synthetic_text(n_bytes: int, seed: int = 0) -> bytes:
    """ASCII prose of (at least) ``n_bytes`` bytes, truncated exactly."""
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(len(_VOCABULARY))
    pieces: list[str] = []
    total = 0
    while total < n_bytes:
        sentence_len = int(rng.integers(6, 18))
        words = rng.choice(len(_VOCABULARY), size=sentence_len, p=weights)
        sentence = " ".join(_VOCABULARY[w] for w in words)
        sentence = sentence[0].upper() + sentence[1:] + ". "
        if rng.random() < 0.1:
            sentence += "\n\n"
        pieces.append(sentence)
        total += len(sentence)
    return "".join(pieces).encode("ascii")[:n_bytes]


def text_corpus(
    count: int,
    n_bytes: int,
    duplicate_fraction: float = 0.5,
    seed: int = 0,
) -> list[bytes]:
    """A stream of documents with a controllable duplicate fraction."""
    rng = np.random.default_rng(seed ^ 0x7E47)
    n_unique = max(1, round(count * (1.0 - duplicate_fraction)))
    unique = [synthetic_text(n_bytes, seed=seed + i) for i in range(n_unique)]
    stream = list(unique)
    while len(stream) < count:
        stream.append(unique[int(rng.integers(0, n_unique))])
    rng.shuffle(stream)
    return stream[:count]
