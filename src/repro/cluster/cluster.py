"""The server side of a sharded ResultStore deployment.

The paper runs one ResultStore per machine (Fig. 1).  A
:class:`StoreCluster` runs N of them — each shard is a full
:class:`~repro.store.resultstore.ResultStore` on its **own** simulated
machine (:class:`~repro.sgx.platform.SgxPlatform`), so every shard has
its own store enclave, its own EPC budget and paging behaviour, its own
quota pool, and its own clock.  What the shards share is the tag-space
partition (the :class:`~repro.cluster.ring.ShardRing`) and the quoting
infrastructure that lets applications and sibling shards attest them
remotely.

Failures are injected at the transport: killing a shard adds its address
to the network :class:`~repro.net.transport.FaultInjector`'s dead set,
so requests to it vanish on the wire and callers observe timeouts — the
same observable behaviour as a crashed store process.  A revived shard
keeps its pre-crash state (crash-pause model); entries it missed while
dead flow back through read-repair.

The ring can also grow and shrink live.  The streaming path
(:meth:`begin_add_shard` / :meth:`begin_remove_shard`, driven by
``Session.add_shard()``/``remove_shard()``) opens a dual-ownership
window and hands tag ranges off in bounded batches over mutually
attested store-to-store channels (:mod:`repro.cluster.migration`) while
foreground traffic keeps flowing.  The old blocking entry points
(:meth:`add_shard` / :meth:`remove_shard`) are deprecated shims over the
same machinery.
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field

from .migration import MigrationConfig, MigrationReport, RangeMigrator
from .ring import ShardRing, TopologyPlan
from .router import ClusterRouter
from ..errors import SpeedError
from ..net.transport import FaultInjector, Network
from ..obs.tracer import NULL_TRACER
from ..sgx.attestation import AttestationService
from ..sgx.cost_model import CostParams
from ..sgx.enclave import Enclave
from ..sgx.platform import SgxPlatform
from ..store.resultstore import ResultStore, StoreConfig


@dataclass(frozen=True)
class ClusterConfig:
    """Topology knobs for one StoreCluster."""

    n_shards: int = 4
    replication_factor: int = 2
    vnodes: int = 32
    # Template applied to every shard (it is frozen, so sharing is safe);
    # each shard still gets its own QuotaManager/eviction state from it.
    store_config: StoreConfig = field(default_factory=StoreConfig)
    epc_usable_bytes: int | None = None


@dataclass
class ShardNode:
    """One shard: its machine, its store, and its network address."""

    shard_id: str
    platform: SgxPlatform
    store: ResultStore

    @property
    def address(self) -> str:
        return self.store.address


class StoreCluster:
    """N ResultStore shards behind one consistent-hash ring."""

    def __init__(
        self,
        network: Network,
        attestation_service: AttestationService,
        config: ClusterConfig | None = None,
        seed: bytes = b"speed-cluster",
        cost_params: CostParams | None = None,
        tracer=NULL_TRACER,
    ):
        self.network = network
        self.attestation = attestation_service
        self.config = config or ClusterConfig()
        self.tracer = NULL_TRACER if tracer is None else tracer
        if self.config.n_shards < 1:
            raise SpeedError("a cluster needs at least one shard")
        if not self.config.store_config.use_sgx:
            raise SpeedError("cluster shards require SGX-mode stores")
        self._seed = seed
        self._cost_params = cost_params
        self.fault: FaultInjector = network.ensure_fault_injector()
        self.ring = ShardRing(vnodes=self.config.vnodes)
        self.shards: dict[str, ShardNode] = {}
        self._spawned = 0
        self._migration_seq = 0
        # Routers to retro-fit when the ring grows: (app name, enclave, router).
        self._routers: list[tuple[str, Enclave, ClusterRouter]] = []
        for _ in range(self.config.n_shards):
            self._spawn_shard()

    # -- shard lifecycle -------------------------------------------------------
    def _spawn_shard(
        self, shard_id: str | None = None, register: bool = True
    ) -> ShardNode:
        shard_id = shard_id or f"shard-{self._spawned}"
        if shard_id in self.shards:
            raise SpeedError(f"shard {shard_id!r} already exists")
        self._spawned += 1
        platform_kwargs = {}
        if self.config.epc_usable_bytes is not None:
            platform_kwargs["epc_usable_bytes"] = self.config.epc_usable_bytes
        platform = SgxPlatform(
            seed=self._seed + b"/" + shard_id.encode(),
            name=shard_id,
            params=self._cost_params,
            attestation_service=self.attestation,
            **platform_kwargs,
        )
        store = ResultStore(
            platform,
            self.network,
            address=f"resultstore@{shard_id}",
            config=self.config.store_config,
            seed=self._seed + b"/store/" + shard_id.encode(),
            tracer=self.tracer,
        )
        node = ShardNode(shard_id=shard_id, platform=platform, store=store)
        self.shards[shard_id] = node
        if register:
            # Streaming joins keep the shard off the ring until the
            # dual-ownership transition opens (ring.begin_join).
            self.ring.add_shard(shard_id)
        return node

    def add_shard(self, shard_id: str | None = None) -> tuple[ShardNode, MigrationReport]:
        """Deprecated: use ``Session.add_shard()`` (or
        :meth:`begin_add_shard` for step-wise control).  Runs the
        streaming join to completion and returns the legacy
        ``(node, report)`` pair."""
        warnings.warn(
            "StoreCluster.add_shard is deprecated; use Session.add_shard()",
            DeprecationWarning,
            stacklevel=2,
        )
        migrator = self.begin_add_shard(shard_id)
        report = migrator.run()
        return self.shards[migrator.shard_id], report

    def remove_shard(self, shard_id: str) -> MigrationReport:
        """Deprecated: use ``Session.remove_shard()`` (or
        :meth:`begin_remove_shard` for step-wise control).  Runs the
        streaming drain to completion and returns the legacy report."""
        warnings.warn(
            "StoreCluster.remove_shard is deprecated; use Session.remove_shard()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.begin_remove_shard(shard_id).run()

    # -- streaming topology changes -------------------------------------------
    def next_migration_seq(self) -> int:
        self._migration_seq += 1
        return self._migration_seq

    def begin_add_shard(
        self,
        shard_id: str | None = None,
        config: MigrationConfig | None = None,
        engine=None,
        weight: float = 1.0,
    ) -> RangeMigrator:
        """Spawn a shard and open a streaming join: the new machine is
        connected to every registered router *before* the dual-ownership
        window opens, so writes can land on it the moment it becomes a
        pending owner.  ``weight`` sets the joiner's relative capacity
        (vnode share).  Returns the started :class:`RangeMigrator`;
        drive it with ``step()``/``finish()`` (or ``run()``)."""
        node = self._attach_joiner(shard_id)
        migrator = RangeMigrator(
            self, "join", node.shard_id, config=config, engine=engine,
            weight=weight,
        )
        try:
            migrator.start()
        except Exception:
            self._despawn(node.shard_id)
            raise
        return migrator

    def begin_plan(
        self,
        plan: TopologyPlan,
        config: MigrationConfig | None = None,
        engine=None,
    ) -> RangeMigrator:
        """Open **one** streaming window applying every change in
        ``plan`` — N joins, leaves, and reweights pay a single
        dual-ownership window instead of N serialized ones.

        Joiner machines are spawned and attached to every registered
        router up front (anonymous joins — ``join(None)`` — get
        auto-assigned shard ids here); if the window fails to open, all
        of them are despawned again.  Returns the started
        :class:`RangeMigrator`; drive it with ``step()``/``finish()``
        (or ``run()``), or back out with :meth:`abort_plan`."""
        plan.validate()
        resolved_joins = []
        spawned: list[str] = []
        try:
            for sid, weight in plan.joins:
                node = self._attach_joiner(sid)
                spawned.append(node.shard_id)
                resolved_joins.append((node.shard_id, weight))
        except Exception:
            for sid in spawned:
                self._despawn(sid)
            raise
        resolved = TopologyPlan(
            joins=tuple(resolved_joins),
            leaves=plan.leaves,
            reweights=plan.reweights,
        )
        migrator = RangeMigrator(
            self, "plan", "", config=config, engine=engine, plan=resolved
        )
        try:
            migrator.start()
        except Exception:
            for sid in spawned:
                self._despawn(sid)
            raise
        return migrator

    def abort_plan(self, migrator: RangeMigrator) -> None:
        """Back out of a planned window: restore the old ownership map,
        clean partially migrated copies, and despawn every joiner the
        plan had spawned (leavers and reweighted shards stay)."""
        migrator.abort()
        for sid in sorted(migrator.joiners):
            self._despawn(sid)

    def _attach_joiner(self, shard_id: str | None) -> ShardNode:
        """Spawn a joining shard off-ring and connect it to every
        registered router, so writes can land on it the moment the
        pending ring makes it an owner."""
        node = self._spawn_shard(shard_id, register=False)
        for app_name, enclave, router in self._routers:
            client = node.store.connect(
                f"{app_name}->{node.shard_id}",
                app_enclave=enclave,
                attestation_service=self.attestation,
            )
            router.attach_shard(node.shard_id, client)
        return node

    def begin_remove_shard(
        self,
        shard_id: str,
        config: MigrationConfig | None = None,
        engine=None,
    ) -> RangeMigrator:
        """Open a streaming drain of ``shard_id``.  The shard keeps
        serving (it remains a read owner of its ranges until each
        commits); :meth:`RangeMigrator.finish` detaches and kills it."""
        if shard_id not in self.shards:
            raise SpeedError(f"unknown shard {shard_id!r}")
        if len(self.shards) == 1:
            raise SpeedError("cannot remove the last shard")
        migrator = RangeMigrator(
            self, "leave", shard_id, config=config, engine=engine
        )
        migrator.start()
        return migrator

    def abort_add_shard(self, migrator: RangeMigrator) -> None:
        """Back out of a streaming join (e.g. the target refused a batch
        for capacity): restore the old ownership map, clean partially
        migrated copies, and despawn the joiner."""
        migrator.abort()
        self._despawn(migrator.shard_id)

    def _despawn(self, shard_id: str) -> None:
        node = self.shards.pop(shard_id, None)
        if node is None:
            return
        for _name, _enclave, router in self._routers:
            router.detach_shard(shard_id)
        self.fault.kill(node.address)

    def _complete_leave(self, shard_id: str) -> None:
        """Final hand-off step of a streaming drain (ring already
        settled without the leaver): detach and go dark."""
        self._despawn(shard_id)

    # -- failure injection -----------------------------------------------------
    def kill_shard(self, shard_id: str) -> None:
        """Crash a shard: its traffic vanishes at the transport, so every
        caller sees timeouts.  State is retained (crash-pause model)."""
        self.fault.kill(self._node(shard_id).address)

    def revive_shard(self, shard_id: str) -> None:
        self.fault.revive(self._node(shard_id).address)

    def restart_shard(self, shard_id: str):
        """Crash-*restart* a shard through the persistence path: seal a
        snapshot of its state, wipe the in-memory dictionary and blob
        arena (the crash), restore from the sealed image inside the
        (reused) store enclave, and let traffic reach it again.  Unlike
        :meth:`kill_shard`'s crash-pause, state round-trips through
        :mod:`repro.store.persistence`, so restore bugs become losses the
        simulation harness can observe.  Returns the
        :class:`~repro.store.persistence.RestoreReport`.
        """
        from ..store.persistence import restore_store, snapshot_store

        node = self._node(shard_id)
        self.fault.kill(node.address)
        sealed = snapshot_store(node.store)
        node.store.clear()
        report = restore_store(node.store, sealed)
        self.fault.revive(node.address)
        return report

    def power_fail_shard(self, shard_id: str):
        """Crash a shard with *state loss*: unlike :meth:`kill_shard`'s
        crash-pause and :meth:`restart_shard`'s snapshot round-trip, the
        shard's volatile memory — enclave dictionary, blob arena, quota
        and eviction state — is wiped in place, and the store rebuilds
        itself exclusively from its durable write-ahead log and sealed
        checkpoint before traffic reaches it again.  Requires shards
        configured with ``StoreConfig(durable=True)``.  Returns the
        :class:`~repro.durable.recovery.RecoveryReport`."""
        node = self._node(shard_id)
        self.fault.kill(node.address)
        node.store.power_fail()
        report = node.store.recover()
        self.fault.revive(node.address)
        return report

    def shard_alive(self, shard_id: str) -> bool:
        return not self.fault.is_dead(self._node(shard_id).address)

    def _node(self, shard_id: str) -> ShardNode:
        try:
            return self.shards[shard_id]
        except KeyError:
            raise SpeedError(f"unknown shard {shard_id!r}") from None

    # -- client wiring ---------------------------------------------------------
    def connect(self, app_name: str, app_enclave: Enclave) -> ClusterRouter:
        """Attest ``app_enclave`` to every shard and return the router its
        DedupRuntime will use in place of a single RpcClient."""
        clients = {}
        for shard_id, node in sorted(self.shards.items()):
            clients[shard_id] = node.store.connect(
                f"{app_name}->{shard_id}",
                app_enclave=app_enclave,
                attestation_service=self.attestation,
            )
        router = ClusterRouter(
            self.ring, clients,
            replication_factor=self.config.replication_factor,
            tracer=self.tracer,
            clock=app_enclave.platform.clock,
        )
        self._routers.append((app_name, app_enclave, router))
        return router

    # -- introspection ---------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self.shards))

    def total_entries(self) -> int:
        return sum(len(node.store) for node in self.shards.values())

    def owners_of(self, tag: bytes) -> list[str]:
        return self.ring.owners(tag, self.config.replication_factor)

    def holders_of(self, tag: bytes) -> list[str]:
        """Shards actually holding ``tag`` right now (tests/diagnostics)."""
        return [
            shard_id
            for shard_id, node in sorted(self.shards.items())
            if node.store.contains(tag)
        ]

    def snapshot(self) -> dict:
        """Per-shard store counters plus topology, one JSON-ready dict."""
        return {
            "shards": {
                shard_id: {
                    "alive": self.shard_alive(shard_id),
                    "entries": len(node.store),
                    "load_share": (
                        self.ring.load_share(shard_id)
                        if shard_id in self.ring else 0.0
                    ),
                    **node.store.snapshot(),
                }
                for shard_id, node in sorted(self.shards.items())
            },
            "replication_factor": self.config.replication_factor,
            "total_entries": self.total_entries(),
        }
