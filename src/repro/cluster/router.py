"""Client-side routing across a sharded ResultStore cluster.

A :class:`ClusterRouter` presents the exact call surface of
:class:`~repro.net.rpc.RpcClient` — ``call``, ``call_batch``,
``send_oneway``, ``send_oneway_batch``, ``drain_responses``,
``records_sent`` — so a :class:`~repro.core.runtime.DedupRuntime` links
against it unchanged.  Behind that surface every request is routed by
the tag's position on the :class:`~repro.cluster.ring.ShardRing`:

* **GET** goes to the tag's owners in ring order.  A timed-out owner is
  skipped (failover); a live owner's *miss* falls through to the next
  replica; the first hit wins.  Live owners that missed before the hit
  receive an asynchronous **read-repair** PUT rebuilt from the hit, so
  a shard that lost or never received an entry converges back.  The
  repaired ciphertext is still the store-side ``(r, [k], [res])``
  triple — the router never sees plaintext, and a tampered replica is
  caught by the runtime's Fig. 3 MAC/tag verification exactly as a
  tampered single store would be.
* **PUT** is written to the primary and its ``replication_factor - 1``
  distinct successors.  The primary's verdict is authoritative; replica
  verdicts are absorbed into router counters.
* **Batches** are split per shard, routed, and rejoined in the original
  item order.  A sub-batch whose shard times out degrades to per-item
  routing through the surviving replicas; items with no live owner at
  all come back as per-item failures (``found=False`` /
  ``accepted=False`` with a ``no live owner`` reason) without
  disturbing their batch-mates' correlation.

One-way correlation: the router speaks to N per-shard clients, each
with its own request-id space, so it assigns its own router-level ids
and remaps shard acks onto them when draining.  For a replicated
one-way PUT the first ack to arrive is forwarded to the runtime (the
rest are absorbed), which keeps the runtime's strict PUT accounting
(accepted/rejected/failed/unacknowledged) intact: a fully-dead owner
set shows up as *unacknowledged*, never as a silent success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ring import ShardRing
from ..errors import (
    ChannelError,
    CircuitOpenError,
    NoLiveOwnerError,
    ProtocolError,
    TransportError,
)
from ..net.circuit import OPEN, BreakerConfig, CircuitBreaker
from ..net.rpc import RetryPolicy
from ..obs.metrics import namespaced
from ..obs.tracer import NULL_TRACER
from ..net.messages import (
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    GetResponse,
    Message,
    PutRequest,
    PutResponse,
    with_request_id,
)
from ..net.rpc import RpcClient

# Machine-readable reason carried by GetResponse/PutResponse when every
# owner shard of a tag was unreachable (== NoLiveOwnerError.code).
NO_LIVE_OWNER = NoLiveOwnerError.code

# Failures that mean "this shard did not serve the request": the send
# vanished (dead shard), the reply never arrived, a record was mangled
# on the wire, or the shard could not even parse the mangled record.
_SHARD_FAILURES = (TransportError, ChannelError, ProtocolError)


@dataclass
class RouterStats:
    """Cluster-side counters, disjoint from the runtime's per-call stats."""

    gets_routed: int = 0
    puts_routed: int = 0
    get_timeouts: int = 0
    put_timeouts: int = 0
    failovers: int = 0
    read_repairs: int = 0
    unavailable: int = 0
    replica_puts: int = 0
    replica_put_acks: int = 0
    replica_put_rejects: int = 0
    repair_acks: int = 0
    repair_rejects: int = 0
    # Calls the per-shard circuit breaker refused without touching the
    # wire (failing fast instead of paying another timeout).
    circuit_skips: int = 0

    #: Legacy keys with inconsistent spelling and their normalized
    #: ``router.<metric>`` names (events are plural nouns).
    _RENAMES = {
        "gets_routed": "gets",
        "puts_routed": "puts",
        "unavailable": "unavailable_gets",
        "replica_put_rejects": "replica_put_rejections",
        "repair_rejects": "repair_rejections",
    }

    def snapshot(self) -> dict:
        """Canonical ``router.<metric>`` keys plus the historical
        un-namespaced keys as aliases for one release."""
        return namespaced("router", {
            "gets_routed": self.gets_routed,
            "puts_routed": self.puts_routed,
            "get_timeouts": self.get_timeouts,
            "put_timeouts": self.put_timeouts,
            "failovers": self.failovers,
            "read_repairs": self.read_repairs,
            "unavailable": self.unavailable,
            "replica_puts": self.replica_puts,
            "replica_put_acks": self.replica_put_acks,
            "replica_put_rejects": self.replica_put_rejects,
            "repair_acks": self.repair_acks,
            "repair_rejects": self.repair_rejects,
            "circuit_skips": self.circuit_skips,
        }, renames=self._RENAMES)


@dataclass
class _PendingBatch:
    """A one-way PUT batch awaiting acks from several shards."""

    router_id: int
    n_items: int
    primaries: list[str]
    verdicts: dict[int, PutResponse] = field(default_factory=dict)
    primary_seen: set[int] = field(default_factory=set)
    emitted: bool = False


@dataclass
class _PendingCall:
    """One pipelined (submitted, not yet waited) routed call."""

    request: Message
    kind: str  # "get" | "put"
    # GET: the primary the request reached (None if nothing hit the wire,
    # e.g. no owners or the breaker was open) and its shard-local slot id.
    primary: str | None = None
    local_id: int | None = None
    # PUT: every (shard, shard-local slot id) submitted, in ring order.
    subs: list = field(default_factory=list)


@dataclass
class _PendingGetGroup:
    """One pipelined GET sub-batch bound for a single primary shard."""

    requests: list
    # None when nothing reached the wire (no live owners, open breaker,
    # or the send itself failed): wait falls back to per-item routing.
    primary: str | None = None
    local_id: int | None = None


@dataclass
class _PendingPutGroup:
    """One pipelined PUT sub-batch sharing a primary shard.

    Replication spreads the group's copies over several shards, so the
    group holds one submitted batch record per owner shard:
    ``subs`` is ``(shard, shard-local slot id, item positions)``.
    """

    requests: list
    primaries: list  # per item: its primary shard id, "" when none live
    subs: list = field(default_factory=list)


class ClusterRouter:
    """Routes one application's store traffic across the shard ring."""

    def __init__(
        self,
        ring: ShardRing,
        clients: dict[str, RpcClient],
        replication_factor: int = 2,
        tracer=NULL_TRACER,
        clock=None,
        breaker_config: BreakerConfig | None = None,
    ):
        if replication_factor < 1:
            raise ProtocolError("replication factor must be >= 1")
        self.ring = ring
        self.replication_factor = replication_factor
        self._clients = dict(clients)
        self.stats = RouterStats()
        self.breaker_config = breaker_config
        self._breakers: dict[str, CircuitBreaker] = {}
        # Observability: spans are recorded on the application machine's
        # clock (routing happens there); NULL_TRACER makes it all no-ops.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.clock = clock
        self._next_router_id = 1
        # (shard, local id) -> router id, for one-way singles and batches.
        self._single_by_key: dict[tuple[str, int], int] = {}
        self._single_keys: dict[int, set[tuple[str, int]]] = {}
        self._single_done: set[int] = set()
        self._batch_by_key: dict[tuple[str, int], tuple[int, list[int]]] = {}
        self._batches: dict[int, _PendingBatch] = {}
        # Pipelined calls: router id -> submitted-but-unwaited state.
        self._pipeline: dict[int, _PendingCall] = {}
        # Fire-and-forget sends whose acks are router-internal (read
        # repair): absorbed on drain, never surfaced to the runtime.
        self._absorb_keys: set[tuple[str, int]] = set()

    # -- topology ------------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(sorted(self._clients))

    @property
    def in_transition(self) -> bool:
        """True while the ring holds a dual-ownership migration window —
        a single join/drain or a planned multi-shard window
        (:class:`~repro.cluster.ring.TopologyPlan`); either way there is
        exactly one window at a time.

        The pipelined engine's adaptive depth controller reads this to
        cap its submit window and yield slots to the streaming migrator
        while the window is in flight."""
        return self.ring.in_transition

    def attach_shard(self, shard_id: str, client: RpcClient) -> None:
        """Connect to a shard that joined the ring live."""
        if shard_id in self._clients:
            raise ProtocolError(f"already connected to shard {shard_id!r}")
        self._clients[shard_id] = client
        if self._retry_policy is not None:
            client.retry_policy = self._retry_policy

    def detach_shard(self, shard_id: str) -> None:
        """Forget a shard that left the ring (its pending acks are void)."""
        self._clients.pop(shard_id, None)
        self._breakers.pop(shard_id, None)

    # -- hardening knobs -------------------------------------------------------
    _retry_policy: "RetryPolicy | None" = None

    def set_retry_policy(self, policy: RetryPolicy | None) -> None:
        """Apply one retry policy to every per-shard client (including
        shards attached later)."""
        self._retry_policy = policy
        for client in self._clients.values():
            client.retry_policy = policy

    def enable_breakers(self, config: BreakerConfig | None = None) -> None:
        """Turn on per-shard circuit breakers (idempotent; existing
        breaker state is discarded)."""
        self.breaker_config = config or BreakerConfig()
        self._breakers.clear()

    def _breaker(self, shard: str) -> CircuitBreaker | None:
        if self.breaker_config is None:
            return None
        breaker = self._breakers.get(shard)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_config, clock=self.clock)
            self._breakers[shard] = breaker
        return breaker

    def _call_shard(self, shard: str, request: Message) -> Message:
        """One synchronous shard call through that shard's breaker."""
        breaker = self._breaker(shard)
        if breaker is not None and not breaker.allow():
            self.stats.circuit_skips += 1
            raise CircuitOpenError(f"circuit open for shard {shard!r}")
        try:
            response = self._clients[shard].call(request)
        except _SHARD_FAILURES:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return response

    def _call_shard_batch(self, shard: str, requests: list) -> list[Message]:
        breaker = self._breaker(shard)
        if breaker is not None and not breaker.allow():
            self.stats.circuit_skips += 1
            raise CircuitOpenError(f"circuit open for shard {shard!r}")
        try:
            responses = self._clients[shard].call_batch(requests)
        except _SHARD_FAILURES:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return responses

    def _oneway_allowed(self, shard: str) -> bool:
        """Breaker gate for fire-and-forget sends (no response to learn
        from, so only the open/closed state is consulted)."""
        breaker = self._breaker(shard)
        if breaker is not None and not breaker.allow():
            self.stats.circuit_skips += 1
            return False
        return True

    @property
    def records_sent(self) -> int:
        return sum(c.records_sent for c in self._clients.values())

    def _owners(self, tag: bytes) -> list[str]:
        """The tag's owner shards this router can actually reach."""
        owners = self.ring.owners(tag, self.replication_factor)
        return [s for s in owners if s in self._clients]

    def _read_owners(self, tag: bytes) -> list[str]:
        """Reachable shards to consult for a GET.  During a topology
        transition (dual-ownership window) this is the old owners first
        with the pending owners as failover, so a tag stays readable
        whether or not its range has been handed off yet.  Under a
        planned multi-shard window the union may span several changed
        shards (two joiners plus a leaver, say) — the ring computes it
        per range, the router just filters to connected clients."""
        owners = self.ring.read_owners(tag, self.replication_factor)
        return [s for s in owners if s in self._clients]

    def _write_owners(self, tag: bytes) -> list[str]:
        """Reachable shards a PUT must land on.  During a transition
        writes go to the *pending* owners — the post-plan topology, even
        when several membership/weight changes land in the same window —
        so no update accepted inside the window is lost when its range
        commits."""
        owners = self.ring.write_owners(tag, self.replication_factor)
        return [s for s in owners if s in self._clients]

    def _fresh_router_id(self) -> int:
        router_id = self._next_router_id
        self._next_router_id += 1
        return router_id

    # -- synchronous single calls ---------------------------------------------
    def call(self, request: Message) -> Message:
        if isinstance(request, GetRequest):
            return self._route_get(request)
        if isinstance(request, PutRequest):
            return self._route_put(request)
        raise ProtocolError(
            f"cluster router cannot route {type(request).__name__}"
        )

    def _route_get(self, request: GetRequest, skip: set[str] | None = None) -> GetResponse:
        self.stats.gets_routed += 1
        owners = self._read_owners(request.tag)
        if skip:
            owners = [s for s in owners if s not in skip]
        with self.tracer.span("router.get", clock=self.clock, owners=len(owners)) as span:
            missed_live: list[str] = []
            timeouts = 0
            hit: GetResponse | None = None
            for shard in owners:
                with self.tracer.span(
                    "router.shard_get", clock=self.clock, shard=shard
                ) as shard_span:
                    try:
                        response = self._call_shard(shard, request)
                    except _SHARD_FAILURES:
                        self.stats.get_timeouts += 1
                        timeouts += 1
                        shard_span.mark("timeout")
                        continue
                if not isinstance(response, GetResponse):
                    raise ProtocolError(
                        f"shard {shard!r} answered GET with {type(response).__name__}"
                    )
                if response.found:
                    hit = response
                    break
                missed_live.append(shard)
            if hit is None:
                if not missed_live:
                    # Every reachable owner timed out (or was skipped): the
                    # item is unavailable, not absent.  Fail safe: the
                    # caller recomputes, exactly like a miss.
                    self.stats.unavailable += 1
                    span.mark("unavailable")
                    return GetResponse(found=False, reason=NO_LIVE_OWNER)
                span.set("outcome", "miss")
                return GetResponse(found=False)
            if timeouts:
                self.stats.failovers += 1
                self.tracer.event("router.failover", clock=self.clock,
                                  timeouts=timeouts)
            span.set("outcome", "hit")
            for shard in missed_live:
                self._queue_read_repair(shard, request, hit)
            return hit

    def _queue_read_repair(
        self, shard: str, request: GetRequest, hit: GetResponse
    ) -> None:
        """Re-PUT a hit to a live owner that answered miss (one-way)."""
        repair = PutRequest(
            tag=request.tag,
            challenge=hit.challenge,
            wrapped_key=hit.wrapped_key,
            sealed_result=hit.sealed_result,
            app_id=request.app_id,
        )
        with self.tracer.span("router.read_repair", clock=self.clock, shard=shard) as span:
            if not self._oneway_allowed(shard):
                span.mark("circuit_open")
                return
            try:
                local_id = self._clients[shard].send_oneway(repair)
            except _SHARD_FAILURES:
                span.mark("timeout")
                return
        self._absorb_keys.add((shard, local_id))
        self.stats.read_repairs += 1

    def _route_put(self, request: PutRequest) -> Message:
        self.stats.puts_routed += 1
        owners = self._write_owners(request.tag)
        with self.tracer.span("router.put", clock=self.clock, owners=len(owners)) as span:
            authoritative: Message | None = None
            for index, shard in enumerate(owners):
                if index:
                    self.stats.replica_puts += 1
                with self.tracer.span(
                    "router.shard_put", clock=self.clock, shard=shard
                ) as shard_span:
                    try:
                        response = self._call_shard(shard, request)
                    except _SHARD_FAILURES:
                        self.stats.put_timeouts += 1
                        shard_span.mark("timeout")
                        continue
                if authoritative is None:
                    # The first *live* owner in ring order is authoritative —
                    # the primary when it is up, else the first replica.
                    authoritative = response
                else:
                    self._count_replica_ack(response)
            if authoritative is None:
                span.mark("unavailable")
                raise NoLiveOwnerError(
                    f"{NO_LIVE_OWNER} for tag {request.tag[:8].hex()}"
                )
            return authoritative

    def _count_replica_ack(self, response: Message) -> None:
        if isinstance(response, PutResponse) and response.accepted:
            self.stats.replica_put_acks += 1
        else:
            self.stats.replica_put_rejects += 1

    # -- pipelined calls -------------------------------------------------------
    def submit(self, request: Message) -> int:
        """Pipelined routing: put the request on the wire (GET to its
        primary, PUT to every owner) and return a router slot id for
        :meth:`wait`.  Distinct tags land on distinct shards, so N
        submitted requests are served by the shards concurrently instead
        of one blocking round trip at a time.
        """
        if isinstance(request, GetRequest):
            pending = self._submit_get(request)
        elif isinstance(request, PutRequest):
            pending = self._submit_put(request)
        else:
            raise ProtocolError(
                f"cluster router cannot route {type(request).__name__}"
            )
        router_id = self._fresh_router_id()
        self._pipeline[router_id] = pending
        return router_id

    def _submit_get(self, request: GetRequest) -> _PendingCall:
        self.stats.gets_routed += 1
        pending = _PendingCall(request=request, kind="get")
        owners = self._read_owners(request.tag)
        if owners:
            shard = owners[0]
            breaker = self._breaker(shard)
            if breaker is None or breaker.allow():
                with self.tracer.span(
                    "router.shard_get", clock=self.clock, shard=shard
                ) as span:
                    try:
                        pending.local_id = self._clients[shard].submit(request)
                        pending.primary = shard
                    except _SHARD_FAILURES:
                        if breaker is not None:
                            breaker.record_failure()
                        span.mark("timeout")
            else:
                self.stats.circuit_skips += 1
        return pending

    def _submit_put(self, request: PutRequest) -> _PendingCall:
        self.stats.puts_routed += 1
        pending = _PendingCall(request=request, kind="put")
        for index, shard in enumerate(self._write_owners(request.tag)):
            if index:
                self.stats.replica_puts += 1
            breaker = self._breaker(shard)
            if breaker is not None and not breaker.allow():
                self.stats.circuit_skips += 1
                continue
            with self.tracer.span(
                "router.shard_put", clock=self.clock, shard=shard
            ) as span:
                try:
                    local_id = self._clients[shard].submit(request)
                except _SHARD_FAILURES:
                    if breaker is not None:
                        breaker.record_failure()
                    self.stats.put_timeouts += 1
                    span.mark("timeout")
                    continue
            pending.subs.append((shard, local_id))
        return pending

    # -- grouped pipelining (one record per shard sub-batch) -------------------
    def plan_gets(self, requests: list[GetRequest]) -> list[list[int]]:
        """Partition GET indices by primary owner shard.

        Each group can ship as one channel record to one shard, so a
        round of N GETs across S shards costs S records — and the S
        shards serve their sub-batches concurrently.  Items with no live
        owner form their own group (answered without touching the wire).
        """
        groups: dict[str, list[int]] = {}
        orphans: list[int] = []
        for i, request in enumerate(requests):
            owners = self._read_owners(request.tag)
            if owners:
                groups.setdefault(owners[0], []).append(i)
            else:
                orphans.append(i)
        out = [indices for _, indices in sorted(groups.items())]
        out.extend([i] for i in orphans)
        return out

    def submit_gets(self, requests: list[GetRequest]) -> int:
        """Submit one :meth:`plan_gets` group (a shared-primary GET
        sub-batch) as a single record; returns a router slot id for
        :meth:`wait_gets`."""
        requests = list(requests)
        pending = _PendingGetGroup(requests=requests)
        owners = self._read_owners(requests[0].tag) if requests else []
        if owners:
            shard = owners[0]
            breaker = self._breaker(shard)
            if breaker is None or breaker.allow():
                with self.tracer.span(
                    "router.shard_get", clock=self.clock, shard=shard,
                    items=len(requests),
                ) as span:
                    try:
                        pending.local_id = self._clients[shard].submit_gets(requests)
                        pending.primary = shard
                    except _SHARD_FAILURES:
                        if breaker is not None:
                            breaker.record_failure()
                        span.mark("timeout")
            else:
                self.stats.circuit_skips += 1
        router_id = self._fresh_router_id()
        self._pipeline[router_id] = pending
        return router_id

    def wait_gets(self, router_id: int, n_items: int | None = None) -> list[Message]:
        """Settle one GET group; per-item semantics match ``call_batch``.

        A group whose shard failed (at submit or in flight) falls back to
        per-item routing through the surviving replicas; a live primary's
        per-item miss consults the replicas and read-repairs the primary
        on a replica hit.  Items with no live owner anywhere come back as
        ``found=False`` / ``no live owner``.
        """
        pending = self._pipeline.pop(router_id, None)
        if not isinstance(pending, _PendingGetGroup):
            if pending is not None:  # a single-call slot: put it back
                self._pipeline[router_id] = pending
            raise ProtocolError(
                f"router group {router_id} was never submitted (or already waited on)"
            )
        requests = pending.requests
        if n_items is not None and n_items != len(requests):
            self._pipeline[router_id] = pending
            raise ProtocolError(
                f"router group {router_id} has {len(requests)} item(s), "
                f"waiter expected {n_items}"
            )
        if pending.primary is None:
            return [self._route_get(r) for r in requests]
        shard = pending.primary
        breaker = self._breaker(shard)
        responses: list[Message] | None = None
        with self.tracer.span(
            "router.shard_get", clock=self.clock, shard=shard,
            items=len(requests),
        ) as span:
            try:
                responses = self._clients[shard].wait_gets(
                    pending.local_id, len(requests)
                )
            except _SHARD_FAILURES:
                if breaker is not None:
                    breaker.record_failure()
                self.stats.get_timeouts += 1
                span.mark("timeout")
        if responses is None:
            out: list[Message] = []
            for request in requests:
                response = self._route_get(request, skip={shard})
                if response.found:
                    self.stats.failovers += 1
                    self.tracer.event("router.failover", clock=self.clock)
                out.append(response)
            return out
        if breaker is not None:
            breaker.record_success()
        self.stats.gets_routed += len(requests)
        out = []
        for request, response in zip(requests, responses):
            if not isinstance(response, GetResponse):
                raise ProtocolError(
                    f"shard {shard!r} answered GET with {type(response).__name__}"
                )
            if response.found:
                out.append(response)
            else:
                self.stats.gets_routed -= 1  # _route_get_after_miss recounts
                out.append(self._route_get_after_miss(request, shard))
        return out

    def plan_puts(self, requests: list[PutRequest]) -> list[list[int]]:
        """Partition PUT indices by primary owner shard.

        Like :meth:`plan_gets`, each group's copies ship as one channel
        record per owner shard instead of one record per item, so a
        round of N replicated PUTs costs O(shards) records.  Items with
        no live owner form their own group (answered without touching
        the wire)."""
        groups: dict[str, list[int]] = {}
        orphans: list[int] = []
        for i, request in enumerate(requests):
            owners = self._write_owners(request.tag)
            if owners:
                groups.setdefault(owners[0], []).append(i)
            else:
                orphans.append(i)
        out = [indices for _, indices in sorted(groups.items())]
        out.extend([i] for i in orphans)
        return out

    def submit_puts(self, requests: list[PutRequest]) -> int:
        """Submit one :meth:`plan_puts` group: one batch record to every
        owner shard of the group's items; returns a router slot id for
        :meth:`wait_puts`."""
        requests = list(requests)
        self.stats.puts_routed += len(requests)
        owners_per_item = [self._write_owners(r.tag) for r in requests]
        pending = _PendingPutGroup(
            requests=requests,
            primaries=[owners[0] if owners else "" for owners in owners_per_item],
        )
        groups: dict[str, list[int]] = {}
        for i, owners in enumerate(owners_per_item):
            for k, shard in enumerate(owners):
                groups.setdefault(shard, []).append(i)
                if k:
                    self.stats.replica_puts += 1
        for shard, positions in sorted(groups.items()):
            breaker = self._breaker(shard)
            if breaker is not None and not breaker.allow():
                self.stats.circuit_skips += 1
                continue
            sub = [requests[p] for p in positions]
            with self.tracer.span(
                "router.shard_put", clock=self.clock, shard=shard,
                items=len(sub),
            ) as span:
                try:
                    local_id = self._clients[shard].submit_puts(sub)
                except _SHARD_FAILURES:
                    if breaker is not None:
                        breaker.record_failure()
                    self.stats.put_timeouts += 1
                    span.mark("timeout")
                    continue
            pending.subs.append((shard, local_id, positions))
        router_id = self._fresh_router_id()
        self._pipeline[router_id] = pending
        return router_id

    def wait_puts(self, router_id: int, n_items: int | None = None) -> list[Message]:
        """Settle one PUT group; per-item semantics match
        ``call_batch``: the primary's verdict is authoritative where it
        is live, replica verdicts are absorbed into router counters, and
        items no live owner answered come back ``accepted=False`` with a
        ``no live owner`` reason."""
        pending = self._pipeline.pop(router_id, None)
        if not isinstance(pending, _PendingPutGroup):
            if pending is not None:  # some other slot kind: put it back
                self._pipeline[router_id] = pending
            raise ProtocolError(
                f"router PUT group {router_id} was never submitted "
                "(or already waited on)"
            )
        requests = pending.requests
        if n_items is not None and n_items != len(requests):
            self._pipeline[router_id] = pending
            raise ProtocolError(
                f"router PUT group {router_id} has {len(requests)} item(s), "
                f"waiter expected {n_items}"
            )
        verdicts: list[Message | None] = [None] * len(requests)
        primary_seen = [False] * len(requests)
        for shard, local_id, positions in pending.subs:
            breaker = self._breaker(shard)
            items: list[Message] | None = None
            with self.tracer.span(
                "router.shard_put", clock=self.clock, shard=shard,
                items=len(positions),
            ) as span:
                try:
                    items = self._clients[shard].wait_puts(
                        local_id, len(positions)
                    )
                except _SHARD_FAILURES:
                    if breaker is not None:
                        breaker.record_failure()
                    self.stats.put_timeouts += 1
                    span.mark("timeout")
            if items is None:
                continue
            if breaker is not None:
                breaker.record_success()
            for p, item in zip(positions, items):
                if pending.primaries[p] == shard:
                    if verdicts[p] is not None:
                        self._count_replica_ack(verdicts[p])
                    verdicts[p] = item
                    primary_seen[p] = True
                elif verdicts[p] is None and not primary_seen[p]:
                    verdicts[p] = item
                else:
                    self._count_replica_ack(item)
        return [
            verdict if verdict is not None
            else PutResponse(accepted=False, reason=NO_LIVE_OWNER)
            for verdict in verdicts
        ]

    def wait(self, router_id: int) -> Message:
        """Settle one pipelined call; semantics match :meth:`call`.

        A GET whose primary failed while in flight fails over through
        the surviving replicas (read-repairing on a replica hit) and
        only reports ``no live owner`` when every owner is gone; a PUT's
        first live owner in ring order stays authoritative, the others'
        verdicts are absorbed as replica acks.
        """
        pending = self._pipeline.pop(router_id, None)
        if not isinstance(pending, _PendingCall):
            if pending is not None:  # a group slot: put it back
                self._pipeline[router_id] = pending
            raise ProtocolError(
                f"router call {router_id} was never submitted (or already waited on)"
            )
        if pending.kind == "get":
            return self._wait_get(pending)
        return self._wait_put(pending)

    def _wait_get(self, pending: _PendingCall) -> GetResponse:
        request = pending.request
        if pending.primary is None:
            # Nothing reached the wire at submit: route from scratch
            # (which re-counts the GET, so undo the submit-time count).
            self.stats.gets_routed -= 1
            return self._route_get(request)
        shard = pending.primary
        breaker = self._breaker(shard)
        response: Message | None = None
        with self.tracer.span(
            "router.shard_get", clock=self.clock, shard=shard
        ) as span:
            try:
                response = self._clients[shard].wait(pending.local_id)
            except _SHARD_FAILURES:
                if breaker is not None:
                    breaker.record_failure()
                self.stats.get_timeouts += 1
                span.mark("timeout")
        if response is None:
            self.stats.gets_routed -= 1
            fallback = self._route_get(request, skip={shard})
            if fallback.found:
                self.stats.failovers += 1
                self.tracer.event("router.failover", clock=self.clock)
            return fallback
        if breaker is not None:
            breaker.record_success()
        if not isinstance(response, GetResponse):
            raise ProtocolError(
                f"shard {shard!r} answered GET with {type(response).__name__}"
            )
        if response.found:
            return response
        # Primary live miss: consult the replicas, read-repairing the
        # primary on a replica hit (same as the synchronous path).
        self.stats.gets_routed -= 1
        return self._route_get_after_miss(request, shard)

    def _wait_put(self, pending: _PendingCall) -> Message:
        authoritative: Message | None = None
        for shard, local_id in pending.subs:
            breaker = self._breaker(shard)
            with self.tracer.span(
                "router.shard_put", clock=self.clock, shard=shard
            ) as span:
                try:
                    response = self._clients[shard].wait(local_id)
                except _SHARD_FAILURES:
                    if breaker is not None:
                        breaker.record_failure()
                    self.stats.put_timeouts += 1
                    span.mark("timeout")
                    continue
            if breaker is not None:
                breaker.record_success()
            if authoritative is None:
                # subs is in ring order: the first live owner is the
                # primary when it is up, else the first replica.
                authoritative = response
            else:
                self._count_replica_ack(response)
        if authoritative is None:
            raise NoLiveOwnerError(
                f"{NO_LIVE_OWNER} for tag {pending.request.tag[:8].hex()}"
            )
        return authoritative

    # -- batched calls ---------------------------------------------------------
    def call_batch(self, requests: list[Message]) -> list[Message]:
        requests = list(requests)
        if not requests:
            return []
        if all(isinstance(r, GetRequest) for r in requests):
            return self._route_batch_get(requests)
        if all(isinstance(r, PutRequest) for r in requests):
            return self._route_batch_put(requests)
        raise ProtocolError("call_batch needs a uniform list of GETs or PUTs")

    def _route_batch_get(self, requests: list[GetRequest]) -> list[Message]:
        """Split a GET batch per primary shard; rejoin in item order.

        A shard that fails its whole sub-batch does not poison the other
        shards' items: its items retry individually through their
        surviving replicas and, when none is live, come back as per-item
        ``found=False`` failures in their original positions.
        """
        n = len(requests)
        batch_span = self.tracer.span("router.batch_get", clock=self.clock, items=n)
        with batch_span:
            results: list[Message | None] = [None] * n
            groups: dict[str, list[int]] = {}
            for i, request in enumerate(requests):
                owners = self._read_owners(request.tag)
                if not owners:
                    self.stats.gets_routed += 1
                    self.stats.unavailable += 1
                    results[i] = GetResponse(found=False, reason=NO_LIVE_OWNER)
                    continue
                groups.setdefault(owners[0], []).append(i)
            for shard, indices in sorted(groups.items()):
                sub = [requests[i] for i in indices]
                with self.tracer.span(
                    "router.shard_get", clock=self.clock, shard=shard, items=len(sub)
                ) as shard_span:
                    try:
                        if len(sub) == 1:
                            responses = [self._call_shard(shard, sub[0])]
                        else:
                            responses = self._call_shard_batch(shard, sub)
                    except _SHARD_FAILURES:
                        # Whole sub-batch lost: route each item through its
                        # replicas (the primary is skipped — it just failed).
                        self.stats.get_timeouts += 1
                        shard_span.mark("timeout")
                        for i in indices:
                            response = self._route_get(requests[i], skip={shard})
                            if response.found:
                                # Served by a replica after the intended shard
                                # failed — a failover, same as the single path.
                                self.stats.failovers += 1
                                self.tracer.event("router.failover", clock=self.clock)
                            results[i] = response
                        continue
                self.stats.gets_routed += len(sub)
                for i, response in zip(indices, responses):
                    if not isinstance(response, GetResponse):
                        raise ProtocolError(
                            f"shard {shard!r} answered GET with {type(response).__name__}"
                        )
                    if response.found:
                        results[i] = response
                    else:
                        # Primary miss: fall through to the replicas (and
                        # read-repair the primary on a replica hit).
                        self.stats.gets_routed -= 1  # _route_get recounts it
                        results[i] = self._route_get_after_miss(requests[i], shard)
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            # A shard returned fewer responses than sub-batch items; the
            # zip above left gaps.  Surface it rather than shifting the
            # caller's correlation by silently dropping positions.
            raise ProtocolError(
                f"batch GET left {len(missing)} item(s) unanswered"
            )
        return results

    def _route_get_after_miss(
        self, request: GetRequest, missed_primary: str
    ) -> GetResponse:
        """Continue a GET past a live primary's miss: consult replicas,
        read-repair the primary if one of them hits."""
        self.stats.gets_routed += 1
        owners = [s for s in self._read_owners(request.tag) if s != missed_primary]
        if not owners:
            return GetResponse(found=False)
        missed_live = [missed_primary]
        timeouts = 0
        for shard in owners:
            with self.tracer.span(
                "router.shard_get", clock=self.clock, shard=shard
            ) as shard_span:
                try:
                    response = self._call_shard(shard, request)
                except _SHARD_FAILURES:
                    self.stats.get_timeouts += 1
                    timeouts += 1
                    shard_span.mark("timeout")
                    continue
            if not isinstance(response, GetResponse):
                raise ProtocolError(
                    f"shard {shard!r} answered GET with {type(response).__name__}"
                )
            if response.found:
                if timeouts:
                    self.stats.failovers += 1
                    self.tracer.event("router.failover", clock=self.clock,
                                      timeouts=timeouts)
                for miss in missed_live:
                    self._queue_read_repair(miss, request, response)
                return response
            missed_live.append(shard)
        return GetResponse(found=False)

    def _route_batch_put(self, requests: list[PutRequest]) -> list[Message]:
        """Write every item to all its owners; per-item verdicts rejoin
        in order, the primary's verdict authoritative where it is live."""
        n = len(requests)
        self.stats.puts_routed += n
        with self.tracer.span("router.batch_put", clock=self.clock, items=n):
            owners_per_item = [self._write_owners(r.tag) for r in requests]
            verdicts: list[Message | None] = [None] * n
            primary_seen = [False] * n
            groups: dict[str, list[int]] = {}
            for i, owners in enumerate(owners_per_item):
                for k, shard in enumerate(owners):
                    groups.setdefault(shard, []).append(i)
                    if k:
                        self.stats.replica_puts += 1
            for shard, indices in sorted(groups.items()):
                sub = [requests[i] for i in indices]
                with self.tracer.span(
                    "router.shard_put", clock=self.clock, shard=shard, items=len(sub)
                ) as shard_span:
                    try:
                        if len(sub) == 1:
                            responses = [self._call_shard(shard, sub[0])]
                        else:
                            responses = self._call_shard_batch(shard, sub)
                    except _SHARD_FAILURES:
                        self.stats.put_timeouts += 1
                        shard_span.mark("timeout")
                        continue
                for i, response in zip(indices, responses):
                    is_primary = owners_per_item[i] and owners_per_item[i][0] == shard
                    if is_primary:
                        if verdicts[i] is not None:
                            self._count_replica_ack(verdicts[i])
                        verdicts[i] = response
                        primary_seen[i] = True
                    elif verdicts[i] is None:
                        verdicts[i] = response
                    else:
                        self._count_replica_ack(response)
            out: list[Message] = []
            for i, verdict in enumerate(verdicts):
                if verdict is None:
                    out.append(PutResponse(accepted=False, reason=NO_LIVE_OWNER))
                else:
                    out.append(verdict)
            return out

    # -- one-way sends ---------------------------------------------------------
    def send_oneway(self, request: Message) -> int:
        if not isinstance(request, PutRequest):
            raise ProtocolError("one-way sends carry PUT requests")
        self.stats.puts_routed += 1
        router_id = self._fresh_router_id()
        keys: set[tuple[str, int]] = set()
        for index, shard in enumerate(self._write_owners(request.tag)):
            if index:
                self.stats.replica_puts += 1
            if not self._oneway_allowed(shard):
                continue  # breaker open: the PUT stays unacknowledged
            local_id = self._clients[shard].send_oneway(request)
            key = (shard, local_id)
            keys.add(key)
            self._single_by_key[key] = router_id
        self._single_keys[router_id] = keys
        return router_id

    def send_oneway_batch(self, requests: list[PutRequest]) -> int:
        requests = list(requests)
        router_id = self._fresh_router_id()
        self.stats.puts_routed += len(requests)
        owners_per_item = [self._write_owners(r.tag) for r in requests]
        pending = _PendingBatch(
            router_id=router_id,
            n_items=len(requests),
            primaries=[owners[0] if owners else "" for owners in owners_per_item],
        )
        groups: dict[str, list[int]] = {}
        for i, owners in enumerate(owners_per_item):
            for k, shard in enumerate(owners):
                groups.setdefault(shard, []).append(i)
                if k:
                    self.stats.replica_puts += 1
        for shard, indices in sorted(groups.items()):
            if not self._oneway_allowed(shard):
                continue  # breaker open: those items stay unacknowledged
            sub = [requests[i] for i in indices]
            if len(sub) == 1:
                local_id = self._clients[shard].send_oneway(sub[0])
            else:
                local_id = self._clients[shard].send_oneway_batch(sub)
            self._batch_by_key[(shard, local_id)] = (router_id, list(indices))
        self._batches[router_id] = pending
        return router_id

    # -- drain / correlation ---------------------------------------------------
    def drain_responses(self) -> list[Message]:
        """Drain every shard client, remap shard-local correlation ids to
        router ids, and emit at most one response per router id.

        Replica acks beyond the first, read-repair acks, and stale
        responses from revived shards are absorbed into router counters
        instead of reaching the runtime, whose PUT accounting therefore
        sees the cluster exactly as it would see one store.
        """
        out: list[Message] = []
        for shard in sorted(self._clients):
            for response in self._clients[shard].drain_responses():
                self._dispatch_drained(shard, response, out)
        return out

    def _dispatch_drained(
        self, shard: str, response: Message, out: list[Message]
    ) -> None:
        key = (shard, response.request_id)
        if key in self._absorb_keys:
            self._absorb_keys.discard(key)
            if isinstance(response, PutResponse) and response.accepted:
                self.stats.repair_acks += 1
            else:
                self.stats.repair_rejects += 1
            return
        if key in self._single_by_key:
            router_id = self._single_by_key.pop(key)
            self._single_keys[router_id].discard(key)
            if not self._single_keys[router_id]:
                del self._single_keys[router_id]
            if router_id in self._single_done:
                self._count_replica_ack(response)
                return
            self._single_done.add(router_id)
            out.append(with_request_id(response, router_id))
            return
        if key in self._batch_by_key:
            router_id, indices = self._batch_by_key.pop(key)
            pending = self._batches.get(router_id)
            if pending is None:
                return
            self._merge_batch_acks(pending, shard, indices, response)
            if (
                not pending.emitted
                and len(pending.verdicts) == pending.n_items
            ):
                pending.emitted = True
                out.append(
                    BatchPutResponse(
                        items=tuple(
                            pending.verdicts[i] for i in range(pending.n_items)
                        ),
                        request_id=router_id,
                    )
                )
            return
        # Unknown id: a stale response from a revived shard, or a reply
        # to a send the router already accounted.  Dropped by design.

    def _merge_batch_acks(
        self,
        pending: _PendingBatch,
        shard: str,
        indices: list[int],
        response: Message,
    ) -> None:
        if isinstance(response, BatchPutResponse):
            items: list[PutResponse | ErrorMessage] = list(response.items)
        elif isinstance(response, (PutResponse, ErrorMessage)):
            items = [response]
        else:
            return
        if len(items) != len(indices):
            return  # malformed: leave those items unacknowledged
        for i, item in zip(indices, items):
            if isinstance(item, ErrorMessage):
                # A per-shard failure verdict; rejected is the closest
                # per-item shape a merged batch response can carry.  The
                # reason stays machine-readable: errors.StoreError's code
                # plus the numeric wire code.
                item = PutResponse(
                    accepted=False, reason=f"store_error:{item.code}"
                )
            if pending.emitted or i in pending.primary_seen:
                self._count_replica_ack(item)
                continue
            if pending.primaries[i] == shard:
                if i in pending.verdicts:
                    self._count_replica_ack(pending.verdicts[i])
                pending.verdicts[i] = item
                pending.primary_seen.add(i)
            elif i in pending.verdicts:
                self._count_replica_ack(item)
            else:
                pending.verdicts[i] = item

    # -- observability ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Routing counters plus breaker states and the per-shard
        clients' retry/duplication counters, aggregated under canonical
        ``router.<metric>`` keys (``router.breaker.<shard>.state`` per
        breaker)."""
        snap = self.stats.snapshot()
        snap["router.retries"] = sum(
            c.retries for c in self._clients.values()
        )
        snap["router.backoff_seconds_total"] = sum(
            c.backoff_seconds_total for c in self._clients.values()
        )
        snap["router.records_rejected"] = sum(
            c.records_rejected for c in self._clients.values()
        )
        snap["router.duplicate_responses_dropped"] = sum(
            c.duplicates_dropped for c in self._clients.values()
        )
        snap["router.pipelined_submits"] = sum(
            c.submits for c in self._clients.values()
        )
        snap["router.pipeline_max_inflight"] = sum(
            c.max_inflight for c in self._clients.values()
        )
        snap["router.in_transition"] = int(self.in_transition)
        snap["router.circuit_opens"] = sum(
            b.opens for b in self._breakers.values()
        )
        snap["router.open_circuits"] = sum(
            1 for b in self._breakers.values() if b.state == OPEN
        )
        for shard in sorted(self._breakers):
            breaker = self._breakers[shard]
            snap[f"router.breaker.{shard}.state"] = breaker.state
            snap[f"router.breaker.{shard}.opens"] = breaker.opens
            snap[f"router.breaker.{shard}.skips"] = breaker.skips
        return snap
