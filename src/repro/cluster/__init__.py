"""Sharded ResultStore cluster: consistent-hash routing, replication,
and failover over the dedup tag space.

The paper's ResultStore is one service (Fig. 1).  This package scales it
out: a :class:`ShardRing` partitions the tag space across N independent
:class:`~repro.store.resultstore.ResultStore` shards (each on its own
simulated machine), a :class:`StoreCluster` runs them, and a
:class:`ClusterRouter` gives every application's DedupRuntime the
single-store call surface while routing, replicating, and failing over
underneath.  Topology changes stream through a :class:`RangeMigrator`
behind a dual-ownership window, so the cluster grows and shrinks while
serving.  See DESIGN.md ("Cluster topology") for what stays faithful
to the paper per shard and what is an extension beyond it.
"""

from .cluster import ClusterConfig, ShardNode, StoreCluster
from .migration import (
    MigrationConfig,
    MigrationReport,
    RangeMigrator,
    migrate_for_join,
    migrate_for_leave,
    rebalance,
    transfer_entries,
)
from .ring import RING_SIZE, MigrationRange, ShardRing, TopologyPlan, tag_point
from .router import NO_LIVE_OWNER, ClusterRouter, RouterStats

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "MigrationConfig",
    "MigrationRange",
    "MigrationReport",
    "NO_LIVE_OWNER",
    "RING_SIZE",
    "RangeMigrator",
    "RouterStats",
    "ShardNode",
    "ShardRing",
    "StoreCluster",
    "TopologyPlan",
    "migrate_for_join",
    "migrate_for_leave",
    "rebalance",
    "tag_point",
    "transfer_entries",
]
