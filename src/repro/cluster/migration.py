"""Tag-range migration between shards over attested channels.

When the ring changes, ownership of contiguous tag ranges moves between
shards.  The ciphertexts follow over the same mutually attested
store-to-store channel the master-sync path uses
(:func:`repro.store.sync.attested_store_channel`): the source collects
the affected ``(tag, r, [k], [res])`` tuples inside its enclave, seals
them into one channel payload, and the destination ingests them inside
its own enclave.  Nothing decryptable ever exists outside an enclave —
migration moves *protected* results, so a compromised wire or host
learns exactly what it learns from normal PUT traffic.

Two migration modes exist:

* **Streaming** (:class:`RangeMigrator`) — the online path behind
  ``Session.add_shard()``/``remove_shard()``.  The pending ring is
  computed up front (:meth:`~repro.cluster.ring.ShardRing.begin_join` /
  ``begin_leave``), and entries move range by range in bounded batches
  while a *dual-ownership window* keeps every tag readable from its old
  owners (with GET failover to the new ones) and writable to its new
  owners.  Each shard logs sealed ``MIGRATE_BEGIN`` /
  ``MIGRATE_RANGE_COMMIT`` / ``MIGRATE_END`` marks into its durable WAL,
  and every batch is durably ingested (commit-before-ack) at the
  destination *before* the source logs its commit mark and discards —
  so a power failure on either side mid-range recovers to a consistent
  ownership map with no loss and no resurrection, and re-running a range
  is idempotent (ingestion dedupes on tag).  With a
  :class:`~repro.engine.PipelineEngine` attached, each batch transfer is
  accounted as a background lane overlapping foreground GET/PUT rounds.

* **Stop-the-world** (:func:`migrate_for_join` / :func:`migrate_for_leave`)
  — the legacy blocking copy, kept as the benchmark baseline the
  streaming path is measured against (``repro.bench migrate``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .ring import MigrationRange, TopologyPlan, tag_point
from ..durable.wal import (
    MIGRATE_DEST,
    MIGRATE_SOURCE,
    REC_MIGRATE_BEGIN,
    REC_MIGRATE_COMMIT,
    REC_MIGRATE_END,
)
from ..errors import MigrationError, MigrationIngestError, MigrationStateError
from ..report import ReportMixin
from ..store.resultstore import ResultStore
from ..store.sync import _decode_entries, _encode_entries, attested_store_channel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import StoreCluster


@dataclass(frozen=True)
class MigrationConfig:
    """Streaming knobs for one resharding run."""

    #: Entries shipped per attested batch payload.  Bounds the work (and
    #: the foreground stall, when no engine overlaps it) of one step.
    batch_entries: int = 32


@dataclass(frozen=True)
class MigrationReport(ReportMixin):
    """Outcome of one resharding round."""

    moved: int = 0       # entries newly ingested at their new owners
    duplicates: int = 0  # offered entries the destination already held
    dropped: int = 0     # entries removed from sources that lost ownership
    transfers: int = 0   # attested channel payloads shipped
    bytes_moved: int = 0 # ciphertext bytes that crossed machines
    ranges_moved: int = 0  # ring ranges whose owner set changed
    batches: int = 0       # bounded streaming batches shipped


def transfer_entries(
    cluster: "StoreCluster",
    source: ResultStore,
    dest: ResultStore,
    entries: list[tuple[bytes, bytes, bytes, bytes]],
    enforce_capacity: bool = False,
) -> tuple[int, int, int]:
    """Ship ``entries`` from ``source`` to ``dest`` as one attested
    payload; returns (ingested, duplicates, payload bytes).

    With ``enforce_capacity`` the destination refuses (raises
    :class:`~repro.errors.MigrationIngestError`) rather than evicting
    foreground entries to make room — a full target shard must fail the
    migration, not silently shed other tenants' results.
    """
    if not entries:
        return 0, 0, 0
    src_ep, dst_ep = attested_store_channel(cluster.attestation, source, dest)
    with source.enclave.ecall("migrate_seal"):
        payload = src_ep.protect(_encode_entries(entries))
    source.platform.clock.charge_network(len(payload))
    moved = duplicates = 0
    with dest.enclave.ecall("migrate_ingest", in_bytes=len(payload)):
        for tag, challenge, wrapped_key, sealed in _decode_entries(dst_ep.unprotect(payload)):
            if enforce_capacity and tag not in dest._dict and not dest.can_accept(len(sealed)):
                raise MigrationIngestError(
                    f"target shard at {dest.address!r} is full; "
                    f"refusing migrated batch"
                )
            if dest.ingest_entry(tag, challenge, wrapped_key, sealed):
                moved += 1
            else:
                duplicates += 1
    return moved, duplicates, len(payload)


class RangeMigrator:
    """Streams one topology transition (join, leave, or a whole
    :class:`~repro.cluster.ring.TopologyPlan`), range by range.

    Lifecycle: :meth:`start` opens the dual-ownership window (and logs
    ``MIGRATE_BEGIN`` on every participant), :meth:`step` hands off one
    pending range (returns False when every pending range is blocked on
    a dead shard — retry after healing), :meth:`finish` closes the
    window once all ranges are committed.  :meth:`run` drives the whole
    sequence.  :meth:`abort` restores the previous ownership map.

    A join or leave is just a one-change plan internally; ``action ==
    "plan"`` batches any mix of joins, leaves, and reweights into the
    same single window, and every range hand-off (commit-before-discard,
    per-participant ``REC_MIGRATE_*`` marks) is already generic over
    ranges whose sources/dests span several changed shards.
    """

    def __init__(
        self,
        cluster: "StoreCluster",
        action: str,
        shard_id: str,
        config: MigrationConfig | None = None,
        engine=None,
        weight: float = 1.0,
        plan: TopologyPlan | None = None,
    ):
        if action not in ("join", "leave", "plan"):
            raise MigrationError(f"unknown migration action {action!r}")
        if action == "plan":
            if plan is None:
                raise MigrationError("plan migration needs a TopologyPlan")
            plan.validate()
            if any(sid is None for sid, _ in plan.joins):
                raise MigrationError(
                    "plan joins must have concrete shard ids by migration "
                    "time (StoreCluster.begin_plan assigns them)"
                )
            shard_id = plan.label()
        elif action == "join":
            plan = TopologyPlan(joins=((shard_id, weight),))
        else:
            plan = TopologyPlan(leaves=(shard_id,))
        self.cluster = cluster
        self.action = action
        self.shard_id = shard_id
        self.plan = plan
        self.joiners = frozenset(sid for sid, _ in plan.joins)
        self.leavers = frozenset(plan.leaves)
        self.config = config or MigrationConfig()
        self.engine = engine
        self.migration_id = f"{action}/{shard_id}/{cluster.next_migration_seq()}"
        self.ranges: tuple[MigrationRange, ...] = ()
        self.started = False
        self.finished = False
        self._done: set[int] = set()
        self._participants: tuple[str, ...] = ()
        # Counters folded into the final MigrationReport.
        self.moved = 0
        self.duplicates = 0
        self.dropped = 0
        self.transfers = 0
        self.bytes_moved = 0
        self.batches = 0
        #: Batches shipped without an engine background lane — each one
        #: is a foreground stall (the caller blocked for the transfer).
        self.stalled_batches = 0

    # -- lifecycle ------------------------------------------------------------
    @property
    def factor(self) -> int:
        return self.cluster.config.replication_factor

    def start(self) -> tuple[MigrationRange, ...]:
        """Open the dual-ownership window; returns the moved ranges."""
        if self.started:
            raise MigrationStateError("migration already started")
        self.ranges = self.cluster.ring.begin_plan(self.plan, self.factor)
        self.started = True
        self._participants = tuple(sorted(
            {s for rng in self.ranges for s in (*rng.sources, *rng.dests)}
        ))
        gaining = {
            d for rng in self.ranges for d in rng.dests if d not in rng.sources
        }
        for sid in self._participants:
            role = MIGRATE_DEST if sid in gaining else MIGRATE_SOURCE
            self._store(sid).note_migrate(
                REC_MIGRATE_BEGIN, self.migration_id,
                peer=self.shard_id, role=role,
            )
        return self.ranges

    def pending_ranges(self) -> tuple[MigrationRange, ...]:
        return tuple(r for r in self.ranges if r.index not in self._done)

    def step(self) -> bool:
        """Hand off the first movable pending range.

        Returns True when a range was committed; False when every
        pending range is blocked (a destination, or every source, of
        each is unreachable) — the window stays open and the step can be
        retried after the cluster heals.
        """
        if not self.started or self.finished:
            raise MigrationStateError("migration is not streaming")
        for rng in self.ranges:
            if rng.index in self._done:
                continue
            if self._step_one(rng):
                return True
        return False

    def _step_one(self, rng: MigrationRange) -> bool:
        """Hand off one specific pending range (False when blocked)."""
        if self.engine is not None:
            # Overlap accounting: the whole hand-off (collect, ship,
            # marks, discard) charges the shard clocks normally, and
            # the engine folds the cost into the next foreground
            # round's makespan as one extra (background) lane.
            with self.engine.background():
                return self._try_range(rng)
        return self._try_range(rng)

    def overlap_steps(self, rounds_left: int = 1) -> int:
        """Advance the hand-off between two foreground rounds.

        Paces the pending ranges across the caller's ``rounds_left``
        remaining foreground rounds so the window drains steadily
        instead of piling up at the end (a pile-up cannot overlap the
        foreground: background work is bounded below by itself, so a
        front-loaded hand-off lands on the critical path in full).  The
        per-gap intrusion is capped by the attached engine's background
        budget (:meth:`PipelineEngine.background_budget`): one slot by
        default, widened by every depth slot the adaptive controller
        capped off and yielded to this hand-off — the foreground rounds
        got smaller under the migration cap, and the freed slots belong
        here.  A planned window spanning several gaining shards gets a
        proportionally wider base budget (one slot per distinct live
        destination among the pending ranges — transfers to distinct
        machines overlap each other, not just the foreground).  Demand
        above the cap is deferred (``finish`` drains it serially),
        keeping the foreground bound intact.  Returns the number of
        ranges committed; stops early when every pending range is
        blocked on a dead shard.
        """
        pending_ranges = self.pending_ranges()
        pending = len(pending_ranges)
        if not pending:
            return 0
        budget = max(1, -(-pending // max(1, rounds_left)))
        if self.engine is not None and hasattr(self.engine, "background_budget"):
            gaining = {
                d
                for rng in pending_ranges
                for d in rng.dests
                if d not in rng.sources and self.cluster.shard_alive(d)
            }
            budget = min(
                budget,
                max(1, self.engine.background_budget(max(1, len(gaining)))),
            )
        # Spread this gap's picks across distinct gaining shards: the
        # per-gap intrusion then lands on several (mostly idle) joiner
        # clocks instead of piling onto one, so the engine can fold it
        # under the foreground round's busiest shard.
        committed = 0
        used_dests: set[str] = set()
        while committed < budget:
            pending_now = self.pending_ranges()
            if not pending_now:
                break
            ordered = sorted(
                pending_now,
                key=lambda rng: (
                    len({d for d in rng.dests if d not in rng.sources}
                        & used_dests),
                    rng.index,
                ),
            )
            picked = None
            for rng in ordered:
                if self._step_one(rng):
                    picked = rng
                    break
            if picked is None:
                break
            used_dests.update(
                d for d in picked.dests if d not in picked.sources
            )
            committed += 1
        return committed

    def run(self) -> MigrationReport:
        """Stream every range and close the window."""
        if not self.started:
            self.start()
        while self.pending_ranges():
            if not self.step():
                blocked = len(self.pending_ranges())
                raise MigrationError(
                    f"migration {self.migration_id} blocked: no live "
                    f"source/destination for {blocked} pending range(s)"
                )
        return self.finish()

    def finish(self) -> MigrationReport:
        """Adopt the pending ring, sweep stale copies, log MIGRATE_END."""
        if not self.started or self.finished:
            raise MigrationStateError("migration is not streaming")
        if self.pending_ranges():
            raise MigrationStateError(
                f"{len(self.pending_ranges())} range(s) still pending"
            )
        cluster = self.cluster
        cluster.ring.finish()
        # Stale sweep: any live shard that kept copies it no longer owns
        # (deferred discards from dead-at-commit sources, pre-existing
        # over-replication) drops them now, under the settled ring.
        factor = self.factor
        for sid, node in sorted(cluster.shards.items()):
            if sid in self.leavers:
                continue  # a leaver goes dark with its state in place
            if not cluster.shard_alive(sid):
                continue
            stale = node.store.tags_matching(
                lambda tag, s=sid: s not in cluster.ring.owners(tag, factor)
            )
            self.dropped += node.store.discard_tags(stale)
        for sid in self._participants:
            if sid in cluster.shards and cluster.shard_alive(sid):
                self._store(sid).note_migrate(
                    REC_MIGRATE_END, self.migration_id, peer=self.shard_id
                )
        self.finished = True
        for sid in sorted(self.leavers):
            cluster._complete_leave(sid)
        return self.report()

    def abort(self) -> None:
        """Drop the pending ring and clean partially migrated copies.

        Ranges that already committed have had their source copies
        discarded, so their entries are first re-homed from the live
        destinations back to the old owners — only then is the pending
        ring dropped and every copy the restored ring disowns swept."""
        if not self.started or self.finished:
            raise MigrationStateError("migration is not streaming")
        cluster = self.cluster
        for rng in self.ranges:
            if rng.index not in self._done:
                continue
            back_home = [s for s in rng.sources if s not in rng.dests]
            if not back_home:
                continue
            collected: dict[bytes, tuple[str, tuple]] = {}
            for sid in rng.dests:
                if sid not in cluster.shards or not cluster.shard_alive(sid):
                    continue
                entries = self._store(sid).collect_entries(
                    lambda tag, r=rng: r.contains(tag_point(tag))
                )
                for item in entries:
                    collected.setdefault(item[0], (sid, item))
            per_source: dict[str, list[tuple]] = {}
            for src, item in collected.values():
                per_source.setdefault(src, []).append(item)
            for sid in back_home:
                if not cluster.shard_alive(sid):
                    continue
                dest_store = self._store(sid)
                for src in sorted(per_source):
                    transfer_entries(
                        cluster, self._store(src), dest_store,
                        per_source[src],
                    )
        # finish() may have settled the ring before raising (e.g. the
        # stale sweep hit a fault after ring.finish()); abort() is then
        # cleanup-only, and calling abort_transition() on the settled
        # ring would raise and mask the original error.
        if cluster.ring.in_transition:
            cluster.ring.abort_transition()
        factor = self.factor
        for sid in self._participants:
            if sid not in cluster.shards or not cluster.shard_alive(sid):
                continue
            if sid not in cluster.ring:
                continue  # an aborted joiner is despawned by the cluster
            stale = cluster.shards[sid].store.tags_matching(
                lambda tag, s=sid: s not in cluster.ring.owners(tag, factor)
            )
            self.dropped += cluster.shards[sid].store.discard_tags(stale)
            self._store(sid).note_migrate(
                REC_MIGRATE_END, self.migration_id, peer=self.shard_id
            )
        self.finished = True

    def report(self) -> MigrationReport:
        return MigrationReport(
            moved=self.moved,
            duplicates=self.duplicates,
            dropped=self.dropped,
            transfers=self.transfers,
            bytes_moved=self.bytes_moved,
            ranges_moved=len(self.ranges),
            batches=self.batches,
        )

    # -- one range ------------------------------------------------------------
    def _try_range(self, rng: MigrationRange) -> bool:
        cluster = self.cluster
        new_dests = [d for d in rng.dests if d not in rng.sources]
        # A dead destination blocks the range: its commit mark (and the
        # entries themselves) must be durable there before the sources
        # may discard.
        if any(not cluster.shard_alive(d) for d in new_dests):
            return False
        if new_dests:
            live_sources = [s for s in rng.sources if cluster.shard_alive(s)]
            if not live_sources:
                return False
            # Collect once per live source (replicas may hold different
            # subsets after past faults); first copy of each tag wins.
            collected: dict[bytes, tuple[str, tuple]] = {}
            for sid in live_sources:
                entries = self._store(sid).collect_entries(
                    lambda tag: rng.contains(tag_point(tag))
                )
                for item in entries:
                    collected.setdefault(item[0], (sid, item))
            for dest in new_dests:
                self._ship_all(rng, dest, collected)
            for dest in new_dests:
                self._store(dest).note_migrate(
                    REC_MIGRATE_COMMIT, self.migration_id,
                    rng.lo, rng.hi, peer=self.shard_id, role=MIGRATE_DEST,
                )
        # Sources that lose ownership of this range discard their copies
        # — strictly after the destinations' durable commit marks, so a
        # crash at any interleaving loses nothing.
        for sid in rng.sources:
            if sid in rng.dests:
                continue
            if not cluster.shard_alive(sid):
                continue  # swept at finish() if it comes back
            store = self._store(sid)
            store.note_migrate(
                REC_MIGRATE_COMMIT, self.migration_id,
                rng.lo, rng.hi, peer=self.shard_id, role=MIGRATE_SOURCE,
            )
            stale = store.tags_matching(lambda tag: rng.contains(tag_point(tag)))
            self.dropped += store.discard_tags(stale)
        cluster.ring.commit_range(rng.index)
        self._done.add(rng.index)
        return True

    def _ship_all(
        self, rng: MigrationRange, dest: str, collected: dict
    ) -> None:
        """Send one range's entries to one destination in bounded
        batches, grouped per source shard (each batch is one attested
        source→dest payload)."""
        dest_store = self._store(dest)
        per_source: dict[str, list[tuple]] = {}
        for sid, item in collected.values():
            per_source.setdefault(sid, []).append(item)
        size = self.config.batch_entries
        for sid in sorted(per_source):
            items = per_source[sid]
            source_store = self._store(sid)
            for start in range(0, len(items), size):
                batch = items[start:start + size]
                moved, duplicates, payload = self._ship(
                    source_store, dest_store, batch
                )
                self.moved += moved
                self.duplicates += duplicates
                self.bytes_moved += payload
                self.transfers += 1
                self.batches += 1

    def _ship(self, source_store, dest_store, batch) -> tuple[int, int, int]:
        if self.engine is None:
            # No engine to overlap against: the batch runs on the
            # foreground's critical path.
            self.stalled_batches += 1
        return transfer_entries(
            self.cluster, source_store, dest_store, batch,
            enforce_capacity=True,
        )

    def _store(self, shard_id: str) -> ResultStore:
        return self.cluster.shards[shard_id].store


def rebalance(cluster: "StoreCluster") -> MigrationReport:
    """Anti-entropy pass under the settled ring: push every entry to the
    owners that miss it, then drop copies from shards that do not own
    them.  Safe to run any time (idempotent); repairs placement drift
    left by crashes, deferred discards, or replicas that were dead
    during a migration."""
    if cluster.ring.in_transition:
        raise MigrationStateError("cannot rebalance mid-migration")
    factor = cluster.config.replication_factor
    moved = duplicates = dropped = transfers = bytes_moved = 0
    for sid, node in sorted(cluster.shards.items()):
        if not cluster.shard_alive(sid):
            continue
        for dest_id in cluster.ring.shards:
            if dest_id == sid or not cluster.shard_alive(dest_id):
                continue
            dest = cluster.shards[dest_id]
            outgoing = node.store.collect_entries(
                lambda tag, d=dest_id: (
                    d in cluster.ring.owners(tag, factor)
                    and not dest.store.contains(tag)
                )
            )
            if not outgoing:
                continue
            m, d, b = transfer_entries(cluster, node.store, dest.store, outgoing)
            moved += m
            duplicates += d
            bytes_moved += b
            transfers += 1
        stale = node.store.tags_matching(
            lambda tag, s=sid: s not in cluster.ring.owners(tag, factor)
        )
        dropped += node.store.discard_tags(stale)
    return MigrationReport(
        moved=moved, duplicates=duplicates, dropped=dropped,
        transfers=transfers, bytes_moved=bytes_moved,
    )


def migrate_for_join(cluster: "StoreCluster", new_id: str) -> MigrationReport:
    """Stop-the-world rebalance after ``new_id`` joined the ring (already
    a member).  Kept as the blocking baseline ``repro.bench migrate``
    compares the streaming path against.

    Every incumbent sends the newcomer the entries whose owner set now
    includes it, then discards entries it no longer owns at all.  The
    drop runs *after* the copy, so ownership never dips below the
    replication target mid-migration.
    """
    new_node = cluster.shards[new_id]
    factor = cluster.config.replication_factor
    moved = duplicates = dropped = transfers = bytes_moved = 0
    for shard_id, node in sorted(cluster.shards.items()):
        if shard_id == new_id:
            continue
        outgoing = node.store.collect_entries(
            lambda tag: new_id in cluster.ring.owners(tag, factor)
        )
        if outgoing:
            m, d, b = transfer_entries(cluster, node.store, new_node.store, outgoing)
            moved += m
            duplicates += d
            bytes_moved += b
            transfers += 1
        stale = node.store.tags_matching(
            lambda tag, sid=shard_id: sid not in cluster.ring.owners(tag, factor)
        )
        dropped += node.store.discard_tags(stale)
    return MigrationReport(
        moved=moved, duplicates=duplicates, dropped=dropped,
        transfers=transfers, bytes_moved=bytes_moved,
    )


def migrate_for_leave(cluster: "StoreCluster", leaving_id: str) -> MigrationReport:
    """Stop-the-world drain of ``leaving_id`` before removal (legacy
    baseline; the streaming path is :class:`RangeMigrator`).

    Ownership is computed on a copy of the ring *without* the leaver, so
    every entry lands on the shards that will own it afterwards.  The
    leaver's state is left in place — it goes dark immediately after, so
    dropping is moot (and keeping it models a crash-after-drain safely).
    """
    leaving = cluster.shards[leaving_id]
    future_ring = cluster.ring._clone()
    future_ring.remove_shard(leaving_id)
    factor = cluster.config.replication_factor
    moved = duplicates = transfers = bytes_moved = 0
    for dest_id in future_ring.shards:
        dest = cluster.shards[dest_id]
        outgoing = leaving.store.collect_entries(
            lambda tag, d=dest_id: d in future_ring.owners(tag, factor)
        )
        if not outgoing:
            continue
        m, d, b = transfer_entries(cluster, leaving.store, dest.store, outgoing)
        moved += m
        duplicates += d
        bytes_moved += b
        transfers += 1
    return MigrationReport(
        moved=moved, duplicates=duplicates, dropped=0,
        transfers=transfers, bytes_moved=bytes_moved,
    )
