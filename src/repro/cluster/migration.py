"""Tag-range migration between shards over attested channels.

When the ring changes, ownership of contiguous tag ranges moves between
shards.  The ciphertexts follow over the same mutually attested
store-to-store channel the master-sync path uses
(:func:`repro.store.sync.attested_store_channel`): the source collects
the affected ``(tag, r, [k], [res])`` tuples inside its enclave, seals
them into one channel payload, and the destination ingests them inside
its own enclave.  Nothing decryptable ever exists outside an enclave —
migration moves *protected* results, so a compromised wire or host
learns exactly what it learns from normal PUT traffic.

Join: every incumbent pushes the slices the newcomer now owns, then
drops entries it no longer owns under the (wider) ownership set.  Leave:
the departing shard pushes each of its entries to that tag's remaining
owners before going dark.  Both directions are idempotent — ingestion
dedupes on tag, exactly like the master-store sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..store.resultstore import ResultStore
from ..store.sync import _decode_entries, _encode_entries, attested_store_channel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import StoreCluster


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one resharding round."""

    moved: int = 0       # entries newly ingested at their new owners
    duplicates: int = 0  # offered entries the destination already held
    dropped: int = 0     # entries removed from sources that lost ownership
    transfers: int = 0   # attested channel payloads shipped
    bytes_moved: int = 0 # ciphertext bytes that crossed machines


def transfer_entries(
    cluster: "StoreCluster",
    source: ResultStore,
    dest: ResultStore,
    entries: list[tuple[bytes, bytes, bytes, bytes]],
) -> tuple[int, int, int]:
    """Ship ``entries`` from ``source`` to ``dest`` as one attested
    payload; returns (ingested, duplicates, payload bytes)."""
    if not entries:
        return 0, 0, 0
    src_ep, dst_ep = attested_store_channel(cluster.attestation, source, dest)
    with source.enclave.ecall("migrate_seal"):
        payload = src_ep.protect(_encode_entries(entries))
    source.platform.clock.charge_network(len(payload))
    moved = duplicates = 0
    with dest.enclave.ecall("migrate_ingest", in_bytes=len(payload)):
        for tag, challenge, wrapped_key, sealed in _decode_entries(dst_ep.unprotect(payload)):
            if dest.ingest_entry(tag, challenge, wrapped_key, sealed):
                moved += 1
            else:
                duplicates += 1
    return moved, duplicates, len(payload)


def migrate_for_join(cluster: "StoreCluster", new_id: str) -> MigrationReport:
    """Rebalance after ``new_id`` joined the ring (already a member).

    Every incumbent sends the newcomer the entries whose owner set now
    includes it, then discards entries it no longer owns at all.  The
    drop runs *after* the copy, so ownership never dips below the
    replication target mid-migration.
    """
    new_node = cluster.shards[new_id]
    factor = cluster.config.replication_factor
    moved = duplicates = dropped = transfers = bytes_moved = 0
    for shard_id, node in sorted(cluster.shards.items()):
        if shard_id == new_id:
            continue
        outgoing = node.store.collect_entries(
            lambda tag: new_id in cluster.ring.owners(tag, factor)
        )
        if outgoing:
            m, d, b = transfer_entries(cluster, node.store, new_node.store, outgoing)
            moved += m
            duplicates += d
            bytes_moved += b
            transfers += 1
        stale = node.store.tags_matching(
            lambda tag, sid=shard_id: sid not in cluster.ring.owners(tag, factor)
        )
        dropped += node.store.discard_tags(stale)
    return MigrationReport(
        moved=moved, duplicates=duplicates, dropped=dropped,
        transfers=transfers, bytes_moved=bytes_moved,
    )


def migrate_for_leave(cluster: "StoreCluster", leaving_id: str) -> MigrationReport:
    """Drain ``leaving_id`` before it is removed from the ring.

    Ownership is computed on a copy of the ring *without* the leaver, so
    every entry lands on the shards that will own it afterwards.  The
    leaver's state is left in place — it goes dark immediately after, so
    dropping is moot (and keeping it models a crash-after-drain safely).
    """
    import copy

    leaving = cluster.shards[leaving_id]
    future_ring = copy.deepcopy(cluster.ring)
    future_ring.remove_shard(leaving_id)
    factor = cluster.config.replication_factor
    moved = duplicates = transfers = bytes_moved = 0
    for dest_id in future_ring.shards:
        dest = cluster.shards[dest_id]
        outgoing = leaving.store.collect_entries(
            lambda tag, d=dest_id: d in future_ring.owners(tag, factor)
        )
        if not outgoing:
            continue
        m, d, b = transfer_entries(cluster, leaving.store, dest.store, outgoing)
        moved += m
        duplicates += d
        bytes_moved += b
        transfers += 1
    return MigrationReport(
        moved=moved, duplicates=duplicates, dropped=0,
        transfers=transfers, bytes_moved=bytes_moved,
    )
