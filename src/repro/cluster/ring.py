"""Consistent hashing over the dedup tag space.

Tags ``t = Hash(func, m)`` (§IV-A) are outputs of a cryptographic hash,
so they land uniformly on the ring by construction — the ring position
of a tag is simply its first eight bytes read as an integer.  Shards are
placed at pseudo-random points via *virtual nodes*: each shard owns many
points, which smooths the per-shard load imbalance from O(1) placement
variance down to O(1/sqrt(vnodes)) and lets a joining shard take small
slices from every incumbent instead of one large slice from a single
neighbour (the PM-Dedup-style partitioning of secure-dedup state).

The ring is pure bookkeeping — no I/O, no enclave state — so both the
client-side router and the server-side cluster share one implementation
and always agree on ownership.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..crypto.hashes import sha256
from ..errors import MigrationInProgressError, MigrationStateError, SpeedError

RING_BITS = 64
RING_SIZE = 1 << RING_BITS


@dataclass(frozen=True)
class MigrationRange:
    """One contiguous slice of the ring whose owner set changes in an
    in-flight topology transition.

    The interval is ``(lo, hi]`` in ring-point space; ``lo > hi`` means
    the range wraps through zero.  ``sources`` are the owners under the
    current ring, ``dests`` the owners under the pending ring.
    """

    index: int
    lo: int
    hi: int
    sources: tuple[str, ...]
    dests: tuple[str, ...]

    def contains(self, point: int) -> bool:
        if self.lo < self.hi:
            return self.lo < point <= self.hi
        return point > self.lo or point <= self.hi

    @property
    def width(self) -> int:
        return (self.hi - self.lo) % RING_SIZE


def tag_point(tag: bytes) -> int:
    """Ring position of a tag: its leading 8 bytes (tags are uniform)."""
    if len(tag) < 8:
        raise SpeedError("tag too short to place on the ring")
    return int.from_bytes(tag[:8], "big")


def _vnode_point(shard_id: str, index: int) -> int:
    digest = sha256(b"speed/ring/" + shard_id.encode() + b"/" + index.to_bytes(4, "big"))
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent-hash ring mapping tag points to shard ids."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise SpeedError("a shard needs at least one virtual node")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # shard id at the same index
        self._shards: set[str] = set()
        # Dual-ownership transition overlay (None when the ring is settled).
        self._next: ShardRing | None = None
        self._ranges: tuple[MigrationRange, ...] = ()
        self._committed: set[int] = set()

    # -- membership -----------------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        if self._next is not None:
            raise MigrationStateError(
                "ring is mid-transition; finish or abort the open migration first"
            )
        if shard_id in self._shards:
            raise SpeedError(f"shard {shard_id!r} already on the ring")
        for i in range(self.vnodes):
            point = _vnode_point(shard_id, i)
            idx = bisect.bisect_left(self._points, point)
            # sha256 collisions across distinct (shard, index) pairs are
            # cryptographically impossible; an equal point would mean a
            # duplicate registration.
            self._points.insert(idx, point)
            self._owners.insert(idx, shard_id)
        self._shards.add(shard_id)

    def remove_shard(self, shard_id: str) -> None:
        if self._next is not None:
            raise MigrationStateError(
                "ring is mid-transition; finish or abort the open migration first"
            )
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != shard_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._shards.remove(shard_id)

    # -- ownership ------------------------------------------------------------
    def owners(self, tag: bytes, n: int = 1) -> list[str]:
        """The ``n`` distinct shards responsible for ``tag``: the primary
        (first vnode at or after the tag's point, wrapping) followed by
        the next ``n - 1`` distinct successors clockwise.

        ``n`` is clamped to the shard count, so asking for replication
        factor 3 on a 2-shard ring degrades gracefully to both shards.
        """
        return self._owners_at(tag_point(tag), n)

    def _owners_at(self, point: int, n: int) -> list[str]:
        if not self._shards:
            raise SpeedError("ring has no shards")
        n = max(1, min(n, len(self._shards)))
        start = bisect.bisect_left(self._points, point)
        out: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    def primary(self, tag: bytes) -> str:
        return self.owners(tag, 1)[0]

    # -- dual-ownership transitions -------------------------------------------
    #
    # A topology change opens a *transition*: the pending ring is computed
    # up front, the slices whose owner set differs become MigrationRange
    # entries, and until a range is committed its tags are readable from
    # the old owners (with failover to the new ones) while writes already
    # land on the pending owners.  finish() swaps the pending ring in once
    # every range has been committed.
    @property
    def in_transition(self) -> bool:
        return self._next is not None

    @property
    def pending_shards(self) -> tuple[str, ...]:
        """Shard membership of the pending ring (settled ring when idle)."""
        return self._next.shards if self._next is not None else self.shards

    def begin_join(self, shard_id: str, replication: int = 1) -> tuple[MigrationRange, ...]:
        """Open a transition that adds ``shard_id``; returns the moved ranges."""
        self._require_idle()
        if not self._shards:
            raise MigrationStateError("cannot stream-join an empty ring")
        nxt = self._clone()
        nxt.add_shard(shard_id)
        return self._begin(nxt, replication)

    def begin_leave(self, shard_id: str, replication: int = 1) -> tuple[MigrationRange, ...]:
        """Open a transition that removes ``shard_id``; returns the moved ranges."""
        self._require_idle()
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            raise MigrationStateError("cannot remove the last shard")
        nxt = self._clone()
        nxt.remove_shard(shard_id)
        return self._begin(nxt, replication)

    def commit_range(self, index: int) -> None:
        """Mark one migrated range as handed off to its new owners."""
        if self._next is None:
            raise MigrationStateError("no transition is open")
        if index < 0 or index >= len(self._ranges):
            raise MigrationStateError(f"unknown migration range {index}")
        self._committed.add(index)

    def finish(self) -> None:
        """Adopt the pending ring; every range must be committed first."""
        if self._next is None:
            raise MigrationStateError("no transition is open")
        pending = [r.index for r in self._ranges if r.index not in self._committed]
        if pending:
            raise MigrationStateError(
                f"{len(pending)} migration range(s) still uncommitted"
            )
        nxt = self._next
        self._points = nxt._points
        self._owners = nxt._owners
        self._shards = nxt._shards
        self._next = None
        self._ranges = ()
        self._committed = set()

    def abort_transition(self) -> None:
        """Drop the pending ring and keep the current ownership map."""
        self._next = None
        self._ranges = ()
        self._committed = set()

    def pending_ranges(self) -> tuple[MigrationRange, ...]:
        return tuple(r for r in self._ranges if r.index not in self._committed)

    def all_ranges(self) -> tuple[MigrationRange, ...]:
        return self._ranges

    def transition_range(self, tag: bytes) -> MigrationRange | None:
        """The in-flight range covering ``tag`` (None when settled or the
        tag's owner set does not change in this transition)."""
        if self._next is None:
            return None
        point = tag_point(tag)
        for rng in self._ranges:
            if rng.contains(point):
                return rng
        return None

    def read_owners(self, tag: bytes, n: int = 1) -> list[str]:
        """Owners to consult for a GET: old owners first (they still hold
        the data until the range commits), then the pending owners as
        failover targets.  Committed ranges read from the new owners only."""
        if self._next is None:
            return self.owners(tag, n)
        rng = self.transition_range(tag)
        if rng is None:
            return self.owners(tag, n)
        point = tag_point(tag)
        if rng.index in self._committed:
            return self._next._owners_at(point, n)
        old = self._owners_at(point, n)
        new = self._next._owners_at(point, n)
        return old + [s for s in new if s not in old]

    def write_owners(self, tag: bytes, n: int = 1) -> list[str]:
        """Owners a PUT must land on: always the pending topology, so no
        update written during the window is lost when the range commits."""
        if self._next is None:
            return self.owners(tag, n)
        rng = self.transition_range(tag)
        if rng is None:
            return self.owners(tag, n)
        return self._next._owners_at(tag_point(tag), n)

    def _require_idle(self) -> None:
        if self._next is not None:
            raise MigrationInProgressError(
                "a topology transition is already in progress"
            )

    def _clone(self) -> ShardRing:
        clone = ShardRing(self.vnodes)
        clone._points = list(self._points)
        clone._owners = list(self._owners)
        clone._shards = set(self._shards)
        return clone

    def _begin(self, nxt: ShardRing, replication: int) -> tuple[MigrationRange, ...]:
        # Ownership is constant between consecutive boundary points of the
        # merged (old ∪ new) vnode sets, so probing each elementary
        # interval's inclusive end classifies the whole ring exactly.
        boundaries = sorted(set(self._points) | set(nxt._points))
        raw: list[list] = []
        for i, hi in enumerate(boundaries):
            lo = boundaries[i - 1] if i else boundaries[-1]
            old = tuple(self._owners_at(hi, replication))
            new = tuple(nxt._owners_at(hi, replication))
            if set(old) != set(new):
                if raw and raw[-1][1] == lo and raw[-1][2] == old and raw[-1][3] == new:
                    raw[-1][1] = hi  # merge contiguous slices with one movement
                else:
                    raw.append([lo, hi, old, new])
        self._ranges = tuple(
            MigrationRange(i, lo, hi, old, new)
            for i, (lo, hi, old, new) in enumerate(raw)
        )
        self._next = nxt
        self._committed = set()
        return self._ranges

    # -- rebalancing support ---------------------------------------------------
    def load_share(self, shard_id: str) -> float:
        """Fraction of the ring owned (primary) by ``shard_id``."""
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            return 1.0
        total = 0
        for idx, owner in enumerate(self._owners):
            if owner != shard_id:
                continue
            here = self._points[idx]
            prev = self._points[idx - 1] if idx else self._points[-1] - RING_SIZE
            total += here - prev
        return total / RING_SIZE
