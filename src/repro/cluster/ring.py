"""Consistent hashing over the dedup tag space.

Tags ``t = Hash(func, m)`` (§IV-A) are outputs of a cryptographic hash,
so they land uniformly on the ring by construction — the ring position
of a tag is simply its first eight bytes read as an integer.  Shards are
placed at pseudo-random points via *virtual nodes*: each shard owns many
points, which smooths the per-shard load imbalance from O(1) placement
variance down to O(1/sqrt(vnodes)) and lets a joining shard take small
slices from every incumbent instead of one large slice from a single
neighbour (the PM-Dedup-style partitioning of secure-dedup state).

The ring is pure bookkeeping — no I/O, no enclave state — so both the
client-side router and the server-side cluster share one implementation
and always agree on ownership.
"""

from __future__ import annotations

import bisect

from ..crypto.hashes import sha256
from ..errors import SpeedError

RING_BITS = 64
RING_SIZE = 1 << RING_BITS


def tag_point(tag: bytes) -> int:
    """Ring position of a tag: its leading 8 bytes (tags are uniform)."""
    if len(tag) < 8:
        raise SpeedError("tag too short to place on the ring")
    return int.from_bytes(tag[:8], "big")


def _vnode_point(shard_id: str, index: int) -> int:
    digest = sha256(b"speed/ring/" + shard_id.encode() + b"/" + index.to_bytes(4, "big"))
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent-hash ring mapping tag points to shard ids."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise SpeedError("a shard needs at least one virtual node")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # shard id at the same index
        self._shards: set[str] = set()

    # -- membership -----------------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        if shard_id in self._shards:
            raise SpeedError(f"shard {shard_id!r} already on the ring")
        for i in range(self.vnodes):
            point = _vnode_point(shard_id, i)
            idx = bisect.bisect_left(self._points, point)
            # sha256 collisions across distinct (shard, index) pairs are
            # cryptographically impossible; an equal point would mean a
            # duplicate registration.
            self._points.insert(idx, point)
            self._owners.insert(idx, shard_id)
        self._shards.add(shard_id)

    def remove_shard(self, shard_id: str) -> None:
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != shard_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._shards.remove(shard_id)

    # -- ownership ------------------------------------------------------------
    def owners(self, tag: bytes, n: int = 1) -> list[str]:
        """The ``n`` distinct shards responsible for ``tag``: the primary
        (first vnode at or after the tag's point, wrapping) followed by
        the next ``n - 1`` distinct successors clockwise.

        ``n`` is clamped to the shard count, so asking for replication
        factor 3 on a 2-shard ring degrades gracefully to both shards.
        """
        if not self._shards:
            raise SpeedError("ring has no shards")
        n = max(1, min(n, len(self._shards)))
        start = bisect.bisect_left(self._points, tag_point(tag))
        out: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    def primary(self, tag: bytes) -> str:
        return self.owners(tag, 1)[0]

    # -- rebalancing support ---------------------------------------------------
    def load_share(self, shard_id: str) -> float:
        """Fraction of the ring owned (primary) by ``shard_id``."""
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            return 1.0
        total = 0
        for idx, owner in enumerate(self._owners):
            if owner != shard_id:
                continue
            here = self._points[idx]
            prev = self._points[idx - 1] if idx else self._points[-1] - RING_SIZE
            total += here - prev
        return total / RING_SIZE
