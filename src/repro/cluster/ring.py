"""Consistent hashing over the dedup tag space.

Tags ``t = Hash(func, m)`` (§IV-A) are outputs of a cryptographic hash,
so they land uniformly on the ring by construction — the ring position
of a tag is simply its first eight bytes read as an integer.  Shards are
placed at pseudo-random points via *virtual nodes*: each shard owns many
points, which smooths the per-shard load imbalance from O(1) placement
variance down to O(1/sqrt(vnodes)) and lets a joining shard take small
slices from every incumbent instead of one large slice from a single
neighbour (the PM-Dedup-style partitioning of secure-dedup state).

The ring is pure bookkeeping — no I/O, no enclave state — so both the
client-side router and the server-side cluster share one implementation
and always agree on ownership.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace

from ..crypto.hashes import sha256
from ..errors import MigrationInProgressError, MigrationStateError, SpeedError

RING_BITS = 64
RING_SIZE = 1 << RING_BITS


@dataclass(frozen=True)
class TopologyPlan:
    """A batch of membership and weight changes applied as **one**
    pending ring and one dual-ownership window.

    Historically every join or drain paid its own full migration window,
    so scaling 4→8 shards cost four windows.  A plan folds any number of
    joins, leaves, and reweights into a single pending ring; the range
    diff (:meth:`ShardRing.begin_plan`) then prices the whole transition
    as one set of moved ranges, handed off once.

    Joins may name their shard (``join("s4")``) or leave it ``None`` for
    the cluster to assign; weights express relative capacity (a shard of
    weight 2.0 receives twice the vnode points, hence twice the tag
    share — §IV-A tags are uniform, so ownership share is exactly vnode
    share).  Builder methods return new plans, so plans compose::

        plan = TopologyPlan().join("s4", weight=2.0).join("s5")
        plan = plan.leave("s0").reweight("s1", 0.5)
    """

    joins: tuple[tuple[str | None, float], ...] = ()
    leaves: tuple[str, ...] = ()
    reweights: tuple[tuple[str, float], ...] = ()

    def join(self, shard_id: str | None = None, weight: float = 1.0) -> "TopologyPlan":
        return replace(self, joins=self.joins + ((shard_id, weight),))

    def leave(self, shard_id: str) -> "TopologyPlan":
        return replace(self, leaves=self.leaves + (shard_id,))

    def reweight(self, shard_id: str, weight: float) -> "TopologyPlan":
        return replace(self, reweights=self.reweights + ((shard_id, weight),))

    @property
    def empty(self) -> bool:
        return not (self.joins or self.leaves or self.reweights)

    def label(self) -> str:
        """Compact human/WAL-readable summary, e.g. ``+s4+s5-s0~s1``."""
        parts = [f"+{sid if sid is not None else '?'}" for sid, _ in self.joins]
        parts += [f"-{sid}" for sid in self.leaves]
        parts += [f"~{sid}" for sid, _ in self.reweights]
        return "".join(parts) or "noop"

    def validate(self) -> None:
        """Internal consistency only (membership is the ring's check)."""
        if self.empty:
            raise SpeedError("topology plan is empty")
        named: list[str] = [sid for sid, _ in self.joins if sid is not None]
        named += list(self.leaves)
        named += [sid for sid, _ in self.reweights]
        if len(named) != len(set(named)):
            raise SpeedError(
                "a shard may appear in at most one change of a topology plan"
            )
        for sid, weight in (*self.joins, *self.reweights):
            if not weight > 0:
                raise SpeedError(
                    f"shard {sid!r} weight must be > 0, got {weight!r}"
                )


@dataclass(frozen=True)
class MigrationRange:
    """One contiguous slice of the ring whose owner set changes in an
    in-flight topology transition.

    The interval is ``(lo, hi]`` in ring-point space; ``lo > hi`` means
    the range wraps through zero.  ``sources`` are the owners under the
    current ring, ``dests`` the owners under the pending ring.
    """

    index: int
    lo: int
    hi: int
    sources: tuple[str, ...]
    dests: tuple[str, ...]

    def contains(self, point: int) -> bool:
        if self.lo < self.hi:
            return self.lo < point <= self.hi
        return point > self.lo or point <= self.hi

    @property
    def width(self) -> int:
        return (self.hi - self.lo) % RING_SIZE


def tag_point(tag: bytes) -> int:
    """Ring position of a tag: its leading 8 bytes (tags are uniform)."""
    if len(tag) < 8:
        raise SpeedError("tag too short to place on the ring")
    return int.from_bytes(tag[:8], "big")


def _vnode_point(shard_id: str, index: int) -> int:
    digest = sha256(b"speed/ring/" + shard_id.encode() + b"/" + index.to_bytes(4, "big"))
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Consistent-hash ring mapping tag points to shard ids."""

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise SpeedError("a shard needs at least one virtual node")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # shard id at the same index
        self._shards: set[str] = set()
        self._weights: dict[str, float] = {}
        # Dual-ownership transition overlay (None when the ring is settled).
        self._next: ShardRing | None = None
        self._ranges: tuple[MigrationRange, ...] = ()
        self._committed: set[int] = set()

    # -- membership -----------------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str, weight: float = 1.0) -> None:
        if self._next is not None:
            raise MigrationStateError(
                "ring is mid-transition; finish or abort the open migration first"
            )
        if shard_id in self._shards:
            raise SpeedError(f"shard {shard_id!r} already on the ring")
        if not weight > 0:
            raise SpeedError(f"shard {shard_id!r} weight must be > 0")
        for i in range(self.vnode_count(weight)):
            point = _vnode_point(shard_id, i)
            idx = bisect.bisect_left(self._points, point)
            # sha256 collisions across distinct (shard, index) pairs are
            # cryptographically impossible; an equal point would mean a
            # duplicate registration.
            self._points.insert(idx, point)
            self._owners.insert(idx, shard_id)
        self._shards.add(shard_id)
        self._weights[shard_id] = weight

    def remove_shard(self, shard_id: str) -> None:
        if self._next is not None:
            raise MigrationStateError(
                "ring is mid-transition; finish or abort the open migration first"
            )
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != shard_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]
        self._shards.remove(shard_id)
        self._weights.pop(shard_id, None)

    def vnode_count(self, weight: float) -> int:
        """Vnode points a shard of ``weight`` places: ``round(vnodes *
        weight)``, floored at one so every member owns something."""
        return max(1, round(self.vnodes * weight))

    def weight_of(self, shard_id: str) -> float:
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        return self._weights.get(shard_id, 1.0)

    # -- ownership ------------------------------------------------------------
    def owners(self, tag: bytes, n: int = 1) -> list[str]:
        """The ``n`` distinct shards responsible for ``tag``: the primary
        (first vnode at or after the tag's point, wrapping) followed by
        the next ``n - 1`` distinct successors clockwise.

        ``n`` is clamped to the shard count, so asking for replication
        factor 3 on a 2-shard ring degrades gracefully to both shards.
        """
        return self._owners_at(tag_point(tag), n)

    def _owners_at(self, point: int, n: int) -> list[str]:
        if not self._shards:
            raise SpeedError("ring has no shards")
        n = max(1, min(n, len(self._shards)))
        start = bisect.bisect_left(self._points, point)
        out: list[str] = []
        for step in range(len(self._points)):
            owner = self._owners[(start + step) % len(self._points)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    def primary(self, tag: bytes) -> str:
        return self.owners(tag, 1)[0]

    # -- dual-ownership transitions -------------------------------------------
    #
    # A topology change opens a *transition*: the pending ring is computed
    # up front, the slices whose owner set differs become MigrationRange
    # entries, and until a range is committed its tags are readable from
    # the old owners (with failover to the new ones) while writes already
    # land on the pending owners.  finish() swaps the pending ring in once
    # every range has been committed.
    @property
    def in_transition(self) -> bool:
        return self._next is not None

    @property
    def pending_shards(self) -> tuple[str, ...]:
        """Shard membership of the pending ring (settled ring when idle)."""
        return self._next.shards if self._next is not None else self.shards

    def begin_join(
        self, shard_id: str, replication: int = 1, weight: float = 1.0
    ) -> tuple[MigrationRange, ...]:
        """Open a transition that adds ``shard_id``; returns the moved ranges."""
        return self.begin_plan(
            TopologyPlan(joins=((shard_id, weight),)), replication
        )

    def begin_leave(self, shard_id: str, replication: int = 1) -> tuple[MigrationRange, ...]:
        """Open a transition that removes ``shard_id``; returns the moved ranges."""
        return self.begin_plan(TopologyPlan(leaves=(shard_id,)), replication)

    def begin_plan(
        self, plan: TopologyPlan, replication: int = 1
    ) -> tuple[MigrationRange, ...]:
        """Open one transition applying every change in ``plan`` at once.

        N joins, leaves, and reweights fold into a single pending ring,
        so the whole reshape pays **one** dual-ownership window and one
        range diff — a 4→8 scale-out hands its ranges off in one
        migration pass instead of four serialized windows.  Returns the
        moved ranges (sources/dests may span several changed shards)."""
        self._require_idle()
        plan.validate()
        for sid, _weight in plan.joins:
            if sid is None:
                raise SpeedError(
                    "ring-level plans need concrete join shard ids "
                    "(StoreCluster.begin_plan assigns them)"
                )
            if sid in self._shards:
                raise SpeedError(f"shard {sid!r} already on the ring")
        for sid in plan.leaves:
            if sid not in self._shards:
                raise SpeedError(f"shard {sid!r} not on the ring")
        for sid, _weight in plan.reweights:
            if sid not in self._shards:
                raise SpeedError(f"shard {sid!r} not on the ring")
        if plan.joins and not self._shards:
            raise MigrationStateError("cannot stream-join an empty ring")
        if len(self._shards) - len(plan.leaves) < 1:
            raise MigrationStateError("cannot remove the last shard")
        nxt = self._clone()
        for sid in plan.leaves:
            nxt.remove_shard(sid)
        for sid, weight in plan.reweights:
            nxt.remove_shard(sid)
            nxt.add_shard(sid, weight=weight)
        for sid, weight in plan.joins:
            nxt.add_shard(sid, weight=weight)
        return self._begin(nxt, replication)

    def commit_range(self, index: int) -> None:
        """Mark one migrated range as handed off to its new owners."""
        if self._next is None:
            raise MigrationStateError("no transition is open")
        if index < 0 or index >= len(self._ranges):
            raise MigrationStateError(f"unknown migration range {index}")
        self._committed.add(index)

    def finish(self) -> None:
        """Adopt the pending ring; every range must be committed first."""
        if self._next is None:
            raise MigrationStateError("no transition is open")
        pending = [r.index for r in self._ranges if r.index not in self._committed]
        if pending:
            raise MigrationStateError(
                f"{len(pending)} migration range(s) still uncommitted"
            )
        nxt = self._next
        self._points = nxt._points
        self._owners = nxt._owners
        self._shards = nxt._shards
        self._weights = nxt._weights
        self._next = None
        self._ranges = ()
        self._committed = set()

    def abort_transition(self) -> None:
        """Drop the pending ring and keep the current ownership map.

        Raises :class:`MigrationStateError` when no transition is open —
        the same contract as :meth:`commit_range`/:meth:`finish`, so a
        double abort (or an abort racing a completed finish) surfaces
        instead of silently succeeding."""
        if self._next is None:
            raise MigrationStateError("no transition is open")
        self._next = None
        self._ranges = ()
        self._committed = set()

    def pending_ranges(self) -> tuple[MigrationRange, ...]:
        return tuple(r for r in self._ranges if r.index not in self._committed)

    def all_ranges(self) -> tuple[MigrationRange, ...]:
        return self._ranges

    def transition_range(self, tag: bytes) -> MigrationRange | None:
        """The in-flight range covering ``tag`` (None when settled or the
        tag's owner set does not change in this transition)."""
        if self._next is None:
            return None
        point = tag_point(tag)
        for rng in self._ranges:
            if rng.contains(point):
                return rng
        return None

    def read_owners(self, tag: bytes, n: int = 1) -> list[str]:
        """Owners to consult for a GET: old owners first (they still hold
        the data until the range commits), then the pending owners as
        failover targets.  Committed ranges read from the new owners only."""
        if self._next is None:
            return self.owners(tag, n)
        rng = self.transition_range(tag)
        if rng is None:
            return self.owners(tag, n)
        point = tag_point(tag)
        if rng.index in self._committed:
            return self._next._owners_at(point, n)
        old = self._owners_at(point, n)
        new = self._next._owners_at(point, n)
        return old + [s for s in new if s not in old]

    def write_owners(self, tag: bytes, n: int = 1) -> list[str]:
        """Owners a PUT must land on: always the pending topology, so no
        update written during the window is lost when the range commits."""
        if self._next is None:
            return self.owners(tag, n)
        rng = self.transition_range(tag)
        if rng is None:
            return self.owners(tag, n)
        return self._next._owners_at(tag_point(tag), n)

    def _require_idle(self) -> None:
        if self._next is not None:
            raise MigrationInProgressError(
                "a topology transition is already in progress"
            )

    def _clone(self) -> ShardRing:
        clone = ShardRing(self.vnodes)
        clone._points = list(self._points)
        clone._owners = list(self._owners)
        clone._shards = set(self._shards)
        clone._weights = dict(self._weights)
        return clone

    def _begin(self, nxt: ShardRing, replication: int) -> tuple[MigrationRange, ...]:
        # Ownership is constant between consecutive boundary points of the
        # merged (old ∪ new) vnode sets, so probing each elementary
        # interval's inclusive end classifies the whole ring exactly.
        boundaries = sorted(set(self._points) | set(nxt._points))
        raw: list[list] = []
        for i, hi in enumerate(boundaries):
            lo = boundaries[i - 1] if i else boundaries[-1]
            old = tuple(self._owners_at(hi, replication))
            new = tuple(nxt._owners_at(hi, replication))
            if set(old) != set(new):
                if raw and raw[-1][1] == lo and raw[-1][2] == old and raw[-1][3] == new:
                    raw[-1][1] = hi  # merge contiguous slices with one movement
                else:
                    raw.append([lo, hi, old, new])
        if (
            len(raw) >= 2
            and raw[0][0] == raw[-1][1]  # first slice wraps; last ends there
            and raw[0][2] == raw[-1][2]
            and raw[0][3] == raw[-1][3]
        ):
            # The movement is contiguous *through zero*: the slice ending
            # at the last boundary and the one starting there (the wrap
            # interval) are one hand-off, not two — merging keeps the
            # migration to one transfer and one WAL commit mark.
            raw[-1][1] = raw[0][1]
            raw.pop(0)
        self._ranges = tuple(
            MigrationRange(i, lo, hi, old, new)
            for i, (lo, hi, old, new) in enumerate(raw)
        )
        self._next = nxt
        self._committed = set()
        return self._ranges

    # -- rebalancing support ---------------------------------------------------
    def owned_width(self, shard_id: str) -> int:
        """Ring-point width owned (primary) by ``shard_id``, as an exact
        integer: the widths of all shards sum to ``RING_SIZE`` with no
        float rounding.  The slice at index 0 reaches back through zero
        to the last vnode point (``prev`` goes negative), which is what
        charges the wrap interval to the first point's owner."""
        if shard_id not in self._shards:
            raise SpeedError(f"shard {shard_id!r} not on the ring")
        if len(self._shards) == 1:
            return RING_SIZE
        total = 0
        for idx, owner in enumerate(self._owners):
            if owner != shard_id:
                continue
            here = self._points[idx]
            prev = self._points[idx - 1] if idx else self._points[-1] - RING_SIZE
            total += here - prev
        return total

    def load_share(self, shard_id: str) -> float:
        """Fraction of the ring owned (primary) by ``shard_id``."""
        return self.owned_width(shard_id) / RING_SIZE
