"""Adversary simulations backing the §III-D security analysis tests."""

from .adversary import (
    BruteForceAdversary,
    CachePoisoningAdversary,
    ForgingAttempt,
    PoisoningReport,
    QueryForgingAdversary,
    WireObservation,
    WireTapAdversary,
)

__all__ = [
    "BruteForceAdversary",
    "CachePoisoningAdversary",
    "ForgingAttempt",
    "PoisoningReport",
    "QueryForgingAdversary",
    "WireObservation",
    "WireTapAdversary",
]
