"""Adversary simulations for the paper's §III-D security analysis.

The threat model (§II-B): the adversary controls the full software stack
outside the enclaves — it can read/modify the untrusted blob store,
observe the wire, and run its own (non-attested) code — but cannot break
the simulated hardware.  Each class below mounts one of the attacks the
paper claims to defeat; the security test suite asserts every mount
fails, and that the corresponding *relaxations* (e.g. UNIC's plaintext
store) do fall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheme import CrossAppScheme, ProtectedResult
from ..core.tag import derive_locking_hash
from ..crypto import gcm
from ..errors import IntegrityError
from ..store.resultstore import ResultStore


@dataclass
class WireObservation:
    """What a network-tapping adversary collects: opaque records only."""

    total_messages: int = 0
    total_bytes: int = 0
    plaintext_sightings: int = 0  # times a known plaintext appeared on the wire


class WireTapAdversary:
    """Honest-but-curious observer of all traffic (attach via Network.add_tap).

    Records whether any of the secrets it knows to look for (function
    identities, inputs, results) ever appear in the clear.
    """

    def __init__(self, known_secrets: list[bytes]):
        self._secrets = [s for s in known_secrets if len(s) >= 8]
        self.observation = WireObservation()

    def __call__(self, source: str, dest: str, payload: bytes) -> None:
        self.observation.total_messages += 1
        self.observation.total_bytes += len(payload)
        for secret in self._secrets:
            if secret in payload:
                self.observation.plaintext_sightings += 1


@dataclass
class ForgingAttempt:
    guesses_tried: int
    succeeded: bool
    recovered: bytes = b""


class QueryForgingAdversary:
    """The query-forging attack of UNIC's threat discussion (§III-D):
    armed with a *leaked tag* and everything the store returns —
    ``(r, [k], [res])`` — try to decrypt without owning ``(func, m)``.

    ``guesses`` is the adversary's dictionary of candidate
    ``(func_identity, input_bytes)`` pairs.  The paper's claim: the
    attack succeeds only if the true pair is in the dictionary (i.e. the
    adversary could have performed the computation anyway).
    """

    def __init__(self, scheme: CrossAppScheme | None = None):
        self._scheme = scheme or CrossAppScheme()

    def attack(
        self,
        tag: bytes,
        stolen: ProtectedResult,
        guesses: list[tuple[bytes, bytes]],
    ) -> ForgingAttempt:
        for attempt, (func_identity, input_bytes) in enumerate(guesses, start=1):
            try:
                recovered = self._scheme.recover(func_identity, input_bytes, tag, stolen)
            except IntegrityError:
                continue
            except Exception:
                continue
            return ForgingAttempt(guesses_tried=attempt, succeeded=True, recovered=recovered)
        return ForgingAttempt(guesses_tried=len(guesses), succeeded=False)


@dataclass
class PoisoningReport:
    tampered_blobs: int
    served_poisoned: int      # poisoned bytes that reached an application
    detected_by_store: int
    detected_by_app: int


class CachePoisoningAdversary:
    """Root-level adversary that rewrites ciphertexts at rest (§III-D:
    "an adversary attempts to poison ResultStore with bad results")."""

    def __init__(self, store: ResultStore):
        self._store = store

    def tamper_all(self) -> int:
        """Flip one byte in every stored blob; returns the count."""
        count = 0
        blobstore = self._store.blobstore
        for ref in list(blobstore._blobs):
            blobstore.tamper(ref, offset=len(blobstore.get(ref)) // 2)
            count += 1
        return count

    def tamper_tag(self, tag: bytes) -> None:
        self._store.blobstore.tamper(self._store.blob_ref_of(tag))


class BruteForceAdversary:
    """Offline dictionary attack over *predictable* computations (§III-D).

    Given the store's at-rest state for one entry, enumerate candidate
    inputs.  Two scenarios:

    * ``r`` protected inside the store enclave (the deployed system):
      the adversary has only ``[res]`` — without ``r`` it cannot even
      form the locking hash, so the attack cannot start.  Modelled by
      :meth:`attack_without_challenge`.
    * ``r`` additionally leaked (a stronger-than-threat-model leak):
      the attack degrades to guessing the input dictionary, succeeding
      exactly when the computation was predictable — the inherent MLE
      bound the paper cites from [25].  Modelled by
      :meth:`attack_with_challenge`.
    """

    def __init__(self, func_identity: bytes):
        self._func_identity = func_identity

    def attack_without_challenge(
        self, tag: bytes, sealed_result: bytes, candidate_inputs: list[bytes]
    ) -> ForgingAttempt:
        """No ``r``: the adversary must guess the 16-byte key itself; we
        model a dictionary-sized effort of random key guesses."""
        for attempt, candidate in enumerate(candidate_inputs, start=1):
            # Best available move: treat the candidate bytes as key material.
            fake_key = (candidate * 16)[:16] if candidate else b"\x00" * 16
            try:
                recovered = gcm.open_(fake_key, sealed_result, aad=tag)
            except (IntegrityError, Exception):
                continue
            return ForgingAttempt(attempt, True, recovered)
        return ForgingAttempt(len(candidate_inputs), False)

    def attack_with_challenge(
        self,
        tag: bytes,
        protected: ProtectedResult,
        candidate_inputs: list[bytes],
    ) -> ForgingAttempt:
        """With leaked ``r``: classic MLE dictionary attack."""
        for attempt, candidate in enumerate(candidate_inputs, start=1):
            locking = derive_locking_hash(self._func_identity, candidate, protected.challenge)
            key = bytes(a ^ b for a, b in zip(protected.wrapped_key, locking[:16]))
            try:
                recovered = gcm.open_(key, protected.sealed_result, aad=tag)
            except IntegrityError:
                continue
            return ForgingAttempt(attempt, True, recovered)
        return ForgingAttempt(len(candidate_inputs), False)
