"""Comparison baselines: UNIC-style plaintext memoization and the
single-key / no-dedup runtime presets (DESIGN.md experiment index A1)."""

from .presets import (
    SYSTEM_WIDE_KEY,
    cross_app_runtime_config,
    no_dedup_runtime_config,
    single_key_runtime_config,
)
from .unic import UnicRuntime, UnicStats, UnicStore

__all__ = [
    "SYSTEM_WIDE_KEY",
    "UnicRuntime",
    "UnicStats",
    "UnicStore",
    "cross_app_runtime_config",
    "no_dedup_runtime_config",
    "single_key_runtime_config",
]
