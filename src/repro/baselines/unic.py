"""UNIC-style baseline: plaintext computation deduplication.

Tang & Yang's UNIC [16] — the closest prior system and the paper's main
conceptual comparison — deduplicates general computations but "mainly
operates in plaintext domain ... and does not consider the
confidentiality of the cached results, which are stored unencrypted".
This baseline reproduces that regime: tags are hashes of (func, input),
results live in a plain dictionary visible to the host adversary, and
integrity rests on a single system-wide MAC key shared by every
application.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..crypto.hashes import hmac_sha256, tagged_hash
from ..errors import IntegrityError
from ..sgx.cost_model import SimClock


@dataclass
class UnicStats:
    calls: int = 0
    hits: int = 0
    misses: int = 0


@dataclass
class UnicStore:
    """The plaintext result cache: tag -> (result bytes, MAC)."""

    mac_key: bytes
    entries: dict[bytes, tuple[bytes, bytes]] = field(default_factory=dict)

    def get(self, tag: bytes) -> bytes | None:
        record = self.entries.get(tag)
        if record is None:
            return None
        result, mac = record
        if hmac_sha256(self.mac_key, tag + result) != mac:
            raise IntegrityError("UNIC store entry failed its MAC check")
        return result

    def put(self, tag: bytes, result: bytes) -> None:
        self.entries.setdefault(
            tag, (result, hmac_sha256(self.mac_key, tag + result))
        )

    # Adversarial surface: the host can read and replace plaintext results.
    def leak(self, tag: bytes) -> bytes | None:
        record = self.entries.get(tag)
        return record[0] if record else None

    def overwrite(self, tag: bytes, result: bytes, mac: bytes) -> None:
        self.entries[tag] = (result, mac)


class UnicRuntime:
    """Minimal UNIC-like memoization wrapper for one function."""

    def __init__(
        self,
        store: UnicStore,
        func: Callable[[bytes], Any],
        encode: Callable[[Any], bytes],
        decode: Callable[[bytes], Any],
        clock: SimClock | None = None,
        native_factor: float = 1.0,
    ):
        self._store = store
        self._func = func
        self._encode = encode
        self._decode = decode
        self._clock = clock
        self._native_factor = native_factor
        self._func_id = tagged_hash(b"unic/func", repr(func).encode())
        self.stats = UnicStats()

    def call(self, input_bytes: bytes, input_value: Any) -> Any:
        self.stats.calls += 1
        tag = tagged_hash(b"unic/tag", self._func_id, input_bytes)
        if self._clock is not None:
            self._clock.charge_hash(len(input_bytes))
        cached = self._store.get(tag)
        if cached is not None:
            self.stats.hits += 1
            return self._decode(cached)
        self.stats.misses += 1
        start = time.perf_counter()
        result = self._func(input_value)
        if self._clock is not None:
            self._clock.charge_compute(time.perf_counter() - start, self._native_factor)
        self._store.put(tag, self._encode(result))
        return result
