"""Deployment presets for the three comparison regimes of the paper.

* ``no_dedup_runtime_config`` — "without SPEED", the Fig. 5 baseline:
  the marked function simply executes (no GET/PUT, no crypto).
* ``single_key_runtime_config`` — the basic design of §III-B: one
  system-wide key, still enclave-protected.
* ``cross_app_runtime_config`` — the main design of §III-C (the default
  elsewhere); provided here for symmetric spelling in experiments.
"""

from __future__ import annotations

from ..core.runtime import RuntimeConfig
from ..core.scheme import CrossAppScheme, SingleKeyScheme

SYSTEM_WIDE_KEY = b"speed-system-key"[:16]


def no_dedup_runtime_config(app_id: str) -> RuntimeConfig:
    """The "without SPEED" baseline of Fig. 5."""
    return RuntimeConfig(app_id=app_id, dedup_enabled=False)


def single_key_runtime_config(app_id: str, key: bytes = SYSTEM_WIDE_KEY) -> RuntimeConfig:
    """The basic single-key design of §III-B."""
    return RuntimeConfig(app_id=app_id, scheme=SingleKeyScheme(key))


def cross_app_runtime_config(app_id: str) -> RuntimeConfig:
    """The cross-application design of §III-C (SPEED's default)."""
    return RuntimeConfig(app_id=app_id, scheme=CrossAppScheme())
