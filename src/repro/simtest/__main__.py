"""CLI for the simulation harness.

Replay one seed::

    python -m repro.simtest --seed 7

Sweep many seeds (CI / nightly)::

    python -m repro.simtest --runs 50
    python -m repro.simtest --runs 50 --start-seed 1000

Exit status is non-zero iff any scenario violated an invariant; each
failure prints its one-line repro string.  ``--shrink`` additionally
searches for a smaller still-failing configuration before reporting.
"""

from __future__ import annotations

import argparse
import sys

from .runner import SimConfig, run_scenario
from .shrinking import shrink


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.simtest",
        description="Deterministic fault-simulation scenarios for SPEED.",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="replay exactly one scenario with this seed")
    parser.add_argument("--runs", type=int, default=1,
                        help="number of seeds to sweep (ignored with --seed)")
    parser.add_argument("--start-seed", type=int, default=0,
                        help="first seed of the sweep")
    parser.add_argument("--steps", type=int, default=40,
                        help="scenario steps per seed")
    parser.add_argument("--shards", type=int, default=3,
                        help="cluster shards per scenario")
    parser.add_argument("--pipeline", action="store_true",
                        help="drive the workload through the pipelined "
                             "engine (depth 8, coalescing on) and check "
                             "the coalescing invariant")
    parser.add_argument("--pipeline-depth", type=int, default=8,
                        help="engine submit window for --pipeline runs "
                             "(the --adaptive invariant replays at 1)")
    parser.add_argument("--adaptive", action="store_true",
                        help="size every engine round with the AIMD "
                             "adaptive depth controller (implies "
                             "--pipeline) and check the adaptive-"
                             "identity invariant against a depth-1 "
                             "replay")
    parser.add_argument("--power-fail", action="store_true",
                        help="run durable (WAL-backed) shards and inject "
                             "power failures with full state loss, "
                             "checking the recovery invariant")
    parser.add_argument("--migrate", action="store_true",
                        help="stream live topology changes (joins/drains) "
                             "through the scenario, crash migration "
                             "participants mid-range, and check the "
                             "single-owner invariant (implies durable "
                             "shards)")
    parser.add_argument("--trace", action="store_true",
                        help="print every trace event line")
    parser.add_argument("--shrink", action="store_true",
                        help="shrink failing configs before reporting")
    args = parser.parse_args(argv)

    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.start_seed, args.start_seed + args.runs))

    failures = 0
    for seed in seeds:
        config = SimConfig(
            seed=seed, steps=args.steps, shards=args.shards,
            pipeline=args.pipeline, pipeline_depth=args.pipeline_depth,
            adaptive=args.adaptive, power_fail=args.power_fail,
            migrate=args.migrate,
        )
        result = run_scenario(config)
        print(result.summary())
        if args.trace:
            for line in result.trace:
                print(f"  {line}")
        if not result.ok:
            failures += 1
            for violation in result.violations:
                print(f"  {violation}", file=sys.stderr)
            if args.shrink:
                smaller, runs = shrink(config)
                print(
                    f"  shrunk to: {smaller.repro_string()} "
                    f"(steps={smaller.steps}, {runs} shrink runs)",
                    file=sys.stderr,
                )
    if failures:
        print(f"{failures}/{len(seeds)} scenario(s) FAILED", file=sys.stderr)
        return 1
    print(f"all {len(seeds)} scenario(s) passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
