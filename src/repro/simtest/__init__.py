"""Deterministic simulation testing for the SPEED reproduction.

FoundationDB-style simulation testing adapted to this codebase: every
component already runs on simulated machines over a loopback network,
so the whole deployment — application enclaves, channel crypto, RPC,
shard routing, stores, persistence — can be driven through randomized
fault schedules that replay **byte-identically** from a single integer
seed.

Entry points::

    from repro.simtest import SimConfig, run_scenario
    result = run_scenario(SimConfig(seed=7))
    assert result.ok, result.violations

    python -m repro.simtest --seed 7          # replay one scenario
    python -m repro.simtest --runs 50         # CI sweep

Every failure prints a one-line repro string; see
:mod:`repro.simtest.invariants` for the oracle and DESIGN.md for the
mapping between the fault model and the paper's §III threat model.
"""

from .invariants import Violation
from .runner import ScenarioResult, SimConfig, replay_check, run_scenario, run_seeds
from .schedule import FaultPlan
from .shrinking import shrink

__all__ = [
    "FaultPlan",
    "ScenarioResult",
    "SimConfig",
    "Violation",
    "replay_check",
    "run_scenario",
    "run_seeds",
    "shrink",
]
