"""Seeded fault schedules for the deterministic simulation harness.

A :class:`FaultPlan` is the probabilistic half of the fault model: it
plugs into :attr:`~repro.net.transport.FaultInjector.plan` and decides,
for every message on every (source, dest) edge, whether to drop,
corrupt, duplicate, or delay it.  Decisions are **stateless** — each is
a pure hash of ``(seed, source, dest, edge index, fault kind)`` — so a
decision never depends on evaluation order, and replaying the same seed
against the same traffic reproduces the same schedule bit for bit (the
foundation of the harness's ``--seed`` repro strings).

On top of the per-message probabilities the plan carries two pieces of
*imperative* state the scenario runner drives explicitly: blocked
directed edges (network partitions — every message on a blocked edge is
dropped) and slow addresses (every message to or from a slow address is
held back a fixed number of delivery events, modelling a degraded NIC
or an overloaded shard).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.transport import DELIVER, FaultDecision
from ..crypto.hashes import tagged_hash

_DOMAIN = b"simtest/plan"


@dataclass
class FaultPlan:
    """A seeded, stateless per-message fault schedule.

    Rates are independent probabilities per message; ``max_delay`` bounds
    the hold-back (in network delivery events) of a delayed message.
    ``blocked`` holds directed ``(source, dest)`` edges that drop
    everything; ``slow`` maps addresses to extra hold-back ticks.
    """

    seed: int
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    max_delay: int = 3
    blocked: set = field(default_factory=set)
    slow: dict = field(default_factory=dict)

    # -- imperative topology faults -------------------------------------------
    def block(self, source: str, dest: str) -> None:
        """Partition one directed edge: everything on it is dropped."""
        self.blocked.add((source, dest))

    def block_address(self, address: str, peers) -> None:
        """Partition ``address`` from every peer, both directions."""
        for peer in peers:
            self.blocked.add((address, peer))
            self.blocked.add((peer, address))

    def set_slow(self, address: str, ticks: int) -> None:
        """Hold every message touching ``address`` back ``ticks`` events."""
        if ticks <= 0:
            self.slow.pop(address, None)
        else:
            self.slow[address] = ticks

    def heal(self) -> None:
        """Clear all partitions and slow addresses (probabilities stay)."""
        self.blocked.clear()
        self.slow.clear()

    # -- stateless per-message decisions --------------------------------------
    def _fraction(self, source: str, dest: str, index: int, kind: bytes) -> float:
        """A uniform [0, 1) draw fully determined by the decision's
        coordinates — independent of call order and platform."""
        digest = tagged_hash(
            _DOMAIN,
            str(self.seed).encode(),
            source.encode(),
            dest.encode(),
            index.to_bytes(8, "big"),
            kind,
        )
        return int.from_bytes(digest[:8], "big") / 2**64

    def decide(self, source: str, dest: str, index: int, size: int) -> FaultDecision:
        """The :class:`~repro.net.transport.FaultInjector` plan hook."""
        if (source, dest) in self.blocked:
            return FaultDecision(drop=True)
        if self.drop_rate and self._fraction(source, dest, index, b"drop") < self.drop_rate:
            return FaultDecision(drop=True)
        corrupt = bool(
            self.corrupt_rate
            and self._fraction(source, dest, index, b"corrupt") < self.corrupt_rate
        )
        duplicate = int(
            self.duplicate_rate
            and self._fraction(source, dest, index, b"duplicate") < self.duplicate_rate
        )
        delay = 0
        if self.delay_rate and self._fraction(source, dest, index, b"delay") < self.delay_rate:
            delay = 1 + int(
                self._fraction(source, dest, index, b"delay-length") * self.max_delay
            )
        delay += self.slow.get(source, 0) + self.slow.get(dest, 0)
        if not (corrupt or duplicate or delay):
            return DELIVER
        return FaultDecision(corrupt=corrupt, duplicate=duplicate, delay=delay)
