"""The scenario runner: one seeded, fully deterministic chaos run.

:func:`run_scenario` assembles a sharded SPEED deployment through the
public :func:`repro.connect` API with the hardened client path enabled
(retries, per-shard circuit breakers, graceful degradation), arms a
seeded :class:`~repro.simtest.schedule.FaultPlan`, and drives a
randomized workload interleaved with topology faults: shard crashes,
crash-restarts through the sealing/persistence path, partitions, slow
links, and deliberate corruption of untrusted memory and store
metadata.  After the scenario it heals the cluster, lets everything
settle, and checks the four global invariants
(:mod:`repro.simtest.invariants`).

Everything observable is derived from ``SimConfig.seed``: the workload,
the op sequence, every fault decision.  The run emits a trace of
deterministic event lines whose SHA-256 digest is byte-identical across
replays of the same config — the property the ``--seed`` repro strings
rely on, and which a regression test pins.

Wall-clock and simulated-time figures are deliberately **excluded** from
the trace: the simulated clock charges measured host time for in-enclave
compute, so any value derived from it would break replay equality.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace

from .invariants import (
    Violation,
    check_adaptive_identical,
    check_coalesced,
    check_confidentiality,
    check_conservation,
    check_durability,
    check_recovery,
    check_single_owner,
    store_image,
)
from .schedule import FaultPlan
from ..cluster.ring import TopologyPlan
from ..crypto.hashes import tagged_hash
from ..core.runtime import RuntimeConfig
from ..errors import SpeedError
from ..net.circuit import BreakerConfig
from ..net.rpc import RetryPolicy
from ..net.transport import FaultInjector, corrupt_payload
from ..session import connect
from ..store.resultstore import StoreConfig

#: Weighted op mix for the random scenario walk.  Workload ops dominate;
#: topology faults and corruption are the seasoning.
_OPS = (
    ("call", 46),
    ("batch", 10),
    ("flush", 8),
    ("kill", 6),
    ("revive", 6),
    ("restart", 5),
    ("partition", 5),
    ("heal", 5),
    ("slow", 4),
    ("corrupt_blob", 3),
    ("corrupt_meta", 2),
)


@dataclass(frozen=True)
class SimConfig:
    """One scenario, fully determined by these fields."""

    seed: int
    steps: int = 40
    shards: int = 3
    replication_factor: int = 2
    inputs: int = 6
    drop_rate: float = 0.03
    duplicate_rate: float = 0.03
    delay_rate: float = 0.05
    corrupt_rate: float = 0.02
    max_delay: int = 3
    # Shrinking toggles: each disables one class of scenario op.
    crash_ops: bool = True
    partition_ops: bool = True
    corruption_ops: bool = True
    # Drive the workload through the pipelined engine (tag coalescing
    # on) instead of the serial client path, and check the fifth
    # (coalescing) invariant on every batch.
    pipeline: bool = False
    # Engine submit window for --pipeline runs (the --adaptive
    # reference replay pins it to 1).
    pipeline_depth: int = 8
    # Let the AIMD AdaptiveDepthController size every engine round
    # (implies pipeline) and check the eighth (adaptive-identity)
    # invariant: per-call result bytes must match a depth-1 replay of
    # the same schedule, and the controller's decision digest joins the
    # replayed trace.
    adaptive: bool = False
    # Run the shards with durable write-ahead logs and add a power_fail
    # op (full state loss + WAL recovery) to the mix, checking the sixth
    # (recovery) invariant at every failure point.
    power_fail: bool = False
    # Stream live topology changes (joins and drains) through the
    # scenario: migrations open, advance range by range, and crash
    # (power-fail on sources and destinations mid-range) while the
    # workload keeps running; checks the seventh (single-owner)
    # invariant after healing.  Implies durable shards.
    migrate: bool = False

    def repro_string(self) -> str:
        """The one-liner that replays this exact scenario."""
        parts = [f"python -m repro.simtest --seed {self.seed}"]
        if self.steps != 40:
            parts.append(f"--steps {self.steps}")
        if self.shards != 3:
            parts.append(f"--shards {self.shards}")
        if self.pipeline:
            parts.append("--pipeline")
        if self.pipeline_depth != 8:
            parts.append(f"--pipeline-depth {self.pipeline_depth}")
        if self.adaptive:
            parts.append("--adaptive")
        if self.power_fail:
            parts.append("--power-fail")
        if self.migrate:
            parts.append("--migrate")
        return " ".join(parts)


@dataclass
class ScenarioResult:
    """Everything one scenario produced."""

    config: SimConfig
    trace: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    #: Ordered per-call result bytes (calls and batch items alike) —
    #: what the adaptive-identity invariant compares across depths.
    values: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def digest(self) -> str:
        """SHA-256 over the trace — byte-identical across replays."""
        return hashlib.sha256("\n".join(self.trace).encode()).hexdigest()

    @property
    def repro(self) -> str:
        return self.config.repro_string()

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (
            f"seed={self.config.seed} steps={self.config.steps} "
            f"shards={self.config.shards} calls={self.counters.get('runtime.calls', 0)} "
            f"hits={self.counters.get('runtime.hits', 0)} "
            f"degraded={self.counters.get('runtime.degraded_calls', 0)} "
            f"digest={self.digest[:16]} {verdict}"
        )


#: Counters included in the trace tail (and ScenarioResult.counters).
#: Only order- and platform-deterministic integers belong here — never
#: anything derived from the simulated or wall clock.
_TRACE_COUNTERS = (
    "runtime.calls",
    "runtime.hits",
    "runtime.misses",
    "runtime.degraded_calls",
    "runtime.l1_hits",
    "runtime.coalesced_hits",
    "runtime.verification_failures",
    "runtime.puts_sent",
    "runtime.puts_accepted",
    "runtime.puts_rejected",
    "runtime.puts_failed",
    "runtime.puts_unacknowledged",
    "runtime.puts_acked_unique",
    "net.messages",
    "net.dropped",
    "net.corrupted",
    "net.duplicated",
    "net.delayed",
    "router.retries",
    "router.records_rejected",
    "router.duplicate_responses_dropped",
    "router.circuit_opens",
    "router.circuit_skips",
    # Adaptive engine decisions are deterministic ints: putting them in
    # the digested trace makes replay_check pin the controller's whole
    # decision sequence (invariant 8's pure-function clause).
    "engine.depth_current",
    "engine.depth_decisions",
    "engine.depth_changes",
    "engine.depth_shrinks",
    "engine.depth_migration_caps",
)


def _workload_result(input_bytes: bytes) -> bytes:
    """The scenario workload, as plain Python — the correctness oracle
    computes expected values through this same function."""
    return tagged_hash(b"simtest/workload", input_bytes) * 2


def run_scenario(config: SimConfig) -> ScenarioResult:
    """Run one seeded scenario end to end and check every invariant."""
    repro = config.repro_string()
    trace: list[str] = []
    violations: list[Violation] = []

    plan = FaultPlan(
        seed=config.seed,
        drop_rate=config.drop_rate,
        duplicate_rate=config.duplicate_rate,
        delay_rate=config.delay_rate,
        corrupt_rate=config.corrupt_rate,
        max_delay=config.max_delay,
    )
    injector = FaultInjector()  # plan armed only after setup/attestation
    session = connect(
        shards=config.shards,
        replication_factor=config.replication_factor,
        seed=b"simtest/" + str(config.seed).encode(),
        tracing=False,
        fault_injector=injector,
        store_config=(
            StoreConfig(durable=True)
            if (config.power_fail or config.migrate) else None
        ),
        retry_policy=RetryPolicy(max_attempts=4, retry_protocol_errors=True),
        # Deterministic skip-count recovery: the simulated clock charges
        # measured host time for compute, so a time-based breaker would
        # not replay.
        breaker_config=BreakerConfig(
            failure_threshold=3, reset_timeout_s=None, reset_after_skips=6
        ),
        runtime_config=RuntimeConfig(degrade_on_store_failure=True),
    )
    pipelined = config.pipeline or config.adaptive
    if pipelined:
        session.enable_pipeline(
            depth="auto" if config.adaptive else config.pipeline_depth,
            workers=4, coalesce=True, min_depth=1, max_depth=16,
        )

    @session.mark(version="1.0")
    def sim_workload(data: bytes) -> bytes:
        return _workload_result(data)

    # The honest-but-curious adversary: record every wire payload.
    wire: list[bytes] = []
    session.network.add_tap(lambda source, dest, payload: wire.append(payload))

    pool = [
        tagged_hash(b"simtest/input", str(config.seed).encode(), i.to_bytes(4, "big"))
        for i in range(config.inputs)
    ]
    expected = [_workload_result(data) for data in pool]
    secrets = {}
    for i, data in enumerate(pool):
        secrets[f"input[{i}]"] = data
        secrets[f"result[{i}]"] = expected[i]

    cluster = session.cluster
    shard_ids = list(cluster.shard_ids)
    store_addr = {sid: cluster.shards[sid].address for sid in shard_ids}
    client_addr = {sid: f"app->{sid}" for sid in shard_ids}
    dead: set[str] = set()
    partitioned: set[str] = set()
    corrupted_tags: set[bytes] = set()
    migrator = None  # the open streaming topology change, if any

    def refresh_topology() -> None:
        """Re-sync shard bookkeeping after a join/drain changed the map."""
        nonlocal shard_ids
        shard_ids = list(cluster.shard_ids)
        for sid in shard_ids:
            store_addr.setdefault(sid, cluster.shards[sid].address)
            client_addr.setdefault(sid, f"app->{sid}")
        for sid in list(dead):
            if sid not in cluster.shards:
                dead.discard(sid)

    rng = random.Random(config.seed)
    # Corruption targets are picked from store contents, whose size at a
    # given step depends on PUT-flush timing — i.e. on the engine depth.
    # Those draws live on their own stream so the *op schedule* stays a
    # pure function of the seed across engine configurations (the
    # adaptive-identity invariant replays the same schedule at depth 1;
    # random.Random's rejection sampling would otherwise consume a
    # depth-dependent number of bits and fork the schedule).
    target_rng = random.Random(config.seed ^ 0x7A11C0DE)
    op_table = list(_OPS)
    if config.power_fail:
        op_table.append(("power_fail", 5))
    if config.migrate:
        op_table.extend([
            ("mig_open", 4),       # start a streaming join or drain
            ("mig_step", 10),      # hand one range across
            ("mig_powerfail", 4),  # crash a migration participant mid-range
            ("mig_finish", 4),     # settle the ring once all ranges moved
        ])
    ops = [name for name, _ in op_table]
    weights = [weight for _, weight in op_table]

    values: list[bytes] = []  # ordered result bytes, for invariant 8

    def check_value(label: str, index: int, value: bytes) -> None:
        values.append(value)
        if value != expected[index]:
            violations.append(Violation(
                "correctness",
                f"{label} for input[{index}] returned wrong bytes",
                repro,
            ))

    injector.plan = plan  # arm the schedule; setup traffic stays clean
    for step in range(config.steps):
        op = rng.choices(ops, weights=weights)[0]
        if op in ("kill", "revive", "restart", "power_fail") and not config.crash_ops:
            op = "call"
        if op in ("partition", "heal", "slow") and not config.partition_ops:
            op = "call"
        if op in ("corrupt_blob", "corrupt_meta") and not config.corruption_ops:
            op = "call"

        op_calls = 1  # value-stream slots this op owes on error (invariant 8)
        values_before = len(values)
        try:
            if op == "call":
                index = rng.randrange(len(pool))
                result = sim_workload.call_result(pool[index])
                check_value("call", index, result.value)
                trace.append(
                    f"step={step} op=call input={index} "
                    f"source={result.source} degraded={result.degraded}"
                )
            elif op == "batch":
                indices = [rng.randrange(len(pool)) for _ in range(rng.randint(2, 5))]
                op_calls = len(indices)
                results = sim_workload.map_results([pool[i] for i in indices])
                for i, result in zip(indices, results):
                    check_value("batch", i, result.value)
                if pipelined:
                    violations.extend(check_coalesced(results, repro))
                outcomes = ",".join(r.source for r in results)
                trace.append(
                    f"step={step} op=batch inputs={indices} outcomes={outcomes}"
                )
            elif op == "flush":
                flushed = session.flush_puts()
                trace.append(f"step={step} op=flush puts={flushed}")
            elif op == "kill":
                alive = [s for s in shard_ids if s not in dead]
                if len(alive) > 1:  # keep at least one shard reachable
                    sid = rng.choice(alive)
                    cluster.kill_shard(sid)
                    dead.add(sid)
                    trace.append(f"step={step} op=kill shard={sid}")
                else:
                    trace.append(f"step={step} op=kill skipped")
            elif op == "revive":
                if dead:
                    sid = rng.choice(sorted(dead))
                    cluster.revive_shard(sid)
                    dead.discard(sid)
                    trace.append(f"step={step} op=revive shard={sid}")
                else:
                    trace.append(f"step={step} op=revive skipped")
            elif op == "restart":
                alive = [s for s in shard_ids if s not in dead]
                if alive:
                    sid = rng.choice(alive)
                    report = cluster.restart_shard(sid)
                    trace.append(
                        f"step={step} op=restart shard={sid} "
                        f"restored={report.entries_restored}"
                    )
                else:
                    trace.append(f"step={step} op=restart skipped")
            elif op == "power_fail":
                alive = [s for s in shard_ids if s not in dead]
                if alive:
                    sid = rng.choice(alive)
                    store = cluster.shards[sid].store
                    pre = store_image(store)
                    report = cluster.power_fail_shard(sid)
                    post = store_image(store)
                    violations.extend(
                        check_recovery(pre, post, corrupted_tags, sid, repro)
                    )
                    trace.append(
                        f"step={step} op=power_fail shard={sid} "
                        f"wiped={len(pre)} restored={len(post)} "
                        f"replayed={report.records_replayed}"
                    )
                else:
                    trace.append(f"step={step} op=power_fail skipped")
            elif op == "mig_open":
                open_already = migrator is not None and not migrator.finished
                kind_draw = rng.random()
                if open_already:
                    trace.append(f"step={step} op=mig_open skipped")
                elif kind_draw < 0.25 and len(cluster.shards) > 2:
                    # Planned multi-change window: two joins (one
                    # weighted), one drain, one reweight — all in a
                    # single dual-ownership window.  Every draw comes
                    # from the schedule rng, so the plan is a pure
                    # function of the seed.
                    members = sorted(cluster.shards)
                    leaver = rng.choice(members)
                    reweighted = rng.choice([s for s in members if s != leaver])
                    topo = (
                        TopologyPlan()
                        .join(weight=rng.choice((0.5, 1.0, 2.0)))
                        .join()
                        .leave(leaver)
                        .reweight(reweighted, rng.choice((0.5, 1.5, 2.0)))
                    )
                    migrator = cluster.begin_plan(topo)
                    refresh_topology()
                    trace.append(
                        f"step={step} op=mig_open kind=plan "
                        f"label={migrator.shard_id} "
                        f"ranges={len(migrator.ranges)}"
                    )
                elif kind_draw < 0.625 and len(cluster.shards) > 2:
                    sid = rng.choice(sorted(cluster.shards))
                    migrator = cluster.begin_remove_shard(sid)
                    refresh_topology()
                    trace.append(
                        f"step={step} op=mig_open kind=leave shard={sid} "
                        f"ranges={len(migrator.ranges)}"
                    )
                else:
                    migrator = cluster.begin_add_shard()
                    refresh_topology()
                    trace.append(
                        f"step={step} op=mig_open kind=join "
                        f"shard={migrator.shard_id} ranges={len(migrator.ranges)}"
                    )
            elif op == "mig_step":
                if migrator is None or migrator.finished:
                    trace.append(f"step={step} op=mig_step skipped")
                elif not migrator.pending_ranges():
                    trace.append(f"step={step} op=mig_step drained")
                elif migrator.step():
                    done = len(migrator.ranges) - len(migrator.pending_ranges())
                    trace.append(
                        f"step={step} op=mig_step "
                        f"committed={done}/{len(migrator.ranges)}"
                    )
                else:
                    trace.append(f"step={step} op=mig_step blocked")
            elif op == "mig_powerfail":
                # Crash a *participant* of the open hand-off mid-range —
                # the source that just discarded or the destination that
                # just ingested — and hold recovery to invariant 6.
                participants = [
                    sid
                    for sid in (
                        migrator._participants
                        if migrator is not None and not migrator.finished
                        else ()
                    )
                    if sid in cluster.shards and sid not in dead
                ]
                if participants:
                    sid = rng.choice(sorted(participants))
                    store = cluster.shards[sid].store
                    pre = store_image(store)
                    report = cluster.power_fail_shard(sid)
                    post = store_image(store)
                    violations.extend(
                        check_recovery(pre, post, corrupted_tags, sid, repro)
                    )
                    trace.append(
                        f"step={step} op=mig_powerfail shard={sid} "
                        f"replayed={report.records_replayed} "
                        f"marks={report.migrate_marks_replayed}"
                    )
                else:
                    trace.append(f"step={step} op=mig_powerfail skipped")
            elif op == "mig_finish":
                if migrator is None or migrator.finished:
                    trace.append(f"step={step} op=mig_finish skipped")
                elif migrator.pending_ranges():
                    trace.append(f"step={step} op=mig_finish deferred")
                else:
                    fin_kind, fin_sid = migrator.action, migrator.shard_id
                    migrator.finish()
                    refresh_topology()
                    trace.append(
                        f"step={step} op=mig_finish kind={fin_kind} "
                        f"shard={fin_sid} moved={migrator.moved} "
                        f"dropped={migrator.dropped}"
                    )
            elif op == "partition":
                candidates = [s for s in shard_ids if s not in partitioned]
                if len(candidates) > 1:  # never partition the whole cluster
                    sid = rng.choice(candidates)
                    plan.block(client_addr[sid], store_addr[sid])
                    plan.block(store_addr[sid], client_addr[sid])
                    partitioned.add(sid)
                    trace.append(f"step={step} op=partition shard={sid}")
                else:
                    trace.append(f"step={step} op=partition skipped")
            elif op == "heal":
                plan.heal()
                partitioned.clear()
                trace.append(f"step={step} op=heal")
            elif op == "slow":
                sid = rng.choice(shard_ids)
                ticks = rng.randint(1, config.max_delay)
                plan.set_slow(store_addr[sid], ticks)
                trace.append(f"step={step} op=slow shard={sid} ticks={ticks}")
            elif op == "corrupt_blob":
                sid = rng.choice(shard_ids)
                store = cluster.shards[sid].store
                tags = store.stored_tags()
                if tags:
                    tag = tags[target_rng.randrange(len(tags))]
                    store.blobstore.tamper(store.blob_ref_of(tag))
                    corrupted_tags.add(tag)
                    trace.append(
                        f"step={step} op=corrupt_blob shard={sid} "
                        f"tag={tag.hex()[:12]}"
                    )
                else:
                    trace.append(f"step={step} op=corrupt_blob skipped")
            elif op == "corrupt_meta":
                sid = rng.choice(shard_ids)
                store = cluster.shards[sid].store
                tags = store.stored_tags()
                if tags:
                    tag = tags[target_rng.randrange(len(tags))]
                    entry = store.metadata_entry(tag)
                    entry.wrapped_key = corrupt_payload(entry.wrapped_key)
                    trace.append(
                        f"step={step} op=corrupt_meta shard={sid} "
                        f"tag={tag.hex()[:12]}"
                    )
                else:
                    trace.append(f"step={step} op=corrupt_meta skipped")
        except SpeedError as exc:
            # The hardened client path (retry -> failover -> degrade)
            # should absorb every injected fault; an error surfacing to
            # the application is itself a finding.
            violations.append(Violation(
                "liveness",
                f"step {step} op {op} raised {type(exc).__name__}: {exc}",
                repro,
            ))
            trace.append(f"step={step} op={op} error={type(exc).__name__}")
            if op in ("call", "batch"):
                # Keep the value streams of the adaptive and depth-1
                # runs aligned even when a call surfaced an error (a
                # liveness violation is already recorded above): every
                # planned call of this op gets a sentinel slot.
                owed = op_calls - (len(values) - values_before)
                values.extend([b"<error>"] * max(0, owed))

    # -- heal and settle -------------------------------------------------------
    injector.plan = None
    plan.heal()
    for sid in sorted(dead):
        cluster.revive_shard(sid)
    dead.clear()
    session.network.flush_delayed()
    if migrator is not None and not migrator.finished:
        # Every shard is alive again, so no range can stay blocked.
        while migrator.pending_ranges():
            if not migrator.step():
                break
        if migrator.pending_ranges():
            violations.append(Violation(
                "single_owner",
                "open migration could not drain after heal",
                repro,
            ))
        else:
            migrator.finish()
            refresh_topology()
            trace.append(
                f"phase=settle migration={migrator.action} finished "
                f"moved={migrator.moved}"
            )
    for _ in range(3):
        session.flush_puts()
        session.network.flush_delayed()
    trace.append("phase=settle")
    if config.adaptive:
        # The controller's decision log joins the digested trace, so a
        # replay whose decisions diverge anywhere is a digest mismatch.
        controller = session.runtime.engine.controller
        trace.append(
            f"phase=adaptive decisions={controller.decisions} "
            f"changes={controller.changes} shrinks={controller.shrinks} "
            f"caps={controller.migration_capped} "
            f"log={controller.log_digest()[:16]}"
        )

    # -- invariants ------------------------------------------------------------
    if config.migrate and not cluster.ring.in_transition:
        # One anti-entropy pass repairs placement drift from crashes and
        # replicas that were dead mid-migration, then the single-owner
        # invariant must hold exactly.
        from ..cluster.migration import rebalance

        repair = rebalance(cluster)
        trace.append(
            f"phase=rebalance moved={repair.moved} dropped={repair.dropped}"
        )
    if config.migrate:
        violations.extend(check_single_owner(
            session.runtime.acked_put_tags, corrupted_tags, cluster, repro,
        ))
    violations.extend(check_durability(
        session.runtime.acked_put_tags, corrupted_tags, cluster, repro,
    ))
    violations.extend(check_confidentiality(secrets, wire, repro))
    violations.extend(check_conservation(session.stats, repro))
    if config.adaptive:
        # Invariant 8: replay the identical schedule with a fixed
        # depth-1 engine — per-call result bytes must match exactly
        # (depth is a schedule knob, never a semantic one).
        reference = run_scenario(replace(
            config, adaptive=False, pipeline=True, pipeline_depth=1,
        ))
        violations.extend(
            check_adaptive_identical(values, reference.values, repro)
        )

    snap = session.snapshot()
    counters = {key: snap[key] for key in _TRACE_COUNTERS if key in snap}
    for key in sorted(counters):
        trace.append(f"counter {key}={counters[key]}")
    for violation in violations:
        trace.append(str(violation))

    return ScenarioResult(
        config=config, trace=trace, violations=violations, counters=counters,
        values=values,
    )


def run_seeds(seeds, **overrides) -> list[ScenarioResult]:
    """Run one scenario per seed (the CI sweep entry point)."""
    return [run_scenario(SimConfig(seed=seed, **overrides)) for seed in seeds]


def replay_check(config: SimConfig) -> tuple[ScenarioResult, ScenarioResult, bool]:
    """Run a config twice; True iff the traces are byte-identical."""
    first = run_scenario(config)
    second = run_scenario(config)
    return first, second, first.digest == second.digest


def with_steps(config: SimConfig, steps: int) -> SimConfig:
    """A copy of ``config`` truncated to ``steps`` scenario steps."""
    return replace(config, steps=steps)
