"""The global invariants every simulated scenario must uphold.

These are the harness's oracle: whatever the fault schedule did — drops,
duplicates, reorderings, corruption, crashes, partitions — a healed
cluster must satisfy all four.  Each check returns a list of
:class:`Violation`; an empty list means the invariant held.

1. **Durability** — no acknowledged PUT is lost: every tag the store
   accepted (minus those whose only ciphertext the adversary destroyed)
   is still held by at least one shard after healing.
2. **Correctness** — every value a deduplicated call returned equals the
   direct execution of the function (checked inline by the runner; a
   store hit that fails the paper's Fig. 3 verification is recomputed,
   so a wrong value can only come from a protocol bug).
3. **Confidentiality** — no plaintext input or result bytes ever appear
   in any message on the wire (the honest-but-curious adversary taps
   every delivery).
4. **Conservation** — every call is exactly one of hit, miss, or
   degraded: ``hits + misses + degraded == calls``.

With the pipelined engine enabled, a fifth invariant applies:

5. **Coalescing** — every single-flight follower (a result whose
   ``source`` is ``"coalesced"``) observes its leader's exact result:
   within the same batch there is an earlier non-coalesced call with the
   same tag, and the follower's value equals that leader's value.

With ``--power-fail`` enabled (durable stores), a sixth applies at every
power-failure point:

6. **Recovery** — a shard recovered from its write-ahead log serves
   exactly the entries it served before the failure: every pre-crash tag
   is present with byte-identical ciphertext (tags whose blobs the
   adversary tampered in untrusted memory are only required to be
   *present* — recovery restores the original bytes from the durable
   blob area, deliberately diverging from the tampered arena), and no
   tag absent before the crash is resurrected by replay.

With ``--migrate`` enabled (streaming topology changes racing the
workload, crashes landing on migration sources and destinations
mid-range), a seventh applies after healing:

7. **Single owner** — once the scenario heals, finishes any open
   hand-off, and runs one anti-entropy pass, the ring is settled (no
   dual-ownership window survives) and every acknowledged PUT is held by
   exactly the owner set of its tag under the settled ring: no acked
   entry is stranded on a shard that no longer owns it, none is lost
   with its range, and no range is owned twice.

With ``--adaptive`` enabled (the engine's AIMD depth controller sizing
every round), an eighth applies:

8. **Adaptive identity** — depth is a schedule knob, never a semantic
   one: the adaptive run's per-call result bytes are identical to the
   same scenario replayed with a fixed depth-1 engine, and the
   controller's decision sequence is a pure function of seed + schedule
   (its digest is part of the replayed trace, so ``replay_check`` pins
   it byte-for-byte).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough context to chase it."""

    invariant: str
    detail: str
    repro: str = ""

    def __str__(self) -> str:
        line = f"INVARIANT VIOLATED [{self.invariant}]: {self.detail}"
        if self.repro:
            line += f"  (replay: {self.repro})"
        return line


def check_durability(acked_tags, corrupted_tags, cluster, repro: str = "") -> list:
    """No acknowledged PUT lost: every acked tag still has a holder.

    Tags whose blobs the scenario deliberately corrupted are excluded —
    the store *must* evict a blob whose digest no longer matches (that
    is the tamper-detection working), and the adversary may have hit
    every replica.
    """
    violations = []
    for tag in sorted(acked_tags):
        if tag in corrupted_tags:
            continue
        if not cluster.holders_of(tag):
            violations.append(Violation(
                "durability",
                f"acknowledged tag {tag.hex()[:16]} held by no shard after heal",
                repro,
            ))
    return violations


def check_confidentiality(secrets, wire_payloads, repro: str = "") -> list:
    """No plaintext secret bytes on the wire.

    ``secrets`` maps a label (e.g. ``"result[3]"``) to plaintext bytes;
    every tapped payload is scanned for every secret.  Secrets here are
    32+ byte hash outputs, so substring matches cannot be coincidental.
    """
    violations = []
    for label in sorted(secrets):
        secret = secrets[label]
        for payload in wire_payloads:
            if secret and secret in payload:
                violations.append(Violation(
                    "confidentiality",
                    f"plaintext of {label} observed in a wire message "
                    f"({len(payload)} bytes)",
                    repro,
                ))
                break  # one sighting per secret is enough to report
    return violations


def check_coalesced(results, repro: str = "") -> list:
    """Every coalesced follower observes its leader's exact result.

    ``results`` is one batch's list of
    :class:`~repro.core.runtime.DedupResult`.  For each result whose
    ``source`` is ``"coalesced"`` there must exist an earlier result in
    the batch with the same tag that was *not* coalesced (the leader —
    the one that actually took the store round trip, verification, or
    compute), and the follower's value must equal the leader's value.
    """
    violations = []
    leaders: dict[bytes, object] = {}
    for index, result in enumerate(results):
        if result.source != "coalesced":
            leaders.setdefault(result.tag, result)
            continue
        leader = leaders.get(result.tag)
        if leader is None:
            violations.append(Violation(
                "coalescing",
                f"result[{index}] (tag {result.tag.hex()[:16]}) is coalesced "
                "but no earlier non-coalesced call in the batch shares its tag",
                repro,
            ))
        elif leader.value != result.value:
            violations.append(Violation(
                "coalescing",
                f"result[{index}] (tag {result.tag.hex()[:16]}) diverged from "
                f"its leader: {result.value!r} != {leader.value!r}",
                repro,
            ))
    return violations


def check_adaptive_identical(
    adaptive_values, reference_values, repro: str = ""
) -> list:
    """Adaptive depth never changes results (invariant 8 above).

    ``adaptive_values`` is the ordered per-call result-bytes list of
    the ``--adaptive`` run; ``reference_values`` the same scenario
    replayed with a fixed depth-1 engine.  The controller may reshape
    every round, but the value each call returns must be
    byte-identical.
    """
    if len(adaptive_values) != len(reference_values):
        return [Violation(
            "adaptive_identity",
            f"adaptive run produced {len(adaptive_values)} results, "
            f"depth-1 replay produced {len(reference_values)}",
            repro,
        )]
    violations = []
    for index, (got, want) in enumerate(zip(adaptive_values, reference_values)):
        if got != want:
            violations.append(Violation(
                "adaptive_identity",
                f"result[{index}] diverged between the adaptive run and "
                f"the depth-1 replay",
                repro,
            ))
            break  # one divergence pinpoints the bug; avoid spam
    return violations


def store_image(store) -> dict:
    """A shard's observable contents — tag -> exact ciphertext bytes —
    captured before and after a power failure for :func:`check_recovery`."""
    return {
        tag: store.blobstore.get(store.blob_ref_of(tag))
        for tag in store.stored_tags()
    }


def check_recovery(
    pre_image, post_image, corrupted_tags, shard_id: str, repro: str = ""
) -> list:
    """WAL recovery is exact: nothing lost, nothing changed, nothing
    resurrected (invariant 6 above)."""
    violations = []
    for tag in sorted(pre_image):
        if tag not in post_image:
            violations.append(Violation(
                "recovery",
                f"shard {shard_id}: tag {tag.hex()[:16]} lost across "
                "power failure",
                repro,
            ))
        elif tag not in corrupted_tags and post_image[tag] != pre_image[tag]:
            violations.append(Violation(
                "recovery",
                f"shard {shard_id}: tag {tag.hex()[:16]} recovered with "
                "different ciphertext bytes",
                repro,
            ))
    for tag in sorted(post_image):
        if tag not in pre_image:
            violations.append(Violation(
                "recovery",
                f"shard {shard_id}: tag {tag.hex()[:16]} resurrected by "
                "recovery (absent before the power failure)",
                repro,
            ))
    return violations


def check_single_owner(
    acked_tags, corrupted_tags, cluster, repro: str = ""
) -> list:
    """Every acked PUT lives with exactly its owner set under the settled
    ring (invariant 7 above).  Run after healing, completing any open
    migration, and one anti-entropy pass — those steps are what the
    invariant holds the migration machinery to."""
    violations = []
    if cluster.ring.in_transition:
        return [Violation(
            "single_owner",
            "ring still mid-transition after heal and settle",
            repro,
        )]
    for tag in sorted(acked_tags):
        if tag in corrupted_tags:
            continue
        holders = cluster.holders_of(tag)
        owners = sorted(cluster.owners_of(tag))
        if holders != owners:
            violations.append(Violation(
                "single_owner",
                f"acked tag {tag.hex()[:16]} held by {holders} but owned "
                f"by {owners} under the settled ring",
                repro,
            ))
    return violations


def check_conservation(stats, repro: str = "") -> list:
    """hits + misses + degraded == calls, and none negative."""
    total = stats.hits + stats.misses + stats.degraded
    if total == stats.calls and min(
        stats.hits, stats.misses, stats.degraded, stats.calls
    ) >= 0:
        return []
    return [Violation(
        "conservation",
        f"hits({stats.hits}) + misses({stats.misses}) + "
        f"degraded({stats.degraded}) != calls({stats.calls})",
        repro,
    )]
