"""Scenario shrinking: reduce a failing config to a smaller one that
still fails.

When a seed trips an invariant, the raw scenario may be dozens of steps
of interleaved chaos.  :func:`shrink` searches for a *smaller*
still-failing configuration along two axes:

* fewer steps (binary descent on ``steps``);
* fewer fault classes (try disabling crash ops, partition ops,
  corruption ops, and each message-fault rate, keeping any disable that
  preserves the failure).

The result is the minimal configuration the search found, which replays
deterministically via its own ``--seed`` repro string.  ``run`` is
injectable so unit tests can exercise the search with a synthetic
oracle instead of full scenarios.
"""

from __future__ import annotations

from dataclasses import replace

from .runner import SimConfig, run_scenario


def _fails(config: SimConfig, run) -> bool:
    return not run(config).ok


def shrink(config: SimConfig, run=run_scenario, max_runs: int = 40):
    """Return ``(smaller_config, runs_used)`` with the failure preserved.

    ``config`` must already fail under ``run``; if it does not, it is
    returned unchanged.
    """
    runs = 0

    def failing(candidate: SimConfig) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        return _fails(candidate, run)

    if not failing(config):
        return config, runs

    current = config

    # Axis 1: drop whole fault classes (coarsest reduction first).
    for disable in (
        {"power_fail": False},
        {"corruption_ops": False},
        {"partition_ops": False},
        {"crash_ops": False},
        {"corrupt_rate": 0.0},
        {"duplicate_rate": 0.0},
        {"delay_rate": 0.0},
        {"drop_rate": 0.0},
    ):
        candidate = replace(current, **disable)
        if candidate != current and failing(candidate):
            current = candidate

    # Axis 2: binary descent on the step count.
    low, high = 1, current.steps
    while low < high:
        mid = (low + high) // 2
        candidate = replace(current, steps=mid)
        if failing(candidate):
            current = candidate
            high = mid
        else:
            low = mid + 1

    return current, runs
