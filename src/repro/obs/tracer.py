"""Per-request tracing for the SPEED pipeline.

A :class:`Tracer` produces :class:`Span` records for every phase a
deduplicated call moves through — tag derivation, L1 lookup, enclave
transitions, channel crypto, RPC round-trips, router shard selection,
store metadata/blob access — with parent/child links, so one
``Session.execute`` yields a connected tree from the application
runtime down to the shard that served it.

The simulation is single-threaded and synchronous, so context
propagation is a simple stack: the span open when a child starts is its
parent, even across component boundaries (runtime → router → store),
which is exactly the call path of the simulated deployment.

Every span records **two** durations, mirroring the cost model
(:mod:`repro.sgx.cost_model`): honest Python wall time, and simulated
time on whichever machine's clock the instrumented component charges
(pass ``clock=`` when opening the span).  Phase totals are aggregated
incrementally at span finish, so the per-phase latency breakdown
survives even after the bounded span buffer wraps.

Components that are not being observed carry the :data:`NULL_TRACER`
singleton, whose ``span()`` is a reusable no-op — no buffers, no
allocation per call.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator


@dataclass
class Span:
    """One finished phase of one traced request."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    start_wall: float
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


@dataclass
class SpanNode:
    """A span plus its children, for tree rendering and assertions."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    def find(self, name: str) -> list["SpanNode"]:
        """Every descendant (including self) whose span has ``name``."""
        found = [self] if self.span.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found


class _OpenSpan:
    """Handle for a span in progress; finished by the tracer."""

    __slots__ = ("span", "_clock", "_sim0", "_wall0")

    def __init__(self, span: Span, clock, sim0, wall0: float):
        self.span = span
        self._clock = clock
        self._sim0 = sim0
        self._wall0 = wall0

    def set(self, key: str, value) -> None:
        self.span.attrs[key] = value

    def mark(self, status: str) -> None:
        self.span.status = status

    @property
    def span_id(self) -> int:
        return self.span.span_id


class _SpanContext:
    """Context manager entering/finishing one span on a tracer."""

    __slots__ = ("_tracer", "_name", "_clock", "_attrs", "_open")

    def __init__(self, tracer: "Tracer", name: str, clock, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._clock = clock
        self._attrs = attrs
        self._open: _OpenSpan | None = None

    def __enter__(self) -> _OpenSpan:
        self._open = self._tracer._start(self._name, self._clock, self._attrs)
        return self._open

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self._open is not None
        if exc_type is not None and self._open.span.status == "ok":
            self._open.mark("error")
            self._open.set("error", exc_type.__name__)
        self._tracer._finish(self._open)
        return False


class _NullSpan:
    """Shared no-op handle: enter/exit/set/mark all do nothing."""

    __slots__ = ()
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value) -> None:
        pass

    def mark(self, status: str) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: the default collaborator for every component.

    Its ``span()`` hands back one shared no-op context manager, so the
    instrumented hot paths stay branch-free and allocation-free when
    nobody is watching.
    """

    enabled = False

    def span(self, name: str, clock=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, clock=None, **attrs) -> None:
        return None

    @property
    def current_span_id(self) -> int | None:
        return None

    @property
    def current_trace_id(self) -> int | None:
        return None


NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class SlowCall:
    """One slow-call-log entry (a finished span over the threshold)."""

    name: str
    trace_id: int
    span_id: int
    wall_seconds: float
    sim_seconds: float
    attrs: dict


class Tracer:
    """Collects spans into bounded buffers and aggregates phase totals.

    Parameters
    ----------
    max_spans:
        Ring-buffer capacity for finished spans; older spans fall off
        but their contribution to :meth:`phase_breakdown` is retained.
    slow_sim_threshold_s / slow_wall_threshold_s:
        A finished span whose simulated (resp. wall) duration exceeds
        the threshold lands in :attr:`slow_log` (also bounded).
    """

    enabled = True

    def __init__(
        self,
        max_spans: int = 50_000,
        slow_sim_threshold_s: float | None = None,
        slow_wall_threshold_s: float | None = None,
        slow_log_entries: int = 256,
    ):
        self._spans: deque[Span] = deque(maxlen=max_spans)
        # Each thread gets its own span stack: context propagation stays
        # a stack discipline per thread, and concurrent spans never see
        # each other as parents.  Shared buffers (ring buffer, phase
        # totals, id allocation, slow log) are guarded by one lock.
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_span_id = 1
        self._next_trace_id = 1
        self._last_trace_id: int | None = None
        # phase name -> [count, wall_seconds, sim_seconds, errors]
        self._phase_totals: dict[str, list] = {}
        self._slow_sim = slow_sim_threshold_s
        self._slow_wall = slow_wall_threshold_s
        self.slow_log: deque[SlowCall] = deque(maxlen=slow_log_entries)

    @property
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording -----------------------------------------------------------
    def span(self, name: str, clock=None, **attrs) -> _SpanContext:
        """Open one span; use as a context manager.

        ``clock`` is the :class:`~repro.sgx.cost_model.SimClock` of the
        machine doing the work, so the span's ``sim_seconds`` reflects
        simulated time on *that* machine.
        """
        return _SpanContext(self, name, clock, attrs)

    def event(self, name: str, clock=None, **attrs) -> Span:
        """Record a zero-duration span (a point event like a failover)."""
        open_span = self._start(name, clock, attrs)
        self._finish(open_span)
        return open_span.span

    def _start(self, name: str, clock, attrs: dict) -> _OpenSpan:
        stack = self._stack
        if stack:
            parent = stack[-1].span
            trace_id = parent.trace_id
            parent_id = parent.span_id
            with self._lock:
                span_id = self._next_span_id
                self._next_span_id += 1
        else:
            parent_id = None
            with self._lock:
                trace_id = self._next_trace_id
                self._next_trace_id += 1
                self._last_trace_id = trace_id
                span_id = self._next_span_id
                self._next_span_id += 1
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            start_wall=perf_counter(),
            attrs=attrs,
        )
        open_span = _OpenSpan(
            span, clock, clock.snapshot() if clock is not None else None, span.start_wall
        )
        stack.append(open_span)
        return open_span

    def _finish(self, open_span: _OpenSpan) -> None:
        stack = self._stack
        if not stack or stack[-1] is not open_span:
            # Mis-nested finish (a span leaked across a raise the caller
            # swallowed): unwind to it so the stack stays consistent.
            while stack and stack[-1] is not open_span:
                stack.pop()
        if stack:
            stack.pop()
        span = open_span.span
        span.wall_seconds = perf_counter() - open_span._wall0
        if open_span._clock is not None and open_span._sim0 is not None:
            clock = open_span._clock
            span.sim_seconds = clock.since(open_span._sim0) / clock.params.cpu_freq_hz
        slow = (self._slow_sim is not None and span.sim_seconds > self._slow_sim) or (
            self._slow_wall is not None and span.wall_seconds > self._slow_wall
        )
        with self._lock:
            self._spans.append(span)
            totals = self._phase_totals.setdefault(span.name, [0, 0.0, 0.0, 0])
            totals[0] += 1
            totals[1] += span.wall_seconds
            totals[2] += span.sim_seconds
            if span.status != "ok":
                totals[3] += 1
            if slow:
                self.slow_log.append(
                    SlowCall(
                        name=span.name,
                        trace_id=span.trace_id,
                        span_id=span.span_id,
                        wall_seconds=span.wall_seconds,
                        sim_seconds=span.sim_seconds,
                        attrs=dict(span.attrs),
                    )
                )

    # -- context -------------------------------------------------------------
    @property
    def current_span_id(self) -> int | None:
        return self._stack[-1].span.span_id if self._stack else None

    @property
    def current_trace_id(self) -> int | None:
        return self._stack[-1].span.trace_id if self._stack else None

    @property
    def last_trace_id(self) -> int | None:
        """Trace id of the most recently *started* root span."""
        return self._last_trace_id

    # -- reading -------------------------------------------------------------
    def spans(self, trace_id: int | None = None) -> list[Span]:
        """Finished spans, oldest first; optionally one trace only."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is None:
            return spans
        return [s for s in spans if s.trace_id == trace_id]

    def last_trace(self) -> list[Span]:
        """All finished spans of the most recent trace."""
        if self._last_trace_id is None:
            return []
        return self.spans(self._last_trace_id)

    def trace_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def tree(self, trace_id: int | None = None) -> list[SpanNode]:
        """Parent/child-linked roots for one trace (default: the last)."""
        if trace_id is None:
            trace_id = self._last_trace_id
        spans = self.spans(trace_id)
        return build_tree(spans)

    def phase_breakdown(self) -> dict[str, dict]:
        """Cumulative per-phase latency totals over the tracer's life.

        ``{name: {count, wall_seconds, sim_seconds, errors}}`` — includes
        the contribution of spans the bounded buffer has already dropped.
        """
        with self._lock:
            items = [(name, list(totals)) for name, totals in self._phase_totals.items()]
        return {
            name: {
                "count": totals[0],
                "wall_seconds": totals[1],
                "sim_seconds": totals[2],
                "errors": totals[3],
            }
            for name, totals in sorted(items)
        }

    def reset(self) -> None:
        """Drop finished spans, totals, and the slow log (open spans stay)."""
        with self._lock:
            self._spans.clear()
            self._phase_totals.clear()
            self.slow_log.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())


def build_tree(spans: list[Span]) -> list[SpanNode]:
    """Link a flat span list into roots (parents precede children)."""
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def find_spans(spans: list[Span], name: str) -> list[Span]:
    """All spans named ``name`` (convenience for tests and tooling)."""
    return [s for s in spans if s.name == name]
