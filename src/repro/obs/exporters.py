"""Exporters: span trees and metrics as JSON lines or human tables.

Two audiences:

* machines — :func:`spans_to_jsonl` / :func:`write_spans_jsonl` emit one
  JSON object per span, and :func:`phase_breakdown` aggregates any span
  list into the per-phase latency dict the benchmark JSON embeds;
* humans — :func:`format_trace` renders a parent/child-indented table
  of one trace, :func:`format_phase_breakdown` and
  :func:`format_metrics` render aligned counter tables.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping, Sequence

from .tracer import Span, SpanNode, build_tree


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per line per span, in the given order."""
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans)


def write_spans_jsonl(spans: Sequence[Span], path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(spans_to_jsonl(spans))
    return path


def phase_breakdown(spans: Sequence[Span]) -> dict[str, dict]:
    """Aggregate a span list per phase name.

    Same shape as :meth:`~repro.obs.tracer.Tracer.phase_breakdown`, but
    computed from an explicit list (e.g. one trace, or the spans between
    two benchmark marks).
    """
    totals: dict[str, list] = {}
    for span in spans:
        entry = totals.setdefault(span.name, [0, 0.0, 0.0, 0])
        entry[0] += 1
        entry[1] += span.wall_seconds
        entry[2] += span.sim_seconds
        if span.status != "ok":
            entry[3] += 1
    return {
        name: {
            "count": entry[0],
            "wall_seconds": entry[1],
            "sim_seconds": entry[2],
            "errors": entry[3],
        }
        for name, entry in sorted(totals.items())
    }


def diff_breakdown(before: Mapping[str, dict], after: Mapping[str, dict]) -> dict[str, dict]:
    """Per-phase delta between two :meth:`Tracer.phase_breakdown` reads
    (used to attribute cumulative totals to one benchmark row)."""
    out: dict[str, dict] = {}
    for name, totals in after.items():
        base = before.get(name, {})
        delta = {
            key: totals[key] - base.get(key, 0 if key in ("count", "errors") else 0.0)
            for key in ("count", "wall_seconds", "sim_seconds", "errors")
        }
        if delta["count"] or delta["errors"]:
            out[name] = delta
    return out


def _format_rows(headers: list[str], rows: list[list[str]], title: str | None) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _attr_summary(span: Span, limit: int = 48) -> str:
    parts = []
    for key, value in span.attrs.items():
        if isinstance(value, bytes):
            value = value[:4].hex() + "…"
        parts.append(f"{key}={value}")
    text = " ".join(parts)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def format_trace(spans: Sequence[Span], title: str | None = None) -> str:
    """Render one trace as an indented span table.

    Indentation follows parent/child links; durations are shown in both
    simulated and wall milliseconds.
    """
    rows: list[list[str]] = []

    def walk(node: SpanNode, depth: int) -> None:
        span = node.span
        rows.append([
            "  " * depth + span.name,
            f"{span.sim_seconds * 1e3:.3f}",
            f"{span.wall_seconds * 1e3:.3f}",
            span.status,
            _attr_summary(span),
        ])
        for child in node.children:
            walk(child, depth + 1)

    for root in build_tree(list(spans)):
        walk(root, 0)
    return _format_rows(["span", "sim ms", "wall ms", "status", "attrs"], rows, title)


def format_phase_breakdown(breakdown: Mapping[str, dict], title: str | None = None) -> str:
    rows = [
        [
            name,
            str(entry["count"]),
            f"{entry['sim_seconds'] * 1e3:.3f}",
            f"{entry['wall_seconds'] * 1e3:.3f}",
            f"{entry['sim_seconds'] / entry['count'] * 1e6:.1f}" if entry["count"] else "-",
            str(entry["errors"]),
        ]
        for name, entry in breakdown.items()
    ]
    return _format_rows(
        ["phase", "count", "sim ms", "wall ms", "sim us/op", "errors"],
        rows, title or "Per-phase latency breakdown",
    )


def format_metrics(snapshot: Mapping[str, float], title: str | None = None) -> str:
    rows = []
    for key in sorted(snapshot):
        value = snapshot[key]
        rows.append([key, f"{value:.6g}" if isinstance(value, float) else str(value)])
    return _format_rows(["metric", "value"], rows, title or "Metrics")
