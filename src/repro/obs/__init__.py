"""repro.obs — end-to-end observability for the SPEED pipeline.

Tracing (:class:`Tracer`, :class:`Span`), unified metrics
(:class:`MetricsRegistry` absorbing every component's counters under
``component.metric`` keys), slow-call logging, and exporters (JSON
lines, human tables, per-phase latency breakdowns).

The blessed way to get a wired-up tracer is :func:`repro.connect` — the
session attaches one tracer to the runtime, enclaves, channels, router,
and stores so a single ``execute`` yields one connected span tree.
"""

from .exporters import (
    diff_breakdown,
    format_metrics,
    format_phase_breakdown,
    format_trace,
    phase_breakdown,
    spans_to_jsonl,
    write_spans_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, namespaced, strip_aliases
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SlowCall,
    Span,
    SpanNode,
    Tracer,
    build_tree,
    find_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SlowCall",
    "Span",
    "SpanNode",
    "Tracer",
    "build_tree",
    "diff_breakdown",
    "find_spans",
    "format_metrics",
    "format_phase_breakdown",
    "format_trace",
    "namespaced",
    "phase_breakdown",
    "spans_to_jsonl",
    "strip_aliases",
    "write_spans_jsonl",
]
