"""Unified metrics for every SPEED component.

Before this module each component kept its own stats dataclass with its
own ``snapshot()`` shape (``RuntimeStats``, ``StoreStats``,
``RouterStats``).  A :class:`MetricsRegistry` absorbs them all behind
one contract:

* **instruments** — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` created on demand by dotted name
  (``"channel.encrypt_bytes"``);
* **sources** — live components registered with
  :meth:`MetricsRegistry.register_source`; their snapshots are folded in
  under ``<component>.<metric>`` keys at read time, so the registry
  always reflects current counters without copying on every increment;
* one :meth:`snapshot` / :meth:`to_json` for everything.

Key normalization: canonical keys are ``<component>.<metric>`` in
snake_case, plural nouns for event counters, ``*_seconds_total`` for
accumulated time, ``*_rate`` for ratios.  Legacy un-namespaced keys
remain available as aliases on the component snapshots for one release
(see :func:`namespaced`).
"""

from __future__ import annotations

import json
import threading
from typing import Callable, Mapping


class Counter:
    """Monotonic event counter.

    ``inc`` is a read-modify-write, so it holds a lock: the pipelined
    engine's thread-stress suite increments the same counter from many
    threads and expects exact totals.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """Last-write-wins numeric level."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus a bounded
    sample reservoir for quantile estimates."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_max_samples", "_lock")

    def __init__(self, max_samples: int = 1024) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._max_samples = max_samples
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                # Deterministic decimation: overwrite round-robin so the
                # reservoir keeps tracking the stream without randomness
                # (the simulation is reproducible by construction).
                self._samples[self.count % self._max_samples] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


def namespaced(component: str, metrics: Mapping[str, float],
               renames: Mapping[str, str] | None = None) -> dict:
    """Fold a legacy flat snapshot into canonical ``component.metric``
    keys *plus* the legacy keys as aliases (one-release migration path).

    ``renames`` maps legacy names to their normalized metric names where
    the legacy spelling was inconsistent (mixed tense/units).
    """
    renames = renames or {}
    out: dict = {}
    for key, value in metrics.items():
        out[key] = value  # legacy alias
        out[f"{component}.{renames.get(key, key)}"] = value
    return out


def strip_aliases(snapshot: Mapping[str, float]) -> dict:
    """Keep only canonical dotted keys of a component snapshot."""
    return {k: v for k, v in snapshot.items() if "." in k}


class MetricsRegistry:
    """One place to read every counter in a deployment."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], Mapping[str, float]]] = {}
        # Guards registry *structure* (instrument/source creation and the
        # snapshot walk); instruments carry their own locks for updates.
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------------
    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    # -- sources -------------------------------------------------------------
    def register_source(
        self, component: str, source: Callable[[], Mapping[str, float]]
    ) -> None:
        """Attach a live component; ``source()`` must return a flat
        numeric dict.  Dotted keys are taken as already canonical;
        un-dotted keys (legacy aliases) are folded in under
        ``<component>.<key>`` only when no canonical twin exists."""
        with self._lock:
            self._sources[component] = source

    def unregister_source(self, component: str) -> None:
        with self._lock:
            self._sources.pop(component, None)

    # -- reading -------------------------------------------------------------
    def snapshot(self) -> dict:
        """One flat, JSON-ready dict over all instruments and sources,
        canonical ``component.metric`` keys only.

        Safe to call while other threads create instruments: the
        registry dicts are copied under the lock, then read lock-free
        (each instrument's own lock keeps its numbers consistent).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            sources = dict(self._sources)
        out: dict = {}
        for name, counter in counters.items():
            out[name] = counter.value
        for name, gauge in gauges.items():
            out[name] = gauge.value
        for name, histogram in histograms.items():
            for stat, value in histogram.summary().items():
                out[f"{name}.{stat}"] = value
        for component, source in sources.items():
            raw = source()
            for key, value in raw.items():
                if "." in key:
                    out[key] = value
            for key, value in raw.items():
                if "." not in key:
                    out.setdefault(f"{component}.{key}", value)
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
