"""SPEED: Accelerating Enclave Applications via Secure Deduplication.

A faithful Python reproduction of the ICDCS 2019 system by Cui, Duan,
Qin, Wang, and Zhou, built on a simulated SGX substrate (see DESIGN.md).

Quickstart — :func:`connect` is the single entry point; it wires the
whole topology (simulated SGX machines, ResultStore or shard cluster,
attested channels) plus the session-wide tracer and metrics registry::

    import repro

    session = repro.connect()          # or repro.connect(shards=4)

    @session.mark(version="1.0")
    def deflate(data: bytes) -> bytes:
        ...

    deflate(payload)                   # first call computes + stores
    deflate(payload)                   # second call is a secure cache hit

    print(session.trace_table())       # the call's connected span tree
    print(session.to_json(indent=2))   # every component counter, one dict

Ported trusted libraries register the same way as before, through
:class:`TrustedLibrary` / :class:`FunctionDescription`, and execute via
``session.execute(description, *args)`` or ``session.deduplicable()``.

The lower-level constructors (:class:`Deployment`,
:class:`ClusterDeployment`, :class:`DedupRuntime`, ...) remain exported
for existing code and tests, but direct construction of the deployment
classes is deprecated in favour of :func:`connect`.
"""

from . import obs
from .cluster import (
    ClusterConfig,
    ClusterRouter,
    ShardRing,
    StoreCluster,
    TopologyPlan,
)
from .core import (
    CrossAppScheme,
    Deduplicable,
    DedupResult,
    DedupRuntime,
    FunctionDescription,
    PlaintextScheme,
    RuntimeConfig,
    SingleKeyScheme,
    TrustedLibrary,
    TrustedLibraryRegistry,
)
from .deployment import Application, ClusterDeployment, Deployment
from .errors import (
    ChannelError,
    DedupError,
    MigrationError,
    MigrationInProgressError,
    MigrationIngestError,
    MigrationStateError,
    NoLiveOwnerError,
    QuotaExceededError,
    RollbackError,
    SpeedError,
    StoreError,
    TransportError,
    VerificationError,
    error_codes,
    error_for_code,
)
from .engine import EngineConfig, PipelineEngine
from .obs import MetricsRegistry, Span, Tracer
from .report import ReportMixin
from .session import Session, TopologyReport, connect
from .sgx import CostParams, SgxPlatform
from .store import QuotaPolicy, ResultStore, StoreConfig

__version__ = "1.1.0"

__all__ = [
    "Application",
    "ChannelError",
    "ClusterConfig",
    "ClusterDeployment",
    "ClusterRouter",
    "CostParams",
    "CrossAppScheme",
    "Deduplicable",
    "DedupError",
    "DedupResult",
    "DedupRuntime",
    "Deployment",
    "EngineConfig",
    "FunctionDescription",
    "MetricsRegistry",
    "MigrationError",
    "MigrationInProgressError",
    "MigrationIngestError",
    "MigrationStateError",
    "NoLiveOwnerError",
    "PipelineEngine",
    "PlaintextScheme",
    "QuotaExceededError",
    "QuotaPolicy",
    "ReportMixin",
    "ResultStore",
    "RollbackError",
    "RuntimeConfig",
    "Session",
    "SgxPlatform",
    "ShardRing",
    "SingleKeyScheme",
    "Span",
    "SpeedError",
    "StoreCluster",
    "StoreConfig",
    "StoreError",
    "TopologyPlan",
    "TopologyReport",
    "Tracer",
    "TransportError",
    "TrustedLibrary",
    "TrustedLibraryRegistry",
    "VerificationError",
    "__version__",
    "connect",
    "error_codes",
    "error_for_code",
    "obs",
]
