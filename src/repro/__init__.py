"""SPEED: Accelerating Enclave Applications via Secure Deduplication.

A faithful Python reproduction of the ICDCS 2019 system by Cui, Duan,
Qin, Wang, and Zhou, built on a simulated SGX substrate (see DESIGN.md).

Quickstart::

    from repro import Deployment, FunctionDescription, TrustedLibrary, TrustedLibraryRegistry

    libs = TrustedLibraryRegistry()
    libs.register(TrustedLibrary("zlib", "1.2.11").add("bytes deflate(bytes)", my_deflate))

    deployment = Deployment()
    app = deployment.create_application("scanner", libs)
    dedup_deflate = app.deduplicable(FunctionDescription("zlib", "1.2.11", "bytes deflate(bytes)"))
    compressed = dedup_deflate(data)   # first call computes + stores
    compressed = dedup_deflate(data)   # second call is a secure cache hit
"""

from .cluster import ClusterConfig, ClusterRouter, ShardRing, StoreCluster
from .core import (
    CrossAppScheme,
    Deduplicable,
    DedupRuntime,
    FunctionDescription,
    PlaintextScheme,
    RuntimeConfig,
    SingleKeyScheme,
    TrustedLibrary,
    TrustedLibraryRegistry,
)
from .deployment import Application, ClusterDeployment, Deployment
from .errors import SpeedError
from .sgx import CostParams, SgxPlatform
from .store import QuotaPolicy, ResultStore, StoreConfig

__version__ = "1.0.0"

__all__ = [
    "Application",
    "ClusterConfig",
    "ClusterDeployment",
    "ClusterRouter",
    "CostParams",
    "CrossAppScheme",
    "Deduplicable",
    "DedupRuntime",
    "Deployment",
    "FunctionDescription",
    "PlaintextScheme",
    "QuotaPolicy",
    "ResultStore",
    "RuntimeConfig",
    "SgxPlatform",
    "ShardRing",
    "StoreCluster",
    "SingleKeyScheme",
    "SpeedError",
    "StoreConfig",
    "TrustedLibrary",
    "TrustedLibraryRegistry",
    "__version__",
]
