"""The four case-study applications of the paper's evaluation (§V).

Each subpackage is a from-scratch substitute for the native library the
paper ported into SGX: :mod:`.sift` (libsiftpp), :mod:`.compress`
(zlib), :mod:`.pattern` (libpcre + Snort rules), and :mod:`.mapreduce`
(a MapReduce library + BoW).  :mod:`.registry` assembles them into
trusted libraries ready to link into application enclaves.
"""

from . import compress, mapreduce, pattern, sift
from .registry import (
    CaseStudy,
    bow_case_study,
    compress_case_study,
    pattern_case_study,
    sift_case_study,
)

__all__ = [
    "CaseStudy",
    "bow_case_study",
    "compress",
    "compress_case_study",
    "mapreduce",
    "pattern",
    "pattern_case_study",
    "sift",
    "sift_case_study",
]
