"""Case-study wiring: trusted libraries + descriptions + parsers.

This module is the Python rendering of the paper's Fig. 4 — the four
"Deduplicable versions" of the case-study functions.  Each
:class:`CaseStudy` bundles the trusted library an application must link,
the :class:`~repro.core.description.FunctionDescription` the developer
writes, the parsers for input/result, and the *native factor* used by
the simulated clock (how much faster the paper's C/C++ library runs than
our pure-Python substitute; see DESIGN.md §2 — these are order-of-
magnitude calibrations, recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import compress as _compress
from . import mapreduce as _mapreduce
from . import pattern as _pattern
from . import sift as _sift
from .pattern.ruleset import Rule
from ..core.deduplicable import Deduplicable
from ..core.description import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry
from ..core.serialization import (
    BytesParser,
    IntParser,
    ListParser,
    MappingParser,
    NdarrayParser,
    Parser,
    TextParser,
)
from ..deployment import Application


@dataclass(frozen=True)
class CaseStudy:
    """Everything needed to mark one case-study function with SPEED."""

    name: str
    library: TrustedLibrary
    description: FunctionDescription
    input_parser: Parser
    result_parser: Parser
    native_factor: float
    func: Callable

    def register_into(self, registry: TrustedLibraryRegistry) -> None:
        registry.register(self.library)

    def deduplicable(self, app: Application) -> Deduplicable:
        """Fig. 4, line 1: create the Deduplicable version."""
        return app.deduplicable(
            self.description,
            input_parser=self.input_parser,
            result_parser=self.result_parser,
            native_factor=self.native_factor,
        )


def sift_case_study() -> CaseStudy:
    """Case 1: image feature extraction via libsiftpp."""
    library = TrustedLibrary(_sift.LIBRARY_FAMILY, _sift.LIBRARY_VERSION)
    library.add(_sift.FUNCTION_SIGNATURE, _sift.sift)
    return CaseStudy(
        name="feature-extraction",
        library=library,
        description=FunctionDescription(
            _sift.LIBRARY_FAMILY, _sift.LIBRARY_VERSION, _sift.FUNCTION_SIGNATURE
        ),
        input_parser=NdarrayParser(),
        result_parser=NdarrayParser(),
        # numpy-based SIFT is on par with the (notoriously slow)
        # native libsiftpp; calibrated against Fig. 5(a)'s regime.
        native_factor=1.0,
        func=_sift.sift,
    )


def compress_case_study() -> CaseStudy:
    """Case 2: data compression via zlib's deflate."""
    library = TrustedLibrary(_compress.LIBRARY_FAMILY, _compress.LIBRARY_VERSION)
    library.add(_compress.FUNCTION_SIGNATURE, _compress.deflate)
    return CaseStudy(
        name="data-compression",
        library=library,
        description=FunctionDescription(
            _compress.LIBRARY_FAMILY, _compress.LIBRARY_VERSION,
            _compress.FUNCTION_SIGNATURE,
        ),
        input_parser=BytesParser(),
        result_parser=BytesParser(),
        # Pure-Python LZ77+Huffman vs. C zlib (~0.17 vs ~18 MB/s).
        native_factor=110.0,
        func=_compress.deflate,
    )


def pattern_case_study(rules: list[Rule]) -> CaseStudy:
    """Case 3: packet scanning via libpcre over a compiled ruleset.

    The ruleset fingerprint is folded into the description's version so
    results never leak across different rule databases.
    """
    scan, version = _pattern.make_scan_function(rules)
    library = TrustedLibrary(_pattern.LIBRARY_FAMILY, version)
    library.add(_pattern.FUNCTION_SIGNATURE, scan)
    return CaseStudy(
        name="pattern-matching",
        library=library,
        description=FunctionDescription(
            _pattern.LIBRARY_FAMILY, version, _pattern.FUNCTION_SIGNATURE
        ),
        input_parser=BytesParser(),
        result_parser=ListParser(IntParser()),
        # Our Aho-Corasick prefilter beats the paper's per-rule pcre loop
        # algorithmically; the factor folds both effects together.
        native_factor=2.0,
        func=scan,
    )


def bow_case_study() -> CaseStudy:
    """Case 4: bag-of-words via the MapReduce framework."""
    library = TrustedLibrary(_mapreduce.LIBRARY_FAMILY, _mapreduce.LIBRARY_VERSION)
    library.add(_mapreduce.FUNCTION_SIGNATURE, _mapreduce.bag_of_words)
    return CaseStudy(
        name="bow-computation",
        library=library,
        description=FunctionDescription(
            _mapreduce.LIBRARY_FAMILY, _mapreduce.LIBRARY_VERSION,
            _mapreduce.FUNCTION_SIGNATURE,
        ),
        input_parser=TextParser(),
        result_parser=MappingParser(IntParser()),
        # Python dict shuffle vs. the C++ MapReduce library.
        native_factor=6.0,
        func=_mapreduce.bag_of_words,
    )
