"""Orientation assignment and 128-D descriptor extraction (Lowe §5-6).

Orientations come from a 36-bin gradient histogram around the keypoint;
descriptors are the classic 4x4 spatial grid of 8-bin orientation
histograms, rotated to the keypoint orientation, normalised, clamped at
0.2, renormalised, and quantised to uint8.
"""

from __future__ import annotations

import numpy as np

from .gaussian import gradients
from .keypoints import Keypoint
from .pyramid import ScaleSpace

N_ORIENTATION_BINS = 36
DESCRIPTOR_GRID = 4
DESCRIPTOR_BINS = 8
DESCRIPTOR_SIZE = DESCRIPTOR_GRID * DESCRIPTOR_GRID * DESCRIPTOR_BINS


def _octave_gradients(space: ScaleSpace, cache: dict, octave: int, interval: int):
    key = (octave, interval)
    if key not in cache:
        cache[key] = gradients(space.gaussians[octave][interval])
    return cache[key]


def assign_orientation(
    space: ScaleSpace, keypoint: Keypoint, cache: dict
) -> float:
    """Dominant gradient orientation (radians in [-pi, pi))."""
    magnitude, orientation = _octave_gradients(space, cache, keypoint.octave, keypoint.interval)
    h, w = magnitude.shape
    scale_factor = 2.0**keypoint.octave
    cy = int(round(keypoint.y / scale_factor))
    cx = int(round(keypoint.x / scale_factor))
    sigma = 1.5 * keypoint.sigma / scale_factor
    radius = max(2, int(round(3.0 * sigma)))

    y0, y1 = max(1, cy - radius), min(h - 1, cy + radius + 1)
    x0, x1 = max(1, cx - radius), min(w - 1, cx + radius + 1)
    if y0 >= y1 or x0 >= x1:
        return 0.0
    mag = magnitude[y0:y1, x0:x1]
    ori = orientation[y0:y1, x0:x1]
    yy, xx = np.mgrid[y0:y1, x0:x1]
    weight = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2.0 * sigma * sigma))

    bins = ((ori + np.pi) / (2 * np.pi) * N_ORIENTATION_BINS).astype(np.int64) % N_ORIENTATION_BINS
    hist = np.bincount(bins.ravel(), weights=(mag * weight).ravel(), minlength=N_ORIENTATION_BINS)
    # Circular smoothing stabilises the peak.
    smoothed = (np.roll(hist, 1) + hist + np.roll(hist, -1)) / 3.0
    peak = int(np.argmax(smoothed))
    # Parabolic interpolation of the peak bin.
    left = smoothed[(peak - 1) % N_ORIENTATION_BINS]
    right = smoothed[(peak + 1) % N_ORIENTATION_BINS]
    denom = left - 2 * smoothed[peak] + right
    shift = 0.0 if abs(denom) < 1e-12 else 0.5 * (left - right) / denom
    angle = (peak + shift + 0.5) / N_ORIENTATION_BINS * 2 * np.pi - np.pi
    return float(angle)


def compute_descriptor(
    space: ScaleSpace, keypoint: Keypoint, angle: float, cache: dict
) -> np.ndarray:
    """The 128-byte SIFT descriptor for one oriented keypoint."""
    magnitude, orientation = _octave_gradients(space, cache, keypoint.octave, keypoint.interval)
    h, w = magnitude.shape
    scale_factor = 2.0**keypoint.octave
    cy = keypoint.y / scale_factor
    cx = keypoint.x / scale_factor
    sigma = keypoint.sigma / scale_factor
    # Each of the 4x4 cells spans 3·sigma pixels.
    cell = 3.0 * sigma
    radius = int(round(cell * (DESCRIPTOR_GRID + 1) * np.sqrt(2) / 2.0))
    radius = max(4, min(radius, max(h, w)))

    y0, y1 = max(1, int(cy) - radius), min(h - 1, int(cy) + radius + 1)
    x0, x1 = max(1, int(cx) - radius), min(w - 1, int(cx) + radius + 1)
    hist = np.zeros((DESCRIPTOR_GRID, DESCRIPTOR_GRID, DESCRIPTOR_BINS), dtype=np.float64)
    if y0 >= y1 or x0 >= x1:
        return hist.ravel().astype(np.uint8)

    mag = magnitude[y0:y1, x0:x1]
    ori = orientation[y0:y1, x0:x1] - angle
    yy, xx = np.mgrid[y0:y1, x0:x1]
    dy = (yy - cy).astype(np.float64)
    dx = (xx - cx).astype(np.float64)
    # Rotate sample offsets into the keypoint frame.
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    ry = -sin_a * dx + cos_a * dy
    rx = cos_a * dx + sin_a * dy
    # Continuous cell coordinates in [0, 4).
    cell_y = ry / cell + DESCRIPTOR_GRID / 2.0 - 0.5
    cell_x = rx / cell + DESCRIPTOR_GRID / 2.0 - 0.5
    valid = (
        (cell_y > -1) & (cell_y < DESCRIPTOR_GRID)
        & (cell_x > -1) & (cell_x < DESCRIPTOR_GRID)
    )
    if not np.any(valid):
        return hist.ravel().astype(np.uint8)

    weight = np.exp(-(rx**2 + ry**2) / (2.0 * (0.5 * DESCRIPTOR_GRID * cell) ** 2))
    contributions = (mag * weight)[valid]
    by = np.clip(np.round(cell_y[valid]).astype(np.int64), 0, DESCRIPTOR_GRID - 1)
    bx = np.clip(np.round(cell_x[valid]).astype(np.int64), 0, DESCRIPTOR_GRID - 1)
    bo = (
        ((ori[valid] + 2 * np.pi) % (2 * np.pi)) / (2 * np.pi) * DESCRIPTOR_BINS
    ).astype(np.int64) % DESCRIPTOR_BINS
    np.add.at(hist, (by, bx, bo), contributions)

    vec = hist.ravel()
    norm = np.linalg.norm(vec)
    if norm > 1e-12:
        vec = vec / norm
    vec = np.minimum(vec, 0.2)
    norm = np.linalg.norm(vec)
    if norm > 1e-12:
        vec = vec / norm
    return np.clip(np.round(vec * 512.0), 0, 255).astype(np.uint8)
