"""The top-level SIFT entry point — the ``sift(·)`` of libsiftpp.

The paper's Case 1 deduplicates the ``sift()`` call of libsiftpp, a
lightweight C++ SIFT.  This module is our from-scratch equivalent: it
takes a grayscale image and returns an ``(N, 132)`` float64 array whose
rows are ``(x, y, sigma, orientation, descriptor[128])`` — deterministic
for a given input, which is what computation deduplication requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .descriptors import DESCRIPTOR_SIZE, assign_orientation, compute_descriptor
from .keypoints import DetectorConfig, detect_keypoints
from .pyramid import PyramidConfig, build_scale_space

LIBRARY_FAMILY = "libsiftpp"
LIBRARY_VERSION = "0.9.0"
FUNCTION_SIGNATURE = "ndarray sift(ndarray image)"


@dataclass(frozen=True)
class SiftConfig:
    pyramid: PyramidConfig = PyramidConfig()
    detector: DetectorConfig = DetectorConfig()
    max_keypoints: int = 2000


def sift(image: np.ndarray, config: SiftConfig | None = None) -> np.ndarray:
    """Extract SIFT keypoints + descriptors from a grayscale image.

    Returns an ``(N, 4 + 128)`` float64 array sorted in a canonical
    (deterministic) order.  ``N`` may be zero for featureless inputs.
    """
    config = config or SiftConfig()
    space = build_scale_space(image, config.pyramid)
    keypoints = detect_keypoints(space, config.detector)
    if config.max_keypoints and len(keypoints) > config.max_keypoints:
        keypoints = sorted(keypoints, key=lambda p: -p.response)[: config.max_keypoints]
        keypoints.sort(key=lambda p: (p.y, p.x, p.sigma))

    gradient_cache: dict = {}
    rows = np.zeros((len(keypoints), 4 + DESCRIPTOR_SIZE), dtype=np.float64)
    for i, keypoint in enumerate(keypoints):
        angle = assign_orientation(space, keypoint, gradient_cache)
        descriptor = compute_descriptor(space, keypoint, angle, gradient_cache)
        rows[i, 0] = keypoint.x
        rows[i, 1] = keypoint.y
        rows[i, 2] = keypoint.sigma
        rows[i, 3] = angle
        rows[i, 4:] = descriptor
    return rows


def match_descriptors(a: np.ndarray, b: np.ndarray, ratio: float = 0.8) -> list[tuple[int, int]]:
    """Lowe's ratio-test matcher — used by the image-service example."""
    if len(a) == 0 or len(b) < 2:
        return []
    da = a[:, 4:]
    db = b[:, 4:]
    matches = []
    # Squared Euclidean distances, vectorised per query row.
    db_sq = np.sum(db * db, axis=1)
    for i in range(len(da)):
        dists = db_sq - 2.0 * db.dot(da[i]) + da[i].dot(da[i])
        order = np.argsort(dists)
        best, second = order[0], order[1]
        if dists[best] < (ratio**2) * dists[second]:
            matches.append((i, int(best)))
    return matches
