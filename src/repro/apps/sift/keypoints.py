"""Keypoint detection: DoG extrema, subpixel refinement, edge rejection.

Lowe (2004) §3-4: candidate keypoints are 26-neighbourhood extrema in
the DoG stack; a 3-D quadratic fit refines their position and rejects
low-contrast points; the 2x2 Hessian ratio test rejects edge responses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pyramid import ScaleSpace


@dataclass(frozen=True)
class Keypoint:
    """A detected scale-space keypoint (octave-local coordinates kept
    alongside absolute image coordinates)."""

    x: float           # absolute column in the input image
    y: float           # absolute row in the input image
    octave: int
    interval: int      # DoG interval index the extremum refined into
    sigma: float       # absolute scale
    response: float    # |DoG| at the refined extremum


@dataclass(frozen=True)
class DetectorConfig:
    contrast_threshold: float = 0.008
    edge_ratio: float = 10.0
    border: int = 5
    max_refine_steps: int = 5


def _local_extrema_mask(prev: np.ndarray, cur: np.ndarray, nxt: np.ndarray,
                        threshold: float) -> np.ndarray:
    """Boolean mask of pixels that beat all 26 neighbours (vectorised)."""
    c = cur[1:-1, 1:-1]
    candidates = np.abs(c) > threshold
    is_max = np.ones_like(candidates)
    is_min = np.ones_like(candidates)
    for layer in (prev, cur, nxt):
        for dy in (0, 1, 2):
            for dx in (0, 1, 2):
                if layer is cur and dy == 1 and dx == 1:
                    continue
                window = layer[dy:dy + c.shape[0], dx:dx + c.shape[1]]
                is_max &= c > window
                is_min &= c < window
    mask = np.zeros_like(cur, dtype=bool)
    mask[1:-1, 1:-1] = candidates & (is_max | is_min)
    return mask


def _refine(dogs: list[np.ndarray], interval: int, y: int, x: int,
            config: DetectorConfig) -> tuple[float, float, float, float] | None:
    """Quadratic subpixel refinement; returns (y, x, ds, value) or None."""
    h, w = dogs[0].shape
    for _ in range(config.max_refine_steps):
        prev, cur, nxt = dogs[interval - 1], dogs[interval], dogs[interval + 1]
        # Gradient and Hessian of D at (interval, y, x).
        dD = np.array([
            (cur[y, x + 1] - cur[y, x - 1]) / 2.0,
            (cur[y + 1, x] - cur[y - 1, x]) / 2.0,
            (nxt[y, x] - prev[y, x]) / 2.0,
        ])
        dxx = cur[y, x + 1] - 2 * cur[y, x] + cur[y, x - 1]
        dyy = cur[y + 1, x] - 2 * cur[y, x] + cur[y - 1, x]
        dss = nxt[y, x] - 2 * cur[y, x] + prev[y, x]
        dxy = (cur[y + 1, x + 1] - cur[y + 1, x - 1] - cur[y - 1, x + 1] + cur[y - 1, x - 1]) / 4.0
        dxs = (nxt[y, x + 1] - nxt[y, x - 1] - prev[y, x + 1] + prev[y, x - 1]) / 4.0
        dys = (nxt[y + 1, x] - nxt[y - 1, x] - prev[y + 1, x] + prev[y - 1, x]) / 4.0
        hessian = np.array([[dxx, dxy, dxs], [dxy, dyy, dys], [dxs, dys, dss]])
        try:
            offset = -np.linalg.solve(hessian, dD)
        except np.linalg.LinAlgError:
            return None
        if np.all(np.abs(offset) < 0.5):
            value = cur[y, x] + 0.5 * dD.dot(offset)
            # Edge rejection on the 2x2 spatial Hessian.
            trace = dxx + dyy
            det = dxx * dyy - dxy * dxy
            r = config.edge_ratio
            if det <= 0 or trace * trace * r >= det * (r + 1) ** 2:
                return None
            if abs(value) < config.contrast_threshold:
                return None
            return (y + offset[1], x + offset[0], interval + offset[2], value)
        # Step towards the true extremum and retry.
        x += int(round(float(offset[0])))
        y += int(round(float(offset[1])))
        interval += int(round(float(offset[2])))
        if not (1 <= interval < len(dogs) - 1):
            return None
        if not (config.border <= y < h - config.border):
            return None
        if not (config.border <= x < w - config.border):
            return None
    return None


def detect_keypoints(space: ScaleSpace, config: DetectorConfig | None = None) -> list[Keypoint]:
    """Find refined, filtered keypoints across all octaves."""
    config = config or DetectorConfig()
    s = space.config.scales_per_octave
    k = 2.0 ** (1.0 / s)
    keypoints: list[Keypoint] = []
    for octave, dogs in enumerate(space.dogs):
        scale_factor = 2.0**octave
        for interval in range(1, len(dogs) - 1):
            mask = _local_extrema_mask(
                dogs[interval - 1], dogs[interval], dogs[interval + 1],
                0.5 * config.contrast_threshold,
            )
            border = config.border
            mask[:border, :] = mask[-border:, :] = False
            mask[:, :border] = mask[:, -border:] = False
            ys, xs = np.nonzero(mask)
            for y, x in zip(ys.tolist(), xs.tolist()):
                refined = _refine(dogs, interval, y, x, config)
                if refined is None:
                    continue
                ry, rx, rs, value = refined
                sigma = space.config.base_sigma * (k**rs) * scale_factor
                keypoints.append(
                    Keypoint(
                        x=rx * scale_factor,
                        y=ry * scale_factor,
                        octave=octave,
                        interval=interval,
                        sigma=float(sigma),
                        response=float(abs(value)),
                    )
                )
    # Canonical deterministic order: position, then scale.
    keypoints.sort(key=lambda p: (p.y, p.x, p.sigma))
    return keypoints
