"""Separable Gaussian filtering on numpy arrays.

The building block of the SIFT scale space.  Implemented with reflected
padding and shifted-slice accumulation, so the only dependency is numpy
(the library's single runtime dependency).
"""

from __future__ import annotations

import numpy as np

from ...errors import SpeedError


def gaussian_kernel(sigma: float) -> np.ndarray:
    """Normalised 1-D Gaussian kernel with radius ``ceil(3·sigma)``."""
    if sigma <= 0:
        raise SpeedError("sigma must be positive")
    radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(xs**2) / (2.0 * sigma * sigma))
    return kernel / kernel.sum()


def _convolve_axis(image: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    radius = len(kernel) // 2
    pad = [(0, 0), (0, 0)]
    pad[axis] = (radius, radius)
    padded = np.pad(image, pad, mode="reflect")
    out = np.zeros_like(image, dtype=np.float64)
    length = image.shape[axis]
    for k, weight in enumerate(kernel):
        if axis == 0:
            out += weight * padded[k:k + length, :]
        else:
            out += weight * padded[:, k:k + length]
    return out


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Blur a 2-D float image with a separable Gaussian."""
    if image.ndim != 2:
        raise SpeedError("gaussian_blur expects a 2-D image")
    kernel = gaussian_kernel(sigma)
    return _convolve_axis(_convolve_axis(image.astype(np.float64), kernel, 0), kernel, 1)


def downsample2(image: np.ndarray) -> np.ndarray:
    """Take every second pixel (the SIFT octave step)."""
    return image[::2, ::2]


def gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Central-difference gradient magnitude and orientation (radians)."""
    dy = np.zeros_like(image)
    dx = np.zeros_like(image)
    dy[1:-1, :] = (image[2:, :] - image[:-2, :]) / 2.0
    dx[:, 1:-1] = (image[:, 2:] - image[:, :-2]) / 2.0
    magnitude = np.hypot(dx, dy)
    orientation = np.arctan2(dy, dx)  # [-pi, pi]
    return magnitude, orientation
