"""Case study 1: SIFT feature extraction (libsiftpp substitute).

A from-scratch Lowe-2004 SIFT pipeline on numpy: scale space
(:mod:`.pyramid`), keypoint detection (:mod:`.keypoints`), orientation +
descriptors (:mod:`.descriptors`), and the top-level ``sift()``
(:mod:`.sift`).
"""

from .gaussian import gaussian_blur, gaussian_kernel, gradients
from .keypoints import DetectorConfig, Keypoint, detect_keypoints
from .pyramid import PyramidConfig, ScaleSpace, build_scale_space
from .sift import (
    FUNCTION_SIGNATURE,
    LIBRARY_FAMILY,
    LIBRARY_VERSION,
    SiftConfig,
    match_descriptors,
    sift,
)

__all__ = [
    "DetectorConfig",
    "FUNCTION_SIGNATURE",
    "Keypoint",
    "LIBRARY_FAMILY",
    "LIBRARY_VERSION",
    "PyramidConfig",
    "ScaleSpace",
    "SiftConfig",
    "build_scale_space",
    "detect_keypoints",
    "gaussian_blur",
    "gaussian_kernel",
    "gradients",
    "match_descriptors",
    "sift",
]
