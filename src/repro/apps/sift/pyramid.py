"""Scale-space construction: Gaussian and difference-of-Gaussian pyramids.

Follows Lowe (IJCV 2004) §3: each octave holds ``scales + 3`` Gaussian
images separated by ``k = 2^(1/scales)`` in scale, adjacent pairs
subtract into the DoG stack, and the next octave starts from the image
with twice the base sigma, downsampled by two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gaussian import downsample2, gaussian_blur
from ...errors import SpeedError


@dataclass(frozen=True)
class PyramidConfig:
    """Scale-space parameters (Lowe's defaults)."""

    scales_per_octave: int = 3
    base_sigma: float = 1.6
    assumed_blur: float = 0.5
    min_size: int = 16
    max_octaves: int = 8


@dataclass
class ScaleSpace:
    """The computed pyramids plus per-level sigmas."""

    gaussians: list[list[np.ndarray]]   # [octave][interval]
    dogs: list[list[np.ndarray]]        # [octave][interval]
    sigmas: list[float]                  # per interval within an octave
    config: PyramidConfig

    @property
    def n_octaves(self) -> int:
        return len(self.gaussians)


def build_scale_space(image: np.ndarray, config: PyramidConfig | None = None) -> ScaleSpace:
    """Build the Gaussian and DoG pyramids for a grayscale image in [0,1]."""
    config = config or PyramidConfig()
    if image.ndim != 2:
        raise SpeedError("SIFT expects a single-channel image")
    if min(image.shape) < config.min_size:
        raise SpeedError(
            f"image too small for scale space: {image.shape} < {config.min_size}"
        )
    base = image.astype(np.float64)
    if base.max() > 1.5:  # tolerate uint8-range input
        base = base / 255.0

    s = config.scales_per_octave
    k = 2.0 ** (1.0 / s)
    # Per-interval absolute sigmas within one octave.
    sigmas = [config.base_sigma * (k**i) for i in range(s + 3)]
    # Incremental blurs between adjacent intervals.
    increments = [0.0] + [
        float(np.sqrt(sigmas[i] ** 2 - sigmas[i - 1] ** 2)) for i in range(1, s + 3)
    ]

    # Bring the input up to base_sigma from its assumed capture blur.
    initial = float(np.sqrt(max(config.base_sigma**2 - config.assumed_blur**2, 0.01)))
    current = gaussian_blur(base, initial)

    n_octaves = min(
        config.max_octaves,
        int(np.log2(min(base.shape) / config.min_size)) + 1,
    )
    n_octaves = max(n_octaves, 1)

    gaussians: list[list[np.ndarray]] = []
    dogs: list[list[np.ndarray]] = []
    for _octave in range(n_octaves):
        stack = [current]
        for inc in increments[1:]:
            stack.append(gaussian_blur(stack[-1], inc))
        gaussians.append(stack)
        dogs.append([stack[i + 1] - stack[i] for i in range(len(stack) - 1)])
        # Next octave: the image at 2x base sigma, halved.
        current = downsample2(stack[s])
        if min(current.shape) < config.min_size:
            break
    return ScaleSpace(gaussians=gaussians, dogs=dogs, sigmas=sigmas, config=config)
