"""Aho-Corasick multi-pattern string matching.

Virus scanners and IDSes (ClamAV, Snort — the paper's Case 3 context)
pre-filter packets against thousands of literal "content" strings with
exactly this automaton before running expensive per-rule regexes.
"""

from __future__ import annotations

from collections import deque

from ...errors import SpeedError


class AhoCorasick:
    """Automaton over byte strings; built once, searched many times."""

    def __init__(self, patterns: list[bytes]):
        if not patterns:
            raise SpeedError("AhoCorasick needs at least one pattern")
        for p in patterns:
            if not p:
                raise SpeedError("empty patterns are not allowed")
        self.patterns = [bytes(p) for p in patterns]
        # State 0 is the root.  goto is a list of dicts byte -> state.
        self._goto: list[dict[int, int]] = [{}]
        self._fail: list[int] = [0]
        self._output: list[list[int]] = [[]]
        self._build()

    def _build(self) -> None:
        for index, pattern in enumerate(self.patterns):
            state = 0
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto.append({})
                    self._fail.append(0)
                    self._output.append([])
                    self._goto[state][byte] = nxt
                state = nxt
            self._output[state].append(index)
        # BFS to fill failure links and merge outputs.
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and byte not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[nxt] = self._goto[fail].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    @property
    def n_states(self) -> int:
        return len(self._goto)

    def _step(self, state: int, byte: int) -> int:
        while state and byte not in self._goto[state]:
            state = self._fail[state]
        return self._goto[state].get(byte, 0)

    def finditer(self, text: bytes):
        """Yield ``(end_offset, pattern_index)`` for every occurrence."""
        state = 0
        for offset, byte in enumerate(text):
            state = self._step(state, byte)
            for index in self._output[state]:
                yield offset + 1, index

    def search_all(self, text: bytes) -> dict[int, list[int]]:
        """Map pattern index -> list of end offsets."""
        hits: dict[int, list[int]] = {}
        for end, index in self.finditer(text):
            hits.setdefault(index, []).append(end)
        return hits

    def contains_which(self, text: bytes) -> set[int]:
        """Set of pattern indices occurring at least once (early-merged)."""
        found: set[int] = set()
        state = 0
        for byte in text:
            state = self._step(state, byte)
            if self._output[state]:
                found.update(self._output[state])
        return found
