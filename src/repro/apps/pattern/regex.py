"""A Thompson-NFA regular-expression engine over bytes.

The libpcre substitute for the paper's Case 3.  Supports the subset that
Snort-style rules actually use: literals, ``.``, escapes (``\\d \\w \\s
\\n \\t \\r \\xHH`` and their negations), character classes with ranges
and negation, alternation, groups, the quantifiers ``* + ? {m} {m,n}``,
and the anchors ``^ $``.  Matching is linear-time set-of-states
simulation — no backtracking blowups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import SpeedError

_MAX_REPEAT = 64


# -- AST -----------------------------------------------------------------
@dataclass(frozen=True)
class _CharSet:
    allowed: frozenset[int]

    def matches(self, byte: int) -> bool:
        return byte in self.allowed


@dataclass(frozen=True)
class _Concat:
    parts: tuple


@dataclass(frozen=True)
class _Alt:
    options: tuple


@dataclass(frozen=True)
class _Repeat:
    node: object
    min_count: int
    max_count: int | None  # None = unbounded


@dataclass(frozen=True)
class _Anchor:
    kind: str  # "start" or "end"


_DIGITS = frozenset(range(0x30, 0x3A))
_WORD = frozenset(
    list(range(0x30, 0x3A)) + list(range(0x41, 0x5B)) + list(range(0x61, 0x7B)) + [0x5F]
)
_SPACE = frozenset([0x20, 0x09, 0x0A, 0x0D, 0x0B, 0x0C])
_ALL = frozenset(range(256))
_DOT = frozenset(range(256)) - frozenset([0x0A])


class _Parser:
    def __init__(self, pattern: str):
        self._p = pattern
        self._i = 0

    def _peek(self) -> str | None:
        return self._p[self._i] if self._i < len(self._p) else None

    def _next(self) -> str:
        if self._i >= len(self._p):
            raise SpeedError(f"unexpected end of pattern {self._p!r}")
        ch = self._p[self._i]
        self._i += 1
        return ch

    def parse(self):
        node = self._alternation()
        if self._i != len(self._p):
            raise SpeedError(f"trailing junk at {self._i} in {self._p!r}")
        return node

    def _alternation(self):
        options = [self._concat()]
        while self._peek() == "|":
            self._next()
            options.append(self._concat())
        return options[0] if len(options) == 1 else _Alt(tuple(options))

    def _concat(self):
        parts = []
        while self._peek() is not None and self._peek() not in "|)":
            parts.append(self._repeat())
        if not parts:
            return _Concat(())
        return parts[0] if len(parts) == 1 else _Concat(tuple(parts))

    def _repeat(self):
        node = self._atom()
        ch = self._peek()
        if ch == "*":
            self._next()
            return _Repeat(node, 0, None)
        if ch == "+":
            self._next()
            return _Repeat(node, 1, None)
        if ch == "?":
            self._next()
            return _Repeat(node, 0, 1)
        if ch == "{":
            return _Repeat(node, *self._braces())
        return node

    def _braces(self) -> tuple[int, int | None]:
        self._next()  # '{'
        digits = ""
        while self._peek() and self._peek().isdigit():
            digits += self._next()
        if not digits:
            raise SpeedError("malformed {m,n} quantifier")
        low = int(digits)
        high: int | None = low
        if self._peek() == ",":
            self._next()
            digits = ""
            while self._peek() and self._peek().isdigit():
                digits += self._next()
            high = int(digits) if digits else None
        if self._next() != "}":
            raise SpeedError("unterminated {m,n} quantifier")
        if high is not None and (high < low or high > _MAX_REPEAT):
            raise SpeedError(f"repeat bound out of range in {self._p!r}")
        if low > _MAX_REPEAT:
            raise SpeedError(f"repeat bound out of range in {self._p!r}")
        return low, high

    def _atom(self):
        ch = self._next()
        if ch == "(":
            node = self._alternation()
            if self._next() != ")":
                raise SpeedError("unbalanced parenthesis")
            return node
        if ch == "[":
            return self._char_class()
        if ch == ".":
            return _CharSet(_DOT)
        if ch == "^":
            return _Anchor("start")
        if ch == "$":
            return _Anchor("end")
        if ch == "\\":
            return _CharSet(self._escape())
        if ch in ")|*+?{":
            raise SpeedError(f"unexpected {ch!r} in {self._p!r}")
        return _CharSet(frozenset([ord(ch)]))

    def _escape(self) -> frozenset[int]:
        ch = self._next()
        if ch == "d":
            return _DIGITS
        if ch == "D":
            return _ALL - _DIGITS
        if ch == "w":
            return _WORD
        if ch == "W":
            return _ALL - _WORD
        if ch == "s":
            return _SPACE
        if ch == "S":
            return _ALL - _SPACE
        if ch == "n":
            return frozenset([0x0A])
        if ch == "r":
            return frozenset([0x0D])
        if ch == "t":
            return frozenset([0x09])
        if ch == "0":
            return frozenset([0x00])
        if ch == "x":
            hex_digits = self._next() + self._next()
            try:
                return frozenset([int(hex_digits, 16)])
            except ValueError:
                raise SpeedError(f"bad \\x escape in {self._p!r}") from None
        # Escaped metacharacter.
        return frozenset([ord(ch)])

    def _char_class(self):
        negate = False
        if self._peek() == "^":
            self._next()
            negate = True
        allowed: set[int] = set()
        first = True
        while True:
            ch = self._peek()
            if ch is None:
                raise SpeedError("unterminated character class")
            if ch == "]" and not first:
                self._next()
                break
            first = False
            ch = self._next()
            if ch == "\\":
                escaped = self._escape()
                if len(escaped) != 1:
                    allowed |= escaped  # class escape like \d — no range
                    continue
                lo = next(iter(escaped))
            else:
                lo = ord(ch)
            if self._peek() == "-" and self._i + 1 < len(self._p) and self._p[self._i + 1] != "]":
                self._next()  # '-'
                hi_ch = self._next()
                if hi_ch == "\\":
                    hi_set = self._escape()
                    if len(hi_set) != 1:
                        raise SpeedError("class escape cannot end a range")
                    hi = next(iter(hi_set))
                else:
                    hi = ord(hi_ch)
                if hi < lo:
                    raise SpeedError("reversed range in character class")
                allowed |= set(range(lo, hi + 1))
            else:
                allowed.add(lo)
        result = frozenset(allowed)
        return _CharSet(_ALL - result if negate else result)


# -- NFA -----------------------------------------------------------------
@dataclass
class _State:
    # byte-consuming edges: (charset, target); epsilon edges: targets.
    edges: list[tuple[frozenset[int], int]] = field(default_factory=list)
    epsilon: list[int] = field(default_factory=list)
    anchor_start: list[int] = field(default_factory=list)
    anchor_end: list[int] = field(default_factory=list)


class Regex:
    """A compiled pattern; thread-safe and reusable."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        ast = _Parser(pattern).parse()
        self._states: list[_State] = [_State()]
        start = self._new_state()
        self._start = start
        accept = self._compile(ast, start)
        self._accept = self._new_state()
        self._states[accept].epsilon.append(self._accept)

    def _new_state(self) -> int:
        self._states.append(_State())
        return len(self._states) - 1

    def _compile(self, node, entry: int) -> int:
        """Wire ``node`` starting at ``entry``; return its exit state."""
        if isinstance(node, _CharSet):
            exit_state = self._new_state()
            self._states[entry].edges.append((node.allowed, exit_state))
            return exit_state
        if isinstance(node, _Anchor):
            exit_state = self._new_state()
            if node.kind == "start":
                self._states[entry].anchor_start.append(exit_state)
            else:
                self._states[entry].anchor_end.append(exit_state)
            return exit_state
        if isinstance(node, _Concat):
            current = entry
            for part in node.parts:
                current = self._compile(part, current)
            return current
        if isinstance(node, _Alt):
            exit_state = self._new_state()
            for option in node.options:
                branch_entry = self._new_state()
                self._states[entry].epsilon.append(branch_entry)
                branch_exit = self._compile(option, branch_entry)
                self._states[branch_exit].epsilon.append(exit_state)
            return exit_state
        if isinstance(node, _Repeat):
            current = entry
            for _ in range(node.min_count):
                current = self._compile(node.node, current)
            if node.max_count is None:
                loop_entry = self._new_state()
                self._states[current].epsilon.append(loop_entry)
                body_exit = self._compile(node.node, loop_entry)
                self._states[body_exit].epsilon.append(loop_entry)
                exit_state = self._new_state()
                self._states[loop_entry].epsilon.append(exit_state)
                return exit_state
            exit_state = self._new_state()
            self._states[current].epsilon.append(exit_state)
            for _ in range(node.max_count - node.min_count):
                current = self._compile(node.node, current)
                self._states[current].epsilon.append(exit_state)
            return exit_state
        raise SpeedError(f"unknown AST node {node!r}")

    # -- simulation ---------------------------------------------------------
    def _closure(self, states: set[int], at_start: bool, at_end: bool) -> set[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            s = stack.pop()
            nxt = list(self._states[s].epsilon)
            if at_start:
                nxt += self._states[s].anchor_start
            if at_end:
                nxt += self._states[s].anchor_end
            for t in nxt:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return seen

    def search(self, text: bytes) -> bool:
        """Unanchored containment test in O(len(text) · states)."""
        current = self._closure({self._start}, at_start=True, at_end=len(text) == 0)
        if self._accept in current:
            return True
        for i, byte in enumerate(text):
            nxt: set[int] = set()
            for s in current:
                for charset, target in self._states[s].edges:
                    if byte in charset:
                        nxt.add(target)
            # Unanchored: a match may also begin at position i + 1.
            nxt.add(self._start)
            at_end = i == len(text) - 1
            current = self._closure(nxt, at_start=False, at_end=at_end)
            if self._accept in current:
                return True
        return False


def pcre_exec(pattern: str, payload: bytes) -> bool:
    """The ``pcre_exec(·)``-shaped convenience entry point."""
    return Regex(pattern).search(payload)
