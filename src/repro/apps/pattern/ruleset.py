"""Snort-style detection rules and their compiled form.

The paper's Case 3 matches >3,700 Snort rule patterns against network
packets with ``pcre_exec``.  Real rules combine fast literal ``content``
strings with an optional ``pcre`` clause; engines pre-filter with a
multi-pattern automaton and only run the regex for rules whose literals
all appeared.  We reproduce that two-stage structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ahocorasick import AhoCorasick
from .regex import Regex
from ...crypto.hashes import tagged_hash
from ...errors import SpeedError


@dataclass(frozen=True)
class Rule:
    """One detection rule."""

    rule_id: int
    message: str
    contents: tuple[bytes, ...] = ()
    pcre: str | None = None

    def __post_init__(self):
        if not self.contents and self.pcre is None:
            raise SpeedError(f"rule {self.rule_id} has neither content nor pcre")


class CompiledRuleset:
    """A ruleset compiled for scanning: one automaton + per-rule regexes."""

    def __init__(self, rules: list[Rule]):
        if not rules:
            raise SpeedError("empty ruleset")
        seen_ids = set()
        for rule in rules:
            if rule.rule_id in seen_ids:
                raise SpeedError(f"duplicate rule id {rule.rule_id}")
            seen_ids.add(rule.rule_id)
        self.rules = list(rules)

        # Literal prefilter: every content string of every rule.
        self._pattern_owner: list[tuple[int, int]] = []  # (rule idx, content idx)
        patterns: list[bytes] = []
        self._content_only_regex: list[Regex | None] = []
        self._needed_contents: list[int] = []
        for rule_index, rule in enumerate(self.rules):
            self._needed_contents.append(len(rule.contents))
            for content_index, content in enumerate(rule.contents):
                patterns.append(content)
                self._pattern_owner.append((rule_index, content_index))
            self._content_only_regex.append(Regex(rule.pcre) if rule.pcre else None)
        self._automaton = AhoCorasick(patterns) if patterns else None
        # Rules with no content strings must always run their regex.
        self._always_check = [
            i for i, rule in enumerate(self.rules) if not rule.contents
        ]

    def fingerprint(self) -> bytes:
        """Stable identity of this ruleset (folds into the function
        description so different rulesets never share cached results)."""
        parts = []
        for rule in self.rules:
            parts.append(str(rule.rule_id).encode())
            parts.extend(rule.contents)
            parts.append((rule.pcre or "").encode())
        return tagged_hash(b"pattern/ruleset", *parts)

    def scan(self, payload: bytes) -> list[int]:
        """Return the sorted rule ids matching one packet payload."""
        matched: list[int] = []
        candidate_hits: dict[int, set[int]] = {}
        if self._automaton is not None and payload:
            for pattern_index in self._automaton.contains_which(payload):
                rule_index, content_index = self._pattern_owner[pattern_index]
                candidate_hits.setdefault(rule_index, set()).add(content_index)
        candidates = [
            rule_index
            for rule_index, hit in candidate_hits.items()
            if len(hit) == self._needed_contents[rule_index]
        ]
        candidates.extend(self._always_check)
        for rule_index in candidates:
            regex = self._content_only_regex[rule_index]
            if regex is None or regex.search(payload):
                matched.append(self.rules[rule_index].rule_id)
        matched.sort()
        return matched


@dataclass
class ScanReport:
    """Aggregate of scanning a packet trace."""

    packets: int = 0
    alerts: int = 0
    per_rule: dict[int, int] = field(default_factory=dict)

    def add(self, matches: list[int]) -> None:
        self.packets += 1
        self.alerts += len(matches)
        for rule_id in matches:
            self.per_rule[rule_id] = self.per_rule.get(rule_id, 0) + 1
