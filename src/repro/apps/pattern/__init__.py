"""Case study 3: multi-pattern packet scanning (libpcre + Snort rules).

Aho-Corasick literal prefilter (:mod:`.ahocorasick`), a Thompson-NFA
regex engine (:mod:`.regex`), Snort-style rules (:mod:`.ruleset`), and
the deduplicable scanning front end (:mod:`.matcher`).
"""

from .ahocorasick import AhoCorasick
from .matcher import (
    FUNCTION_SIGNATURE,
    LIBRARY_FAMILY,
    LIBRARY_VERSION,
    make_scan_function,
    scan_trace,
)
from .regex import Regex, pcre_exec
from .ruleset import CompiledRuleset, Rule, ScanReport

__all__ = [
    "AhoCorasick",
    "CompiledRuleset",
    "FUNCTION_SIGNATURE",
    "LIBRARY_FAMILY",
    "LIBRARY_VERSION",
    "Regex",
    "Rule",
    "ScanReport",
    "make_scan_function",
    "pcre_exec",
    "scan_trace",
]
