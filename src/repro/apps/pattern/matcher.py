"""Packet-scanning front end — the deduplicable function of Case 3.

The paper wraps ``pcre_exec(·)`` so that re-scanning a packet payload
that was seen before (network traces are full of duplicates) becomes a
store lookup.  :func:`make_scan_function` returns a ``scan(payload)``
callable bound to one compiled ruleset, plus the function description to
mark it with — the ruleset fingerprint is folded into the description's
version so different rule databases never collide in the store.
"""

from __future__ import annotations

from typing import Callable

from .ruleset import CompiledRuleset, Rule, ScanReport

LIBRARY_FAMILY = "libpcre"
LIBRARY_VERSION = "8.40"
FUNCTION_SIGNATURE = "list[int] scan(bytes payload)"

# One module-level slot per compiled ruleset lets the returned closure be
# a plain function over (payload) — the paper's deduplicated unit.
_ACTIVE_RULESETS: dict[bytes, CompiledRuleset] = {}


def make_scan_function(rules: list[Rule]) -> tuple[Callable[[bytes], list[int]], str]:
    """Compile ``rules``; returns ``(scan, version_string)``.

    ``version_string`` is what goes into the FunctionDescription's
    version field: pcre version + ruleset fingerprint.
    """
    compiled = CompiledRuleset(rules)
    fingerprint = compiled.fingerprint()
    _ACTIVE_RULESETS[fingerprint] = compiled

    def scan(payload: bytes) -> list[int]:
        return _ACTIVE_RULESETS[fingerprint].scan(payload)

    version = f"{LIBRARY_VERSION}+rules-{fingerprint.hex()[:16]}"
    return scan, version


def scan_trace(compiled: CompiledRuleset, packets: list[bytes]) -> ScanReport:
    """Scan a whole trace without deduplication (baseline path)."""
    report = ScanReport()
    for payload in packets:
        report.add(compiled.scan(payload))
    return report
