"""CRC-32 (IEEE 802.3, the zlib/gzip checksum), table-driven.

zlib's container formats carry a CRC of the *uncompressed* data so a
decoder can detect corruption that Huffman decoding alone would miss
(e.g. a bit flip that still decodes to valid symbols).  Our container
does the same.  The implementation is the classic reflected algorithm
with the 0xEDB88320 polynomial; the test suite pins it byte-for-byte to
CPython's ``binascii.crc32``.
"""

from __future__ import annotations

_POLY = 0xEDB88320


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: bytes, value: int = 0) -> int:
    """Compute (or continue, via ``value``) a CRC-32 over ``data``."""
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
