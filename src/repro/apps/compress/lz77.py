"""LZ77 match finding with hash chains (the zlib strategy).

Tokenises input into literals and (length, distance) back-references
over a 32 KiB sliding window, minimum match 3, maximum 258 — the same
parameter envelope as zlib's deflate, which the paper's Case 2 wraps.
"""

from __future__ import annotations

from dataclasses import dataclass

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258
MAX_CHAIN = 32  # bounded chain walk, like zlib's "good" compression levels


@dataclass(frozen=True)
class Token:
    """Either a literal byte (``length == 0``) or a back-reference."""

    literal: int = 0
    length: int = 0
    distance: int = 0

    @property
    def is_match(self) -> bool:
        return self.length >= MIN_MATCH


def tokenize(data: bytes) -> list[Token]:
    """Greedy LZ77 parse with one-step lazy matching."""
    n = len(data)
    tokens: list[Token] = []
    head: dict[int, list[int]] = {}
    pos = 0

    def key_at(i: int) -> int:
        return data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)

    def find_match(i: int) -> tuple[int, int]:
        """Best (length, distance) at position i, or (0, 0)."""
        if i + MIN_MATCH > n:
            return 0, 0
        chain = head.get(key_at(i))
        if not chain:
            return 0, 0
        best_len, best_dist = 0, 0
        limit = min(MAX_MATCH, n - i)
        for candidate in reversed(chain[-MAX_CHAIN:]):
            if i - candidate > WINDOW_SIZE:
                break
            length = 0
            while length < limit and data[candidate + length] == data[i + length]:
                length += 1
            if length > best_len:
                best_len, best_dist = length, i - candidate
                if length >= limit:
                    break
        return (best_len, best_dist) if best_len >= MIN_MATCH else (0, 0)

    def insert(i: int) -> None:
        if i + MIN_MATCH <= n:
            head.setdefault(key_at(i), []).append(i)

    while pos < n:
        length, distance = find_match(pos)
        if length:
            # Lazy evaluation: prefer a longer match starting one byte later.
            next_length, _ = find_match(pos + 1) if pos + 1 < n else (0, 0)
            if next_length > length:
                tokens.append(Token(literal=data[pos]))
                insert(pos)
                pos += 1
                continue
            tokens.append(Token(length=length, distance=distance))
            end = pos + length
            while pos < end:
                insert(pos)
                pos += 1
        else:
            tokens.append(Token(literal=data[pos]))
            insert(pos)
            pos += 1
    return tokens


def reconstruct(tokens: list[Token]) -> bytes:
    """Inverse of :func:`tokenize` (used directly by tests)."""
    out = bytearray()
    for token in tokens:
        if token.is_match:
            start = len(out) - token.distance
            for k in range(token.length):
                out.append(out[start + k])
        else:
            out.append(token.literal)
    return bytes(out)
