"""Bit-level I/O for the DEFLATE-style codec (LSB-first, like RFC 1951)."""

from __future__ import annotations

from ...errors import SpeedError


class BitWriter:
    """Accumulates bits least-significant-first into a byte stream."""

    def __init__(self):
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, n_bits: int) -> None:
        if n_bits < 0 or value >> n_bits:
            raise SpeedError(f"value {value} does not fit in {n_bits} bits")
        self._acc |= value << self._nbits
        self._nbits += n_bits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def getvalue(self) -> bytes:
        out = bytes(self._out)
        if self._nbits:
            out += bytes([self._acc & 0xFF])
        return out


class BitReader:
    """Consumes bits least-significant-first from a byte stream."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, n_bits: int) -> int:
        while self._nbits < n_bits:
            if self._pos >= len(self._data):
                raise SpeedError("bit stream truncated")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << n_bits) - 1)
        self._acc >>= n_bits
        self._nbits -= n_bits
        return value

    def read_bit(self) -> int:
        return self.read(1)
