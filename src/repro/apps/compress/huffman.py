"""Canonical Huffman coding.

Codes are built from symbol frequencies with the classic two-queue
construction, converted to *canonical* form so only the code lengths
need to travel in the compressed header, exactly as DEFLATE does.
"""

from __future__ import annotations

import heapq

from .bitio import BitReader, BitWriter
from ...errors import SpeedError

MAX_CODE_LENGTH = 24


def code_lengths_from_frequencies(freqs: dict[int, int]) -> dict[int, int]:
    """Huffman code length per symbol (symbols with zero freq omitted)."""
    live = [(count, symbol) for symbol, count in freqs.items() if count > 0]
    if not live:
        return {}
    if len(live) == 1:
        return {live[0][1]: 1}
    # Heap items: (weight, tiebreak, symbols-in-subtree)
    heap = [(count, symbol, (symbol,)) for count, symbol in live]
    heapq.heapify(heap)
    depths = {symbol: 0 for _, symbol in live}
    while len(heap) > 1:
        w1, t1, s1 = heapq.heappop(heap)
        w2, t2, s2 = heapq.heappop(heap)
        for symbol in s1 + s2:
            depths[symbol] += 1
        heapq.heappush(heap, (w1 + w2, min(t1, t2), s1 + s2))
    too_deep = max(depths.values())
    if too_deep > MAX_CODE_LENGTH:
        raise SpeedError(f"Huffman tree depth {too_deep} exceeds {MAX_CODE_LENGTH}")
    return depths


def canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Map symbol -> (code, length), canonical ordering (RFC 1951 §3.2.2).

    Code bits are stored MSB-first in the integer; the bit writer emits
    them reversed so the decoder can walk bit by bit.
    """
    if not lengths:
        return {}
    bl_count = [0] * (MAX_CODE_LENGTH + 1)
    for length in lengths.values():
        bl_count[length] += 1
    next_code = [0] * (MAX_CODE_LENGTH + 2)
    code = 0
    for bits in range(1, MAX_CODE_LENGTH + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes: dict[int, tuple[int, int]] = {}
    for symbol in sorted(lengths, key=lambda s: (lengths[s], s)):
        length = lengths[symbol]
        codes[symbol] = (next_code[length], length)
        next_code[length] += 1
    return codes


class HuffmanEncoder:
    """Writes symbols of one canonical code to a BitWriter."""

    def __init__(self, lengths: dict[int, int]):
        self.lengths = dict(lengths)
        self._codes = canonical_codes(self.lengths)

    def write_symbol(self, writer: BitWriter, symbol: int) -> None:
        entry = self._codes.get(symbol)
        if entry is None:
            raise SpeedError(f"symbol {symbol} has no Huffman code")
        code, length = entry
        # Emit MSB-first so the tree-walking decoder sees bits in order.
        for shift in range(length - 1, -1, -1):
            writer.write((code >> shift) & 1, 1)


class HuffmanDecoder:
    """Bit-by-bit canonical decoder (lookup dict keyed by (length, code))."""

    def __init__(self, lengths: dict[int, int]):
        self.lengths = dict(lengths)
        self._by_code: dict[tuple[int, int], int] = {
            (length, code): symbol
            for symbol, (code, length) in canonical_codes(self.lengths).items()
        }
        self._max_length = max(self.lengths.values(), default=0)

    def read_symbol(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self._max_length + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._by_code.get((length, code))
            if symbol is not None:
                return symbol
        raise SpeedError("invalid Huffman code in stream")


def write_lengths_header(writer: BitWriter, lengths: dict[int, int], alphabet_size: int) -> None:
    """Serialize code lengths (5 bits each, 0 = absent symbol)."""
    for symbol in range(alphabet_size):
        writer.write(lengths.get(symbol, 0), 5)


def read_lengths_header(reader: BitReader, alphabet_size: int) -> dict[int, int]:
    lengths = {}
    for symbol in range(alphabet_size):
        length = reader.read(5)
        if length:
            lengths[symbol] = length
    return lengths
