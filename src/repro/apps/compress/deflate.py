"""The DEFLATE-style container: Huffman-coded LZ77 token stream.

This is the ``deflate(·)`` / ``inflate(·)`` pair standing in for zlib
1.2.11 in the paper's Case 2.  The symbol structure mirrors RFC 1951:
literals 0-255, end-of-block 256, length codes 257-284 with extra bits,
and a separate 30-symbol distance alphabet with extra bits.  The header
carries both canonical code-length tables.
"""

from __future__ import annotations

from .bitio import BitReader, BitWriter
from .crc32 import crc32
from .huffman import (
    HuffmanDecoder,
    HuffmanEncoder,
    code_lengths_from_frequencies,
    read_lengths_header,
    write_lengths_header,
)
from .lz77 import MAX_MATCH, MIN_MATCH, Token, tokenize
from ...errors import SpeedError

LIBRARY_FAMILY = "zlib"
LIBRARY_VERSION = "1.2.11"
FUNCTION_SIGNATURE = "bytes deflate(bytes data)"

_MAGIC = b"SPDZ"
END_OF_BLOCK = 256
LITLEN_ALPHABET = 285
DIST_ALPHABET = 30

# RFC 1951 length code table: (base length, extra bits) for codes 257..284.
_LENGTH_BASE = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227,
]
_LENGTH_EXTRA = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5,
]
# RFC 1951 distance code table: (base distance, extra bits) for codes 0..29.
_DIST_BASE = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577,
]
_DIST_EXTRA = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
]


def _length_code(length: int) -> tuple[int, int, int]:
    """(symbol, extra bits, extra value) for a match length."""
    if not MIN_MATCH <= length <= MAX_MATCH:
        raise SpeedError(f"match length {length} out of range")
    if length == MAX_MATCH:
        return 284, 5, length - _LENGTH_BASE[-1]
    for i in range(len(_LENGTH_BASE) - 1, -1, -1):
        if length >= _LENGTH_BASE[i]:
            return 257 + i, _LENGTH_EXTRA[i], length - _LENGTH_BASE[i]
    raise SpeedError("unreachable")


def _distance_code(distance: int) -> tuple[int, int, int]:
    """(symbol, extra bits, extra value) for a match distance."""
    for i in range(len(_DIST_BASE) - 1, -1, -1):
        if distance >= _DIST_BASE[i]:
            return i, _DIST_EXTRA[i], distance - _DIST_BASE[i]
    raise SpeedError(f"distance {distance} out of range")


def deflate(data: bytes) -> bytes:
    """Compress ``data``; deterministic for identical inputs."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SpeedError("deflate expects bytes")
    data = bytes(data)
    tokens = tokenize(data)

    litlen_freq: dict[int, int] = {END_OF_BLOCK: 1}
    dist_freq: dict[int, int] = {}
    for token in tokens:
        if token.is_match:
            symbol, _, _ = _length_code(token.length)
            litlen_freq[symbol] = litlen_freq.get(symbol, 0) + 1
            dsym, _, _ = _distance_code(token.distance)
            dist_freq[dsym] = dist_freq.get(dsym, 0) + 1
        else:
            litlen_freq[token.literal] = litlen_freq.get(token.literal, 0) + 1

    litlen_lengths = code_lengths_from_frequencies(litlen_freq)
    dist_lengths = code_lengths_from_frequencies(dist_freq)
    litlen_enc = HuffmanEncoder(litlen_lengths)
    dist_enc = HuffmanEncoder(dist_lengths) if dist_lengths else None

    writer = BitWriter()
    write_lengths_header(writer, litlen_lengths, LITLEN_ALPHABET)
    write_lengths_header(writer, dist_lengths, DIST_ALPHABET)
    for token in tokens:
        if token.is_match:
            symbol, extra_bits, extra = _length_code(token.length)
            litlen_enc.write_symbol(writer, symbol)
            if extra_bits:
                writer.write(extra, extra_bits)
            dsym, dextra_bits, dextra = _distance_code(token.distance)
            dist_enc.write_symbol(writer, dsym)
            if dextra_bits:
                writer.write(dextra, dextra_bits)
        else:
            litlen_enc.write_symbol(writer, token.literal)
    litlen_enc.write_symbol(writer, END_OF_BLOCK)

    body = writer.getvalue()
    header = _MAGIC + len(data).to_bytes(8, "big") + crc32(data).to_bytes(4, "big")
    return header + body


def inflate(blob: bytes) -> bytes:
    """Decompress a :func:`deflate` blob; raises on any corruption."""
    if len(blob) < 16 or blob[:4] != _MAGIC:
        raise SpeedError("not a SPEED-deflate blob")
    expected_len = int.from_bytes(blob[4:12], "big")
    expected_crc = int.from_bytes(blob[12:16], "big")
    reader = BitReader(blob[16:])
    litlen_lengths = read_lengths_header(reader, LITLEN_ALPHABET)
    dist_lengths = read_lengths_header(reader, DIST_ALPHABET)
    if not litlen_lengths:
        raise SpeedError("missing literal/length table")
    litlen_dec = HuffmanDecoder(litlen_lengths)
    dist_dec = HuffmanDecoder(dist_lengths) if dist_lengths else None

    out = bytearray()
    while True:
        symbol = litlen_dec.read_symbol(reader)
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            out.append(symbol)
            continue
        index = symbol - 257
        if index >= len(_LENGTH_BASE):
            raise SpeedError(f"invalid length symbol {symbol}")
        length = _LENGTH_BASE[index] + (
            reader.read(_LENGTH_EXTRA[index]) if _LENGTH_EXTRA[index] else 0
        )
        if dist_dec is None:
            raise SpeedError("match token but no distance table")
        dsym = dist_dec.read_symbol(reader)
        distance = _DIST_BASE[dsym] + (
            reader.read(_DIST_EXTRA[dsym]) if _DIST_EXTRA[dsym] else 0
        )
        if distance > len(out):
            raise SpeedError("back-reference before start of output")
        start = len(out) - distance
        for k in range(length):
            out.append(out[start + k])
    if len(out) != expected_len:
        raise SpeedError(
            f"inflated length mismatch: got {len(out)}, header says {expected_len}"
        )
    if crc32(bytes(out)) != expected_crc:
        raise SpeedError("CRC-32 mismatch: decompressed data is corrupt")
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """Convenience metric for examples and workload reports."""
    if not data:
        return 1.0
    return len(deflate(data)) / len(data)


def _tokens_roundtrip(data: bytes) -> list[Token]:
    """Exposed for property tests on the LZ77 layer."""
    return tokenize(bytes(data))
