"""Case study 2: data compression (zlib substitute).

From-scratch DEFLATE-style codec: hash-chain LZ77 (:mod:`.lz77`),
canonical Huffman (:mod:`.huffman`), bit I/O (:mod:`.bitio`), and the
``deflate``/``inflate`` container (:mod:`.deflate`).
"""

from .crc32 import crc32
from .deflate import (
    FUNCTION_SIGNATURE,
    LIBRARY_FAMILY,
    LIBRARY_VERSION,
    compression_ratio,
    deflate,
    inflate,
)
from .huffman import HuffmanDecoder, HuffmanEncoder, code_lengths_from_frequencies
from .stream import DeflateStream, deflate_stream, inflate_stream
from .lz77 import MAX_MATCH, MIN_MATCH, WINDOW_SIZE, Token, reconstruct, tokenize

__all__ = [
    "FUNCTION_SIGNATURE",
    "HuffmanDecoder",
    "HuffmanEncoder",
    "LIBRARY_FAMILY",
    "LIBRARY_VERSION",
    "MAX_MATCH",
    "MIN_MATCH",
    "Token",
    "WINDOW_SIZE",
    "code_lengths_from_frequencies",
    "compression_ratio",
    "crc32",
    "deflate",
    "DeflateStream",
    "deflate_stream",
    "inflate_stream",
    "inflate",
    "reconstruct",
    "tokenize",
]
