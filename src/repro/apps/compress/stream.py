"""Streaming compression: the ``deflate``/``inflate`` stream API.

zlib's real interface is incremental (``deflate()`` is fed chunks and
flushed); the paper's Case 2 wrapper normalises it to one-shot calls
(Fig. 4's note about wrapper functions).  This module provides the
incremental form for completeness: a :class:`DeflateStream` accepts
chunks and emits an independent container *member* per flush, and
:func:`inflate_stream` reassembles the original byte stream from the
concatenated members.

Members are framed with a length prefix so the decoder needs no
look-ahead; each member is a full :func:`repro.apps.compress.deflate`
blob and inherits its CRC-32 protection.
"""

from __future__ import annotations

from .deflate import deflate, inflate
from ...errors import SpeedError

_MEMBER_MAGIC = b"SPDM"
DEFAULT_CHUNK = 64 * 1024


class DeflateStream:
    """Incremental compressor; not thread-safe, single use."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK):
        if chunk_size <= 0:
            raise SpeedError("chunk_size must be positive")
        self._chunk_size = chunk_size
        self._buffer = bytearray()
        self._finished = False
        self.members_emitted = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def _emit(self, data: bytes) -> bytes:
        blob = deflate(data)
        self.members_emitted += 1
        self.bytes_out += len(blob) + 12
        return _MEMBER_MAGIC + len(blob).to_bytes(8, "big") + blob

    def write(self, chunk: bytes) -> bytes:
        """Feed input; returns any compressed members ready so far."""
        if self._finished:
            raise SpeedError("stream already finished")
        self._buffer.extend(chunk)
        self.bytes_in += len(chunk)
        out = bytearray()
        while len(self._buffer) >= self._chunk_size:
            piece = bytes(self._buffer[:self._chunk_size])
            del self._buffer[:self._chunk_size]
            out += self._emit(piece)
        return bytes(out)

    def finish(self) -> bytes:
        """Flush the trailing partial chunk and close the stream."""
        if self._finished:
            raise SpeedError("stream already finished")
        self._finished = True
        if not self._buffer and self.members_emitted:
            return b""
        piece = bytes(self._buffer)
        self._buffer.clear()
        return self._emit(piece)


def deflate_stream(data: bytes, chunk_size: int = DEFAULT_CHUNK) -> bytes:
    """One-shot convenience over :class:`DeflateStream`."""
    stream = DeflateStream(chunk_size)
    out = stream.write(data)
    return out + stream.finish()


def inflate_stream(blob: bytes) -> bytes:
    """Decode a concatenation of stream members back to the input."""
    out = bytearray()
    offset = 0
    while offset < len(blob):
        if blob[offset:offset + 4] != _MEMBER_MAGIC:
            raise SpeedError(f"bad stream member magic at offset {offset}")
        if offset + 12 > len(blob):
            raise SpeedError("truncated stream member header")
        member_len = int.from_bytes(blob[offset + 4:offset + 12], "big")
        start = offset + 12
        end = start + member_len
        if end > len(blob):
            raise SpeedError("truncated stream member body")
        out += inflate(blob[start:end])
        offset = end
    return bytes(out)
