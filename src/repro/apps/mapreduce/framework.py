"""An in-process MapReduce framework (the paper's Case 4 substrate).

The paper builds bag-of-words on "a C++ MapReduce library"; this module
is the Python equivalent: explicit map → combine → shuffle → reduce
phases over in-memory partitions, deterministic partitioning by key
hash, and a small job API.  Deliberately synchronous: inside an enclave
there is one trusted thread of execution anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ...crypto.hashes import tagged_hash
from ...errors import SpeedError

Mapper = Callable[[Any], Iterable[tuple[Any, Any]]]
Reducer = Callable[[Any, list[Any]], Any]
Combiner = Callable[[Any, list[Any]], Any]


@dataclass
class JobStats:
    """Counters from one job execution."""

    map_inputs: int = 0
    map_outputs: int = 0
    combine_outputs: int = 0
    reduce_groups: int = 0


@dataclass
class MapReduceJob:
    """One configured job; ``run`` executes it over a list of records."""

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    n_partitions: int = 4
    stats: JobStats = field(default_factory=JobStats)

    def _partition(self, key: Any) -> int:
        digest = tagged_hash(b"mapreduce/partition", repr(key).encode())
        return int.from_bytes(digest[:4], "big") % self.n_partitions

    def run(self, records: list[Any]) -> dict[Any, Any]:
        """Execute map/combine/shuffle/reduce; returns key -> reduced value."""
        if self.n_partitions <= 0:
            raise SpeedError("n_partitions must be positive")
        self.stats = JobStats()

        # Map (+ per-partition combine).
        partitions: list[dict[Any, list[Any]]] = [
            {} for _ in range(self.n_partitions)
        ]
        for record in records:
            self.stats.map_inputs += 1
            for key, value in self.mapper(record):
                self.stats.map_outputs += 1
                partitions[self._partition(key)].setdefault(key, []).append(value)

        if self.combiner is not None:
            for partition in partitions:
                for key in list(partition):
                    combined = self.combiner(key, partition[key])
                    partition[key] = [combined]
                    self.stats.combine_outputs += 1

        # Shuffle is implicit (partitions are already key-grouped); reduce.
        output: dict[Any, Any] = {}
        for partition in partitions:
            for key in sorted(partition, key=repr):
                self.stats.reduce_groups += 1
                output[key] = self.reducer(key, partition[key])
        return output
