"""Bag-of-words over MapReduce — the paper's Case 4 computation.

``bow_mapper(·)`` is "customized from the Mapper(·) function of the
mapreduce library": it tokenises a document into lowercase word counts.
The deduplicable unit is :func:`bag_of_words`, which runs the full job
over one document (the paper deduplicates per input document — web pages
recur across crawls).
"""

from __future__ import annotations

import re
from typing import Iterable

from .framework import MapReduceJob

LIBRARY_FAMILY = "mapreduce"
LIBRARY_VERSION = "1.0.0"
FUNCTION_SIGNATURE = "dict bag_of_words(str document)"

_TOKEN = re.compile(r"[a-z0-9']+")
_MARKUP = re.compile(r"<[^>]*>")


def strip_markup(document: str) -> str:
    """Remove HTML-ish tags (the CommonCrawl pages are WET-style text,
    but our synthetic pages keep light markup to exercise this path)."""
    return _MARKUP.sub(" ", document)


def tokenize_words(document: str) -> list[str]:
    return _TOKEN.findall(strip_markup(document).lower())


def bow_mapper(document: str) -> Iterable[tuple[str, int]]:
    """Emit (word, 1) pairs for one document."""
    for word in tokenize_words(document):
        yield word, 1


def _sum_reducer(_word: str, counts: list[int]) -> int:
    return sum(counts)


def bag_of_words(document: str) -> dict[str, int]:
    """Word-count one document through the MapReduce framework.

    Splitting the document into lines gives the job real map
    parallelism structure (each line is one map record).
    """
    job = MapReduceJob(
        mapper=bow_mapper,
        reducer=_sum_reducer,
        combiner=_sum_reducer,
        n_partitions=4,
    )
    lines = [line for line in document.splitlines() if line.strip()]
    if not lines:
        return {}
    counts = job.run(lines)
    return dict(sorted(counts.items()))


def corpus_vocabulary(bows: list[dict[str, int]]) -> dict[str, int]:
    """Merge per-document BoWs into corpus-level counts (example helper)."""
    merged: dict[str, int] = {}
    for bow in bows:
        for word, count in bow.items():
            merged[word] = merged.get(word, 0) + count
    return merged
