"""Case study 4: bag-of-words over an in-process MapReduce framework."""

from .bow import (
    FUNCTION_SIGNATURE,
    LIBRARY_FAMILY,
    LIBRARY_VERSION,
    bag_of_words,
    bow_mapper,
    corpus_vocabulary,
    strip_markup,
    tokenize_words,
)
from .framework import JobStats, MapReduceJob

__all__ = [
    "FUNCTION_SIGNATURE",
    "JobStats",
    "LIBRARY_FAMILY",
    "LIBRARY_VERSION",
    "MapReduceJob",
    "bag_of_words",
    "bow_mapper",
    "corpus_vocabulary",
    "strip_markup",
    "tokenize_words",
]
