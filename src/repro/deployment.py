"""One-call wiring of a full SPEED deployment.

Experiments, examples, and tests all need the same setup: a simulated
SGX machine, a ResultStore reachable over the loopback network, and one
or more SGX-enabled applications whose enclaves link trusted libraries
and carry a DedupRuntime.  :class:`Deployment` assembles exactly that
topology (Fig. 1 of the paper); :class:`ClusterDeployment` assembles the
scaled-out variant — one application machine talking to an N-shard
:class:`~repro.cluster.StoreCluster` through per-app
:class:`~repro.cluster.ClusterRouter` instances.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from .cluster import ClusterConfig, StoreCluster
from .core.deduplicable import Deduplicable
from .core.description import FunctionDescription, TrustedLibraryRegistry
from .core.runtime import DedupRuntime, RuntimeConfig
from .core.serialization import Parser
from .errors import SpeedError
from .net.transport import FaultInjector, Network
from .obs.tracer import NULL_TRACER
from .sgx.attestation import AttestationService
from .sgx.cost_model import CostParams
from .sgx.enclave import Enclave
from .sgx.platform import SgxPlatform
from .store.resultstore import ResultStore, StoreConfig


@dataclass
class Application:
    """One SGX-enabled application: its enclave plus its DedupRuntime."""

    name: str
    enclave: Enclave
    runtime: DedupRuntime

    def deduplicable(
        self,
        description: FunctionDescription,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ) -> Deduplicable:
        """Create the Deduplicable version of a marked function."""
        return Deduplicable(
            self.runtime, description,
            input_parser=input_parser,
            result_parser=result_parser,
            native_factor=native_factor,
        )


class Deployment:
    """A simulated machine running one ResultStore and N applications."""

    def __init__(
        self,
        seed: bytes = b"speed-deployment",
        machine: str = "machine-0",
        store_config: StoreConfig | None = None,
        cost_params: CostParams | None = None,
        epc_usable_bytes: int | None = None,
        fault_injector: FaultInjector | None = None,
        attestation_service: AttestationService | None = None,
        tracer=NULL_TRACER,
        _warn: bool = True,
    ):
        if _warn:
            warnings.warn(
                "constructing Deployment directly is deprecated; use "
                "repro.connect() — it wires the same topology plus the "
                "session-wide tracer and metrics registry",
                DeprecationWarning,
                stacklevel=2,
            )
        self.attestation = attestation_service or AttestationService()
        self.tracer = NULL_TRACER if tracer is None else tracer
        platform_kwargs = {}
        if epc_usable_bytes is not None:
            platform_kwargs["epc_usable_bytes"] = epc_usable_bytes
        self.platform = SgxPlatform(
            seed=seed,
            name=machine,
            params=cost_params,
            attestation_service=self.attestation,
            **platform_kwargs,
        )
        self.network = Network(fault_injector=fault_injector)
        self.store = ResultStore(
            self.platform, self.network, address=f"resultstore@{machine}",
            config=store_config, seed=seed + b"/store",
            tracer=self.tracer,
        )
        self._apps: dict[str, Application] = {}

    @property
    def clock(self):
        return self.platform.clock

    def create_application(
        self,
        name: str,
        libraries: TrustedLibraryRegistry,
        runtime_config: RuntimeConfig | None = None,
    ) -> Application:
        """Launch an application enclave and connect it to the store."""
        if name in self._apps:
            raise SpeedError(f"application {name!r} already exists")
        code_identity = b"speed/app/" + name.encode() + b"/" + libraries.code_identity()
        enclave = self.platform.create_enclave(name, code_identity)
        client = self.store.connect(
            client_address=f"{name}@{self.platform.name}",
            app_enclave=enclave if self.store.config.use_sgx else None,
        )
        config = runtime_config or RuntimeConfig(app_id=name)
        runtime = DedupRuntime(
            enclave, client, libraries, config=config, tracer=self.tracer
        )
        app = Application(name=name, enclave=enclave, runtime=runtime)
        self._apps[name] = app
        return app

    def applications(self) -> list[Application]:
        return list(self._apps.values())

    def flush_all_puts(self) -> int:
        """Drain every application's asynchronous PUT queue."""
        return sum(app.runtime.flush_puts() for app in self._apps.values())


class ClusterDeployment:
    """One application machine in front of an N-shard ResultStore cluster.

    The applications share a platform (they are co-located, as in the
    paper's Fig. 1), while each shard of the cluster runs on its own
    machine; app-to-shard channels therefore use remote attestation via
    the shared :class:`~repro.sgx.attestation.AttestationService`.
    """

    def __init__(
        self,
        seed: bytes = b"speed-cluster-deployment",
        machine: str = "app-machine",
        n_shards: int = 4,
        replication_factor: int = 2,
        vnodes: int = 32,
        store_config: StoreConfig | None = None,
        cost_params: CostParams | None = None,
        epc_usable_bytes: int | None = None,
        shard_epc_usable_bytes: int | None = None,
        fault_injector: FaultInjector | None = None,
        attestation_service: AttestationService | None = None,
        tracer=NULL_TRACER,
        _warn: bool = True,
    ):
        if _warn:
            warnings.warn(
                "constructing ClusterDeployment directly is deprecated; use "
                "repro.connect(shards=...) — it wires the same topology plus "
                "the session-wide tracer and metrics registry",
                DeprecationWarning,
                stacklevel=2,
            )
        self.attestation = attestation_service or AttestationService()
        self.tracer = NULL_TRACER if tracer is None else tracer
        platform_kwargs = {}
        if epc_usable_bytes is not None:
            platform_kwargs["epc_usable_bytes"] = epc_usable_bytes
        self.platform = SgxPlatform(
            seed=seed,
            name=machine,
            params=cost_params,
            attestation_service=self.attestation,
            **platform_kwargs,
        )
        self.network = Network(fault_injector=fault_injector)
        self.cluster = StoreCluster(
            self.network,
            self.attestation,
            config=ClusterConfig(
                n_shards=n_shards,
                replication_factor=replication_factor,
                vnodes=vnodes,
                store_config=store_config or StoreConfig(),
                epc_usable_bytes=shard_epc_usable_bytes,
            ),
            seed=seed + b"/cluster",
            cost_params=cost_params,
            tracer=self.tracer,
        )
        self._apps: dict[str, Application] = {}

    @property
    def clock(self):
        """The application machine's clock (shards keep their own)."""
        return self.platform.clock

    def create_application(
        self,
        name: str,
        libraries: TrustedLibraryRegistry,
        runtime_config: RuntimeConfig | None = None,
    ) -> Application:
        """Launch an application enclave wired to the whole shard ring."""
        if name in self._apps:
            raise SpeedError(f"application {name!r} already exists")
        code_identity = b"speed/app/" + name.encode() + b"/" + libraries.code_identity()
        enclave = self.platform.create_enclave(name, code_identity)
        router = self.cluster.connect(name, enclave)
        config = runtime_config or RuntimeConfig(app_id=name)
        runtime = DedupRuntime(
            enclave, router, libraries, config=config, tracer=self.tracer
        )
        app = Application(name=name, enclave=enclave, runtime=runtime)
        self._apps[name] = app
        return app

    def applications(self) -> list[Application]:
        return list(self._apps.values())

    def flush_all_puts(self) -> int:
        """Drain every application's asynchronous PUT queue."""
        return sum(app.runtime.flush_puts() for app in self._apps.values())
