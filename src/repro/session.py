"""The unified public entry point: :func:`connect` / :class:`Session`.

Historically every caller hand-assembled the topology — a platform, a
network, a :class:`~repro.deployment.Deployment` or
:class:`~repro.deployment.ClusterDeployment`, an application, parsers,
and (since this release) a tracer and a metrics registry.  A
:class:`Session` packages all of it behind one object::

    import repro

    session = repro.connect()                       # single-store machine
    session = repro.connect(shards=4, replication_factor=2)  # sharded

    @session.mark(version="1.0")
    def normalize(data: bytes) -> bytes:
        ...

    normalize(payload)            # deduplicated call, as normal
    print(session.trace_table())  # the call's connected span tree
    print(session.to_json())      # every component's counters, one dict

The session owns one :class:`~repro.obs.Tracer` and threads it through
the runtime, the application enclave, both channel endpoints, the router
(in cluster mode), and every store shard — so a single
:meth:`Session.execute` yields one connected span tree covering tag
derivation, enclave transitions, channel crypto, RPC, shard routing, and
store metadata/blob access.  It also owns one
:class:`~repro.obs.MetricsRegistry` with every component's stats
registered as live sources, unifying the historical per-component
``snapshot()`` shapes behind one ``snapshot()``/``to_json()`` contract.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .cluster.router import ClusterRouter
from .core.decorator import deduplicable_marker
from .core.deduplicable import Deduplicable
from .core.description import FunctionDescription, TrustedLibrary, TrustedLibraryRegistry
from .core.runtime import DedupResult, RuntimeConfig
from .core.serialization import Parser
from .deployment import Application, ClusterDeployment, Deployment
from .errors import SpeedError
from .obs.exporters import format_phase_breakdown, format_trace
from .obs.metrics import MetricsRegistry, strip_aliases
from .obs.tracer import NULL_TRACER, SlowCall, Span, SpanNode, Tracer
from .report import ReportMixin
from .sgx.cost_model import CostParams
from .store.resultstore import StoreConfig


@dataclass(frozen=True)
class TopologyReport(ReportMixin):
    """Outcome of one :class:`Session` topology change.

    ``foreground_stalls`` counts migration batches that blocked the
    caller (no pipeline engine attached to overlap them); ``duration_s``
    is the simulated wall time of the change — the largest clock advance
    any participating machine observed.
    """

    action: str            # "add_shard" | "remove_shard" | "apply_topology" | "rebalance"
    shard_id: str          # the changed shard (plan label / "" for plans)
    ranges_moved: int      # ring ranges whose owner set changed
    entries_moved: int     # entries newly ingested at their new owners
    bytes_moved: int       # ciphertext bytes that crossed machines
    duplicates: int        # offered entries the destination already held
    dropped: int           # entries discarded by shards losing ownership
    transfers: int         # attested channel payloads shipped
    batches: int           # bounded streaming batches shipped
    foreground_stalls: int # batches shipped without background overlap
    duration_s: float      # simulated wall time of the change


def connect(
    *,
    shards: int = 0,
    replication_factor: int = 2,
    app_name: str = "app",
    machine: str | None = None,
    libraries: TrustedLibraryRegistry | None = None,
    seed: bytes = b"speed-session",
    attestation_service: Any = None,
    store_config: StoreConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    cost_params: CostParams | None = None,
    vnodes: int = 32,
    epc_usable_bytes: int | None = None,
    shard_epc_usable_bytes: int | None = None,
    tracing: bool = True,
    max_spans: int = 50_000,
    slow_sim_threshold_s: float | None = None,
    slow_wall_threshold_s: float | None = None,
    fault_injector: Any = None,
    retry_policy: Any = None,
    breaker_config: Any = None,
) -> "Session":
    """Assemble a full SPEED deployment and return its :class:`Session`.

    ``shards=0`` (the default) wires the paper's Fig. 1 single-machine
    topology: one simulated SGX machine running the application and the
    ResultStore.  ``shards >= 1`` wires the scaled-out topology instead:
    one application machine in front of an N-shard cluster with
    ``replication_factor`` copies of every entry.

    ``tracing=False`` swaps the tracer for the no-op
    :data:`~repro.obs.NULL_TRACER` (metrics sources stay live).

    ``machine`` names the application machine, and a shared
    ``attestation_service`` lets several sessions attest each other's
    enclaves (the cross-machine replication story); both default to the
    deployment's own defaults when omitted.

    The hardening knobs are optional and off by default:
    ``fault_injector`` supplies a pre-configured
    :class:`~repro.net.transport.FaultInjector` (e.g. one carrying a
    simulation :class:`~repro.simtest.FaultPlan`); ``retry_policy``
    applies an :class:`~repro.net.rpc.RetryPolicy` to every store
    client; ``breaker_config`` enables per-shard circuit breakers on the
    cluster router (cluster sessions only).
    """
    tracer: Tracer | Any
    if tracing:
        tracer = Tracer(
            max_spans=max_spans,
            slow_sim_threshold_s=slow_sim_threshold_s,
            slow_wall_threshold_s=slow_wall_threshold_s,
        )
    else:
        tracer = NULL_TRACER
    libraries = libraries or TrustedLibraryRegistry()
    extra: dict[str, Any] = {}
    if machine is not None:
        extra["machine"] = machine
    if attestation_service is not None:
        extra["attestation_service"] = attestation_service
    if fault_injector is not None:
        extra["fault_injector"] = fault_injector

    if shards <= 0:
        deployment: Deployment | ClusterDeployment = Deployment(
            seed=seed,
            store_config=store_config,
            cost_params=cost_params,
            epc_usable_bytes=epc_usable_bytes,
            tracer=tracer,
            _warn=False,
            **extra,
        )
    else:
        deployment = ClusterDeployment(
            seed=seed,
            n_shards=shards,
            replication_factor=replication_factor,
            vnodes=vnodes,
            store_config=store_config,
            cost_params=cost_params,
            epc_usable_bytes=epc_usable_bytes,
            shard_epc_usable_bytes=shard_epc_usable_bytes,
            tracer=tracer,
            _warn=False,
            **extra,
        )
    app = deployment.create_application(app_name, libraries, runtime_config)
    client = app.runtime.client
    if isinstance(client, ClusterRouter):
        if retry_policy is not None:
            client.set_retry_policy(retry_policy)
        if breaker_config is not None:
            client.enable_breakers(breaker_config)
    elif retry_policy is not None:
        client.retry_policy = retry_policy
    return Session(deployment, app, tracer)


class Session:
    """One connected application plus its observability surface."""

    def __init__(
        self,
        deployment: "Deployment | ClusterDeployment",
        app: Application,
        tracer: "Tracer | Any" = NULL_TRACER,
    ):
        self.deployment = deployment
        self.app = app
        self.runtime = app.runtime
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry()
        self._deduplicables: dict[FunctionDescription, Deduplicable] = {}
        self._mark = deduplicable_marker(app)
        self.metrics.register_source("runtime", self.runtime.snapshot)
        self.metrics.register_source("net", deployment.network.snapshot)
        if isinstance(deployment, ClusterDeployment):
            router = self.runtime.client
            if isinstance(router, ClusterRouter):
                self.metrics.register_source("router", router.snapshot)
            for shard_id, node in sorted(deployment.cluster.shards.items()):
                self.metrics.register_source(
                    f"store.{shard_id}", self._shard_source(shard_id, node.store)
                )
        else:
            self.metrics.register_source(
                "rpc", self.runtime.client.snapshot
            )
            self.metrics.register_source(
                "store", deployment.store.snapshot
            )

    @staticmethod
    def _shard_source(shard_id: str, store) -> Callable[[], dict]:
        """Per-shard metrics source: strip legacy aliases and the generic
        ``store.`` prefix so the registry re-homes the counters under
        ``store.<shard_id>.<metric>``.  The registry passes dotted keys
        through verbatim, which would collide across shards — so any key
        still dotted after the strip (``store.restore.*`` subgroups, the
        ``durable.*`` WAL counters) is re-homed explicitly."""
        def read() -> dict:
            out = {}
            for key, value in strip_aliases(store.snapshot()).items():
                prefix, _, rest = key.partition(".")
                if prefix == "store" and "." not in rest:
                    out[rest] = value
                elif prefix == "store":
                    out[f"store.{shard_id}.{rest}"] = value
                else:
                    out[f"store.{shard_id}.{key}"] = value
            return out
        return read

    def sibling(
        self,
        app_name: str,
        libraries: TrustedLibraryRegistry | None = None,
        runtime_config: RuntimeConfig | None = None,
    ) -> "Session":
        """A second application on this session's deployment.

        This is the paper's cross-application story: the sibling gets its
        own enclave and runtime but shares the store (or cluster), the
        attestation service, and the tracer — so results one application
        computes are hits for the other, and both show up in one trace.
        By default the sibling shares this session's library registry.
        """
        libraries = libraries if libraries is not None else self.runtime.libraries
        app = self.deployment.create_application(
            app_name, libraries, runtime_config
        )
        return Session(self.deployment, app, self.tracer)

    # -- registration ---------------------------------------------------------
    def register(self, library: TrustedLibrary) -> "Session":
        """Register a trusted library with the application runtime."""
        self.runtime.libraries.register(library)
        return self

    def mark(
        self,
        version: str = "0.0",
        signature: str | None = None,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ) -> Callable[[Callable], Callable]:
        """Decorator marking a self-defined function as deduplicable
        (the :func:`~repro.core.decorator.deduplicable_marker` front end
        bound to this session's application)."""
        return self._mark(
            version=version,
            signature=signature,
            input_parser=input_parser,
            result_parser=result_parser,
            native_factor=native_factor,
        )

    def deduplicable(
        self,
        description: FunctionDescription,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ) -> Deduplicable:
        """The Deduplicable version of a registered function (cached per
        description when no custom parsers are supplied)."""
        custom = (
            input_parser is not None
            or result_parser is not None
            or native_factor != 1.0
        )
        if not custom and description in self._deduplicables:
            return self._deduplicables[description]
        dedup = self.app.deduplicable(
            description,
            input_parser=input_parser,
            result_parser=result_parser,
            native_factor=native_factor,
        )
        if not custom:
            self._deduplicables[description] = dedup
        return dedup

    # -- execution ------------------------------------------------------------
    def execute(self, description: FunctionDescription, *args: Any) -> Any:
        """Run one deduplicated call of a registered function."""
        return self.deduplicable(description)(*args)

    def execute_result(
        self, description: FunctionDescription, *args: Any
    ) -> DedupResult:
        """Like :meth:`execute`, returning the full
        :class:`~repro.core.runtime.DedupResult`."""
        return self.deduplicable(description).call_result(*args)

    def execute_many(
        self, description: FunctionDescription, inputs: Sequence[Any]
    ) -> list[Any]:
        """Run a batch under one enclave entry (see
        :meth:`~repro.core.runtime.DedupRuntime.execute_many`)."""
        return self.deduplicable(description).map(inputs)

    def execute_many_results(
        self, description: FunctionDescription, inputs: Sequence[Any]
    ) -> list[DedupResult]:
        return self.deduplicable(description).map_results(inputs)

    def flush_puts(self) -> int:
        """Drain the asynchronous PUT queue off the critical path."""
        return self.runtime.flush_puts()

    def enable_pipeline(
        self,
        depth: int | str = 8,
        workers: int = 4,
        coalesce: bool = True,
        min_depth: int = 1,
        max_depth: int = 32,
    ):
        """Attach a pipelined execution engine to this session's runtime.

        Batched store GETs/PUTs then travel through the engine's
        multi-slot ``submit()/wait()`` fan-out with single-flight tag
        coalescing (see :mod:`repro.engine`), and async PUT drains are
        accounted as its background lane.  Results and counters are
        byte-identical to the serial path; the engine additionally
        reports the overlapped schedule's critical-path simulated time.

        ``depth="auto"`` swaps the static submit window for the AIMD
        :class:`~repro.engine.AdaptiveDepthController`: each round's
        depth moves inside ``[min_depth, max_depth]`` with observed
        round latency, failures, PUT back-pressure, and open migration
        windows (``min_depth``/``max_depth`` are ignored for a static
        ``depth``).  Returns the attached
        :class:`~repro.engine.PipelineEngine`.
        """
        from .engine import EngineConfig, PipelineEngine

        if self.is_cluster:
            deployment = self.deployment

            def shard_clocks() -> dict:
                # Read live so shards revived onto fresh platforms are
                # still accounted against the right machine clock.
                return {
                    shard_id: node.platform.clock
                    for shard_id, node in deployment.cluster.shards.items()
                }
        else:
            # Fig. 1 single-machine topology: the store shares the app
            # machine, so the engine sees no second clock and stays
            # serial (one machine cannot overlap with itself).
            def shard_clocks() -> dict:
                return {"store": self.deployment.platform.clock}

        engine = PipelineEngine(
            self.runtime.client,
            self.clock,
            shard_clocks=shard_clocks,
            config=EngineConfig(
                depth=depth, workers=workers, coalesce=coalesce,
                min_depth=min_depth, max_depth=max_depth,
            ),
            tracer=self.tracer,
        )
        self.runtime.attach_engine(engine)
        self.metrics.register_source("engine", engine.snapshot)
        return engine

    def close(self) -> int:
        """Flush all queued PUTs, settle engine accounting, and refuse
        further queued work (see :meth:`DedupRuntime.close`)."""
        return self.runtime.close()

    # -- topology -------------------------------------------------------------
    @property
    def is_cluster(self) -> bool:
        return isinstance(self.deployment, ClusterDeployment)

    @property
    def cluster(self):
        """The shard cluster (cluster sessions only)."""
        if not self.is_cluster:
            raise SpeedError("this session runs a single store, not a cluster")
        return self.deployment.cluster

    @property
    def store(self):
        """The single ResultStore (non-cluster sessions only)."""
        if self.is_cluster:
            raise SpeedError("this session runs a cluster; use .cluster")
        return self.deployment.store

    @property
    def network(self):
        """The deployment's simulated network (fault-injection surface)."""
        return self.deployment.network

    @property
    def fault(self):
        """The network's fault injector."""
        return self.deployment.network.ensure_fault_injector()

    @property
    def clock(self):
        """The application machine's simulated clock."""
        return self.deployment.clock

    @property
    def platform(self):
        """The application machine's simulated SGX platform."""
        return self.deployment.platform

    @property
    def enclave(self):
        """This application's enclave."""
        return self.app.enclave

    @property
    def stats(self):
        """This application's runtime counters (RuntimeStats)."""
        return self.runtime.stats

    def add_shard(
        self,
        shard_id: str | None = None,
        batch_entries: int = 32,
        weight: float = 1.0,
    ) -> TopologyReport:
        """Grow the cluster by one shard, online.

        The new machine is spawned, attested, and connected to every
        router; the ring opens a dual-ownership window and the tag
        ranges the newcomer owns stream over in ``batch_entries``-sized
        batches while foreground GET/PUT traffic keeps flowing (reads
        fail over old→new owners per range, writes land on the new
        owners).  ``weight`` sets the shard's relative capacity — its
        vnode count scales with it, so a weight-2.0 shard owns twice
        the tag share of a weight-1.0 one.  With a pipeline engine
        attached (:meth:`enable_pipeline`) each batch is accounted as a
        background lane; without one, each batch is a foreground stall.
        Crash-safe: both sides seal MIGRATE_* marks into their durable
        WALs (durable stores), so a power failure mid-migration recovers
        consistently.  Returns a structured :class:`TopologyReport`.
        """
        from .cluster.migration import MigrationConfig

        cluster = self.cluster
        migrator = cluster.begin_add_shard(
            shard_id,
            config=MigrationConfig(batch_entries=batch_entries),
            engine=self.runtime.engine,
            weight=weight,
        )
        report = self._drive(migrator, "add_shard")
        node = cluster.shards[migrator.shard_id]
        self.metrics.register_source(
            f"store.{migrator.shard_id}",
            self._shard_source(migrator.shard_id, node.store),
        )
        return report

    def apply_topology(
        self, plan, batch_entries: int = 32
    ) -> TopologyReport:
        """Apply a whole :class:`~repro.cluster.ring.TopologyPlan` —
        any mix of joins, leaves, and reweights — as **one** online
        dual-ownership window.

        Where N serialized ``add_shard()``/``remove_shard()`` calls pay
        N migration windows (and may move the same entries repeatedly as
        intermediate rings shift ownership back and forth), a plan
        computes the single old→new range diff and hands every moved
        range off once::

            from repro.cluster.ring import TopologyPlan

            plan = (TopologyPlan()
                    .join(weight=2.0)       # auto-named big machine
                    .join("cache-b")
                    .leave("shard-0")
                    .reweight("shard-1", 0.5))
            report = session.apply_topology(plan)

        Same streaming, overlap, and crash-safety machinery as
        :meth:`add_shard`; with a pipeline engine attached the window's
        transfers overlap foreground rounds one lane per gaining shard.
        Returns a :class:`TopologyReport` whose ``shard_id`` is the
        plan's compact label (e.g. ``"+s4+s5-s0~s1"``)."""
        from .cluster.migration import MigrationConfig

        cluster = self.cluster
        migrator = cluster.begin_plan(
            plan,
            config=MigrationConfig(batch_entries=batch_entries),
            engine=self.runtime.engine,
        )
        report = self._drive(migrator, "apply_topology")
        for sid in sorted(migrator.joiners):
            self.metrics.register_source(
                f"store.{sid}",
                self._shard_source(sid, cluster.shards[sid].store),
            )
        for sid in sorted(migrator.leavers):
            self.metrics.unregister_source(f"store.{sid}")
        return report

    def remove_shard(
        self, shard_id: str, batch_entries: int = 32
    ) -> TopologyReport:
        """Drain one shard online and take it off the ring.

        The leaver keeps serving reads for each range until that range's
        hand-off commits; once all ranges are handed to the surviving
        owners the ring settles and the shard goes dark.  Same streaming
        and crash-safety machinery as :meth:`add_shard`."""
        from .cluster.migration import MigrationConfig

        migrator = self.cluster.begin_remove_shard(
            shard_id,
            config=MigrationConfig(batch_entries=batch_entries),
            engine=self.runtime.engine,
        )
        report = self._drive(migrator, "remove_shard")
        self.metrics.unregister_source(f"store.{shard_id}")
        return report

    def rebalance(self, weights: dict | None = None) -> TopologyReport:
        """Repair or reshape placement under the current membership.

        Without ``weights`` this is the classic anti-entropy pass under
        the settled ring: push every entry to owners missing it and drop
        copies from non-owners — repairs placement drift left by crashes
        or replicas that were dead during a migration.  Idempotent.

        With ``weights`` (a ``{shard_id: weight}`` mapping over existing
        members) the shards are *reweighted* instead: one streaming
        dual-ownership window (a reweight-only
        :class:`~repro.cluster.ring.TopologyPlan`) migrates entries so
        each shard's ownership share tracks its new weight fraction.
        Shards already at the requested weight are left alone."""
        from .cluster.migration import rebalance
        from .cluster.ring import TopologyPlan

        cluster = self.cluster
        if weights:
            plan = TopologyPlan()
            for sid in sorted(weights):
                if cluster.ring.weight_of(sid) != weights[sid]:
                    plan = plan.reweight(sid, weights[sid])
            if plan.empty:
                return TopologyReport(
                    action="rebalance", shard_id="", ranges_moved=0,
                    entries_moved=0, bytes_moved=0, duplicates=0,
                    dropped=0, transfers=0, batches=0,
                    foreground_stalls=0, duration_s=0.0,
                )
            report = self.apply_topology(plan)
            return dataclasses.replace(report, action="rebalance")
        before = self._machine_clock_marks()
        report = rebalance(cluster)
        return TopologyReport(
            action="rebalance",
            shard_id="",
            ranges_moved=report.ranges_moved,
            entries_moved=report.moved,
            bytes_moved=report.bytes_moved,
            duplicates=report.duplicates,
            dropped=report.dropped,
            transfers=report.transfers,
            batches=report.batches,
            foreground_stalls=report.transfers,
            duration_s=self._machine_clock_delta(before),
        )

    def _drive(self, migrator, action: str) -> TopologyReport:
        cluster = self.cluster
        before = self._machine_clock_marks()
        try:
            report = migrator.run()
        except Exception:
            if not migrator.finished:
                # Joiner machines are the cluster's to reclaim — plain
                # migrator.abort() would restore the ring but leave the
                # spawned shards attached to every router.
                if migrator.action == "join":
                    cluster.abort_add_shard(migrator)
                elif migrator.action == "plan":
                    cluster.abort_plan(migrator)
                else:
                    migrator.abort()
            raise
        return TopologyReport(
            action=action,
            shard_id=migrator.shard_id,
            ranges_moved=report.ranges_moved,
            entries_moved=report.moved,
            bytes_moved=report.bytes_moved,
            duplicates=report.duplicates,
            dropped=report.dropped,
            transfers=report.transfers,
            batches=report.batches,
            foreground_stalls=migrator.stalled_batches,
            duration_s=self._machine_clock_delta(before),
        )

    def _machine_clock_marks(self) -> dict:
        marks = {"app": self.clock.elapsed_seconds()}
        for shard_id, node in self.cluster.shards.items():
            marks[shard_id] = node.platform.clock.elapsed_seconds()
        return marks

    def _machine_clock_delta(self, before: dict) -> float:
        """Largest clock advance any machine saw (machines run in
        parallel, so the busiest one bounds the simulated wall time).  A
        shard spawned after the marks (a joiner) starts from zero."""
        delta = self.clock.elapsed_seconds() - before["app"]
        for shard_id, node in self.cluster.shards.items():
            prior = before.get(shard_id, 0.0)
            delta = max(delta, node.platform.clock.elapsed_seconds() - prior)
        return delta

    def kill_shard(self, shard_id: str) -> None:
        self.cluster.kill_shard(shard_id)

    def revive_shard(self, shard_id: str) -> None:
        self.cluster.revive_shard(shard_id)

    def power_fail_shard(self, shard_id: str):
        """Power-fail one shard and recover it from its durable log (see
        :meth:`~repro.cluster.cluster.StoreCluster.power_fail_shard`);
        requires ``StoreConfig(durable=True)``.  Returns the
        :class:`~repro.durable.recovery.RecoveryReport`."""
        return self.cluster.power_fail_shard(shard_id)

    # -- observability ---------------------------------------------------------
    def snapshot(self) -> dict:
        """Every component's counters, one flat canonical dict."""
        return self.metrics.snapshot()

    def to_json(self, indent: int | None = None) -> str:
        return self.metrics.to_json(indent=indent)

    def last_trace(self) -> list[Span]:
        """All spans of the most recent traced request."""
        return self.tracer.last_trace() if self.tracer.enabled else []

    def trace_tree(self) -> list[SpanNode]:
        """Parent/child-linked roots of the most recent trace."""
        return self.tracer.tree() if self.tracer.enabled else []

    def trace_table(self, title: str | None = None) -> str:
        """The most recent trace as an indented human-readable table."""
        return format_trace(self.last_trace(), title=title)

    def phase_breakdown(self) -> dict:
        """Cumulative per-phase latency totals (wall + simulated)."""
        return self.tracer.phase_breakdown() if self.tracer.enabled else {}

    def phase_table(self, title: str | None = None) -> str:
        return format_phase_breakdown(self.phase_breakdown(), title=title)

    def slow_calls(self) -> list[SlowCall]:
        """The slow-call log (spans over the configured thresholds)."""
        return list(self.tracer.slow_log) if self.tracer.enabled else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "cluster" if self.is_cluster else "single-store"
        return f"<Session app={self.app.name!r} {kind}>"
