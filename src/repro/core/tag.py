"""Tag derivation: ``t ← Hash(func, m)`` (Algorithms 1 & 2, line 1).

"Two computations are considered duplicated if their tags are identical"
(§II-A).  The tag binds the function identity (from the trusted-library
scan, :mod:`repro.core.description`) to the canonical input encoding.
"""

from __future__ import annotations

from ..crypto.hashes import DIGEST_SIZE, tagged_hash
from ..sgx.cost_model import SimClock

TAG_SIZE = DIGEST_SIZE


def derive_tag(func_identity: bytes, input_bytes: bytes, clock: SimClock | None = None) -> bytes:
    """Compute the duplicate-checking tag for one computation.

    The cost model charges the SHA-256 pass over function identity plus
    input data — the "Tag Gen." column of the paper's Table I.
    """
    if clock is not None:
        clock.charge_hash(len(func_identity) + len(input_bytes))
    return tagged_hash(b"speed/tag", func_identity, input_bytes)


def derive_locking_hash(
    func_identity: bytes,
    input_bytes: bytes,
    challenge: bytes,
    clock: SimClock | None = None,
) -> bytes:
    """Compute ``h ← Hash(func, m, r)`` (Algorithm 1 line 6 / Algorithm 2
    line 4): the secondary key that wraps the random result key.

    Charged as the "Key Gen." / "Key Rec." columns of Table I.
    """
    if clock is not None:
        clock.charge_hash(len(func_identity) + len(input_bytes) + len(challenge))
    return tagged_hash(b"speed/locking-hash", func_identity, input_bytes, challenge)
