"""Per-runtime instrumentation for experiments and examples.

Every deduplicated call records both wall-clock time (honest Python
measurement) and simulated time (the calibrated virtual clock), so the
benchmark harness can print the paper's relative-running-time series in
both units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import namespaced


@dataclass(frozen=True)
class CallRecord:
    """One deduplicated function call.

    For calls executed through :meth:`DedupRuntime.execute_many`, costs
    shared by the whole batch (the single ECALL, the batched OCALL, the
    one channel record) are split evenly across the batch's records, so
    summing ``sim_seconds`` over a batch still equals the batch's total.
    ``l1_hit`` marks hits served from the in-enclave L1 cache without any
    store round-trip.
    """

    description: str
    hit: bool
    input_bytes: int
    result_bytes: int
    wall_seconds: float
    sim_seconds: float
    l1_hit: bool = False
    batch_size: int = 1
    # The store was unreachable and the runtime computed locally instead
    # of failing (graceful degradation — Algorithm 1's path, entered for
    # availability rather than novelty).  Mutually exclusive with hit.
    degraded: bool = False
    # Single-flight: this call carried a tag identical to another call
    # in flight in the same batch and was handed that leader's result —
    # one store round trip and one verification for the whole group.
    # Always a hit (of whatever kind the leader's outcome was).
    coalesced: bool = False


@dataclass
class RuntimeStats:
    """Counters for one DedupRuntime instance.

    PUT accounting is explicit: every flushed PUT ends up in exactly one
    of ``puts_accepted`` (store said yes), ``puts_rejected`` (store said
    no — duplicate-rejection, quota, malformed), or ``puts_failed`` (the
    reply was an error message, e.g. the record was corrupted in
    transit).  PUTs whose response never arrived are *not* silently
    counted anywhere — they remain visible as
    :attr:`DedupRuntime.puts_unacknowledged`.
    """

    calls: int = 0
    hits: int = 0
    misses: int = 0
    # Store unreachable, computed locally: a third, mutually exclusive
    # call outcome, so hits + misses + degraded == calls always holds
    # (the simulation harness asserts this conservation invariant).
    degraded: int = 0
    l1_hits: int = 0
    # Hits served by single-flight coalescing (pipelined engine): the
    # call shared an in-flight leader's round trip/verification/compute.
    coalesced_hits: int = 0
    batches: int = 0
    verification_failures: int = 0
    puts_sent: int = 0
    puts_accepted: int = 0
    puts_rejected: int = 0
    puts_failed: int = 0
    records: list[CallRecord] = field(default_factory=list)

    def record_call(self, record: CallRecord) -> None:
        self.calls += 1
        if record.hit:
            self.hits += 1
        elif record.degraded:
            self.degraded += 1
        else:
            self.misses += 1
        if record.l1_hit:
            self.l1_hits += 1
        if record.coalesced:
            self.coalesced_hits += 1
        self.records.append(record)

    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def total_wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.records)

    def total_sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.records)

    #: Legacy snapshot keys whose spelling was inconsistent (mixed
    #: tense/units) and their normalized ``runtime.<metric>`` names.
    _RENAMES = {
        "total_wall_seconds": "wall_seconds_total",
        "total_sim_seconds": "sim_seconds_total",
        "degraded": "degraded_calls",
    }

    def snapshot(self) -> dict:
        """One flat dict with every counter plus the derived aggregates.

        This is the single structure observability consumers (the cluster
        bench, examples, the MetricsRegistry) read, instead of picking
        attributes off the dataclass one by one.  Canonical keys are
        ``runtime.<metric>``; the historical un-namespaced keys remain as
        aliases for one release.  The per-call records list is
        deliberately excluded — a snapshot is cheap and JSON-ready.
        """
        return namespaced("runtime", {
            "calls": self.calls,
            "hits": self.hits,
            "misses": self.misses,
            "degraded": self.degraded,
            "l1_hits": self.l1_hits,
            "coalesced_hits": self.coalesced_hits,
            "batches": self.batches,
            "verification_failures": self.verification_failures,
            "puts_sent": self.puts_sent,
            "puts_accepted": self.puts_accepted,
            "puts_rejected": self.puts_rejected,
            "puts_failed": self.puts_failed,
            "hit_rate": self.hit_rate(),
            "total_wall_seconds": self.total_wall_seconds(),
            "total_sim_seconds": self.total_sim_seconds(),
        }, renames=self._RENAMES)
