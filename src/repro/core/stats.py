"""Per-runtime instrumentation for experiments and examples.

Every deduplicated call records both wall-clock time (honest Python
measurement) and simulated time (the calibrated virtual clock), so the
benchmark harness can print the paper's relative-running-time series in
both units.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CallRecord:
    """One deduplicated function call."""

    description: str
    hit: bool
    input_bytes: int
    result_bytes: int
    wall_seconds: float
    sim_seconds: float


@dataclass
class RuntimeStats:
    """Counters for one DedupRuntime instance."""

    calls: int = 0
    hits: int = 0
    misses: int = 0
    verification_failures: int = 0
    puts_sent: int = 0
    puts_accepted: int = 0
    puts_rejected: int = 0
    records: list[CallRecord] = field(default_factory=list)

    def record_call(self, record: CallRecord) -> None:
        self.calls += 1
        if record.hit:
            self.hits += 1
        else:
            self.misses += 1
        self.records.append(record)

    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def total_wall_seconds(self) -> float:
        return sum(r.wall_seconds for r in self.records)

    def total_sim_seconds(self) -> float:
        return sum(r.sim_seconds for r in self.records)
