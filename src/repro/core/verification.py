"""The Fig. 3 verification protocol.

When the ResultStore answers a GET positively, DedupRuntime must check —
*inside the application enclave* — that it can actually recover the
result: it recomputes ``h' = Hash(func, m, r)``, unwraps ``k' = [k] ⊕ h'``
and attempts the authenticated decryption.  ``⊥`` (a failed authenticity
check) means either the application does not really own ``(func, m)`` or
the stored data was poisoned; in both cases the protocol "Ret false" and
the caller falls back to fresh computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scheme import ProtectedResult, ResultScheme
from ..errors import IntegrityError
from ..sgx.cost_model import SimClock


@dataclass(frozen=True)
class VerificationOutcome:
    """Result of running the protocol on one GET response."""

    ok: bool
    result_bytes: bytes = b""
    reason: str = ""


def verify_and_recover(
    scheme: ResultScheme,
    func_identity: bytes,
    input_bytes: bytes,
    tag: bytes,
    protected: ProtectedResult,
    clock: SimClock | None = None,
) -> VerificationOutcome:
    """Run Fig. 3: returns ``(true, res)`` or ``(false, ·)``.

    Never raises on authenticity failure — the protocol's contract is a
    boolean verdict, and the runtime treats ``false`` as a miss.
    """
    try:
        result = scheme.recover(func_identity, input_bytes, tag, protected, clock)
    except IntegrityError as exc:
        return VerificationOutcome(ok=False, reason=f"decryption rejected: {exc}")
    except Exception as exc:  # malformed challenge/wrapped key shapes
        return VerificationOutcome(ok=False, reason=f"malformed stored entry: {exc}")
    return VerificationOutcome(ok=True, result_bytes=result)
