"""Decorator front end for marking self-defined functions.

The paper's API wraps functions from ported trusted libraries; footnote
3 notes that support for plain C functions (function pointers) is future
work.  The Python analogue of that convenience is a decorator: mark "a
self-defined but reusable function within a single application" (§III-A)
without hand-writing a TrustedLibrary::

    app = deployment.create_application("svc", libs)
    mark = deduplicable_marker(app)

    @mark(version="1.0")
    def normalize(data: bytes) -> bytes:
        ...

    normalize(payload)          # deduplicated call, as normal
    normalize.original(payload) # the unwrapped function, if ever needed

Each decorated function is registered into a per-application synthetic
trusted library (family ``"app:<name>"``), so all the identity and
cross-application sharing machinery applies unchanged: two applications
decorating byte-identical functions with the same version share results.
"""

from __future__ import annotations

import functools
from typing import Callable

from .deduplicable import Deduplicable
from .description import FunctionDescription, TrustedLibrary
from .serialization import Parser
from ..deployment import Application

_FAMILY_PREFIX = "app"


def deduplicable_marker(app: Application):
    """Build a decorator factory bound to one application."""

    def mark(
        version: str = "0.0",
        signature: str | None = None,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ) -> Callable[[Callable], Callable]:
        def decorate(func: Callable) -> Callable:
            sig = signature or f"{func.__name__}(...)"
            family = f"{_FAMILY_PREFIX}:{func.__module__}.{func.__qualname__}"
            library = TrustedLibrary(family, version).add(sig, func)
            app.runtime.libraries.register(library)
            description = FunctionDescription(family, version, sig)
            dedup = Deduplicable(
                app.runtime, description,
                input_parser=input_parser,
                result_parser=result_parser,
                native_factor=native_factor,
            )

            # The wrapper is a pure shim: every surface (plain call,
            # result-carrying call, batch map) is the Deduplicable's own
            # code path, so decorated and hand-wrapped functions behave
            # identically down to argument marshalling and tags.
            @functools.wraps(func)
            def wrapper(*args):
                return dedup(*args)

            wrapper.original = func
            wrapper.deduplicable = dedup
            wrapper.description = description
            wrapper.call_result = dedup.call_result
            wrapper.map = dedup.map
            wrapper.map_results = dedup.map_results
            return wrapper

        return decorate

    return mark
