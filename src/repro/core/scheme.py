"""Result-protection schemes: the paper's §III-B and §III-C designs.

Two schemes share one interface:

* :class:`SingleKeyScheme` — the basic design (§III-B): one system-wide
  AES-GCM key shared by all participating applications.  Simple, but "a
  single point of compromise".
* :class:`CrossAppScheme` — the main design (§III-C, Algorithms 1 & 2):
  per-result random keys wrapped with the computation-locked one-time pad
  ``h = Hash(func, m, r)``, where the challenge ``r`` is chosen at the
  initial computation and kept by the ResultStore.  No shared key; only
  an application that owns both the function code and the input can
  unwrap.

Both seal the result with AES-GCM-128 and bind the ciphertext to the tag
via the AEAD associated data, which is what defeats cache poisoning: a
ciphertext moved or forged under a different tag fails authentication.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .tag import derive_locking_hash
from ..crypto import gcm
from ..crypto.hashes import DIGEST_SIZE
from ..errors import CryptoError, IntegrityError
from ..sgx.cost_model import SimClock

KEY_SIZE = 16
IV_SIZE = 12
CHALLENGE_SIZE = 32


@dataclass(frozen=True)
class ProtectedResult:
    """What travels to the ResultStore: ``(r, [k], [res])``."""

    challenge: bytes      # r   (empty for the single-key scheme)
    wrapped_key: bytes    # [k] (empty for the single-key scheme)
    sealed_result: bytes  # [res] = iv || gcm tag || ciphertext


class ResultScheme(abc.ABC):
    """Common interface over the two result-protection designs."""

    name: str = "abstract"

    @abc.abstractmethod
    def protect(
        self,
        func_identity: bytes,
        input_bytes: bytes,
        tag: bytes,
        result_bytes: bytes,
        rand,
        clock: SimClock | None = None,
    ) -> ProtectedResult:
        """Encrypt a freshly computed result (Algorithm 1, lines 5-9)."""

    @abc.abstractmethod
    def recover(
        self,
        func_identity: bytes,
        input_bytes: bytes,
        tag: bytes,
        protected: ProtectedResult,
        clock: SimClock | None = None,
    ) -> bytes:
        """Recover a stored result (Algorithm 2, lines 4-6); raises
        :class:`~repro.errors.IntegrityError` if the caller does not own
        the computation or the ciphertext was tampered with."""


def _xor16(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class CrossAppScheme(ResultScheme):
    """The paper's main design (§III-C): RCE locked to the computation."""

    name = "cross-app"

    def protect(self, func_identity, input_bytes, tag, result_bytes, rand, clock=None):
        challenge = rand(CHALLENGE_SIZE)                       # line 5: r
        locking = derive_locking_hash(func_identity, input_bytes, challenge, clock)  # line 6: h
        if clock is not None:
            clock.charge_keygen()
        key = rand(KEY_SIZE)                                   # line 7: k ← KeyGen
        iv = rand(IV_SIZE)
        if clock is not None:
            clock.charge_aead_encrypt(len(result_bytes))
        sealed = gcm.seal(key, iv, result_bytes, aad=tag)      # line 8: [res]
        wrapped = _xor16(key, locking[:KEY_SIZE])              # line 9: [k] = k ⊕ h
        return ProtectedResult(challenge=challenge, wrapped_key=wrapped, sealed_result=sealed)

    def recover(self, func_identity, input_bytes, tag, protected, clock=None):
        if len(protected.challenge) != CHALLENGE_SIZE:
            raise CryptoError("malformed challenge")
        if len(protected.wrapped_key) != KEY_SIZE:
            raise CryptoError("malformed wrapped key")
        locking = derive_locking_hash(func_identity, input_bytes, protected.challenge, clock)
        key = _xor16(protected.wrapped_key, locking[:KEY_SIZE])  # line 5: k = [k] ⊕ h
        if clock is not None:
            clock.charge_aead_decrypt(len(protected.sealed_result))
        return gcm.open_(key, protected.sealed_result, aad=tag)  # line 6, ⊥ → raise


class SingleKeyScheme(ResultScheme):
    """The basic design (§III-B): one shared system-wide key."""

    name = "single-key"

    def __init__(self, system_key: bytes):
        if len(system_key) != KEY_SIZE:
            raise CryptoError(f"system key must be {KEY_SIZE} bytes")
        self._key = system_key

    def protect(self, func_identity, input_bytes, tag, result_bytes, rand, clock=None):
        iv = rand(IV_SIZE)
        if clock is not None:
            clock.charge_aead_encrypt(len(result_bytes))
        sealed = gcm.seal(self._key, iv, result_bytes, aad=tag)
        return ProtectedResult(challenge=b"", wrapped_key=b"", sealed_result=sealed)

    def recover(self, func_identity, input_bytes, tag, protected, clock=None):
        if clock is not None:
            clock.charge_aead_decrypt(len(protected.sealed_result))
        return gcm.open_(self._key, protected.sealed_result, aad=tag)


class PlaintextScheme(ResultScheme):
    """No protection at all — the UNIC [16] baseline regime, where cached
    results live in plaintext.  Exists for the baseline comparisons only;
    never use outside benchmarks."""

    name = "plaintext"

    def protect(self, func_identity, input_bytes, tag, result_bytes, rand, clock=None):
        return ProtectedResult(challenge=b"", wrapped_key=b"", sealed_result=result_bytes)

    def recover(self, func_identity, input_bytes, tag, protected, clock=None):
        return protected.sealed_result


def challenge_matches(protected: ProtectedResult) -> bool:
    """Shape check used by store-side validation."""
    return (
        len(protected.challenge) in (0, CHALLENGE_SIZE)
        and len(protected.wrapped_key) in (0, KEY_SIZE)
    )


__all__ = [
    "CHALLENGE_SIZE",
    "CrossAppScheme",
    "IV_SIZE",
    "KEY_SIZE",
    "PlaintextScheme",
    "ProtectedResult",
    "ResultScheme",
    "SingleKeyScheme",
    "challenge_matches",
]

# Re-exported for tests that need to assert digest sizes line up.
assert DIGEST_SIZE >= KEY_SIZE
# IntegrityError is part of this module's contract (recover raises it).
_ = IntegrityError
