"""Approximate computation deduplication (opt-in extension).

The paper's related work (§I, [22]-[24]: Potluck, Doppelgänger, LUT
allocation) extends computation deduplication to *error-resilient*
applications: "share the common processing results when facing highly-
correlated (or similar) input data".  This module brings that idea into
SPEED's security framework.

Mechanism
---------
Inputs are mapped to a 64-bit **SimHash** fingerprint over shingled
features; the fingerprint is cut into ``bands`` (classic LSH banding).
Two inputs that are similar enough agree on at least one band with high
probability.  Each band value yields its own dedup tag and its own
key-locking value, so the stored result can be recovered by *any*
application that owns the function and an input falling in the same
band:

    tag_i     = Hash(func, "band", i, band_value_i)
    locking_i = Hash(func, "band", i, band_value_i, r)

Security trade-off (read before using)
--------------------------------------
Exact SPEED locks results to the full input; this extension locks them
to a band value — a *coarser* secret.  That is precisely what makes
similar-input reuse possible, and it is also a weaker guarantee: an
adversary no longer needs the exact input, only one that collides in a
band, and band values have far less entropy than inputs.  Use only for
computations whose results are not sensitive beyond the input class
(the error-resilient multimedia/mining workloads of [22]-[24]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import time

from .scheme import CrossAppScheme, ProtectedResult
from .serialization import AnyParser, Parser
from .verification import verify_and_recover
from ..crypto.hashes import tagged_hash
from ..errors import DedupError
from ..net.messages import GetRequest, GetResponse, PutRequest
from ..sgx.cost_model import SimClock

FINGERPRINT_BITS = 64


def shingle_features(data: bytes, k: int = 4, stride: int = 1) -> list[bytes]:
    """Overlapping k-byte shingles — the default feature extractor."""
    if k <= 0:
        raise DedupError("shingle size must be positive")
    if len(data) < k:
        return [data] if data else []
    return [data[i:i + k] for i in range(0, len(data) - k + 1, stride)]


def simhash64(features: list[bytes]) -> int:
    """Charikar's SimHash: similar feature multisets give fingerprints
    with small Hamming distance."""
    if not features:
        return 0
    counters = [0] * FINGERPRINT_BITS
    for feature in features:
        h = int.from_bytes(tagged_hash(b"approx/feature", feature)[:8], "big")
        for bit in range(FINGERPRINT_BITS):
            if (h >> bit) & 1:
                counters[bit] += 1
            else:
                counters[bit] -= 1
    fingerprint = 0
    for bit in range(FINGERPRINT_BITS):
        if counters[bit] > 0:
            fingerprint |= 1 << bit
    return fingerprint


def hamming_distance(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


def band_values(fingerprint: int, bands: int) -> list[int]:
    """Split a fingerprint into ``bands`` equal bit slices."""
    if bands <= 0 or FINGERPRINT_BITS % bands:
        raise DedupError(f"bands must divide {FINGERPRINT_BITS}")
    width = FINGERPRINT_BITS // bands
    mask = (1 << width) - 1
    return [(fingerprint >> (i * width)) & mask for i in range(bands)]


@dataclass
class ApproximateStats:
    calls: int = 0
    exact_band_hits: int = 0
    misses: int = 0
    verification_failures: int = 0


@dataclass
class ApproximateDeduplicable:
    """A similarity-deduplicated version of one error-resilient function.

    Built on the application's existing DedupRuntime plumbing (same
    enclave, same store client, same RCE-based scheme); only the tag and
    key-locking derivation differ, as described in the module docstring.
    """

    runtime: "Any"                     # DedupRuntime
    description: "Any"                 # FunctionDescription
    feature_extractor: Callable[[bytes], list[bytes]] = shingle_features
    bands: int = 4
    input_parser: Parser | None = None
    result_parser: Parser | None = None
    native_factor: float = 1.0
    scheme: CrossAppScheme = field(default_factory=CrossAppScheme)
    stats: ApproximateStats = field(default_factory=ApproximateStats)

    def _band_identity(self, func_identity: bytes, index: int, value: int) -> bytes:
        return tagged_hash(
            b"approx/band-identity",
            func_identity,
            index.to_bytes(2, "big"),
            value.to_bytes(8, "big"),
        )

    def __call__(self, *args: Any) -> Any:
        if len(args) != 1:
            raise DedupError("approximate dedup supports single-argument functions")
        input_value = args[0]
        runtime = self.runtime
        clock: SimClock = runtime.clock
        input_parser = self.input_parser or AnyParser(runtime.parsers)
        result_parser = self.result_parser or AnyParser(runtime.parsers)
        self.stats.calls += 1

        with runtime.enclave.ecall("approx_execute"):
            func = runtime.libraries.lookup(self.description)
            func_identity = runtime.libraries.function_identity(self.description)
            input_bytes = input_parser.encode(input_value)
            clock.charge_hash(len(input_bytes))  # fingerprinting pass
            fingerprint = simhash64(self.feature_extractor(input_bytes))
            values = band_values(fingerprint, self.bands)

            # Probe every band; first verifiable hit wins.
            for index, value in enumerate(values):
                band_id = self._band_identity(func_identity, index, value)
                tag = tagged_hash(b"approx/tag", band_id)
                clock.charge_hash(len(band_id))
                with runtime.enclave.ocall("approx_get", in_bytes=len(tag)):
                    response = runtime.client.call(
                        GetRequest(tag=tag, app_id=runtime.config.app_id)
                    )
                if not isinstance(response, GetResponse) or not response.found:
                    continue
                outcome = verify_and_recover(
                    self.scheme, band_id, band_id, tag,
                    ProtectedResult(
                        challenge=response.challenge,
                        wrapped_key=response.wrapped_key,
                        sealed_result=response.sealed_result,
                    ),
                    clock,
                )
                if outcome.ok:
                    self.stats.exact_band_hits += 1
                    return result_parser.decode(outcome.result_bytes)
                self.stats.verification_failures += 1

            # Miss on all bands: compute and publish under every band.
            self.stats.misses += 1
            start = time.perf_counter()
            result_value = func(input_value)
            clock.charge_compute(time.perf_counter() - start, self.native_factor)
            result_bytes = result_parser.encode(result_value)
            for index, value in enumerate(values):
                band_id = self._band_identity(func_identity, index, value)
                tag = tagged_hash(b"approx/tag", band_id)
                protected = self.scheme.protect(
                    band_id, band_id, tag, result_bytes,
                    rand=runtime.enclave.read_rand, clock=clock,
                )
                with runtime.enclave.ocall("approx_put"):
                    runtime.client.send_oneway(PutRequest(
                        tag=tag,
                        challenge=protected.challenge,
                        wrapped_key=protected.wrapped_key,
                        sealed_result=protected.sealed_result,
                        app_id=runtime.config.app_id,
                    ))
        runtime.client.drain_responses()
        return result_value
