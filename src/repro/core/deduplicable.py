"""The developer-facing API: ``Deduplicable`` (paper §IV-C, Fig. 4).

"The API is centered on a Deduplicable object, which wraps the
interaction with [the] underlying trusted DedupRuntime, conversion
between data formats, and all other intermediate operations. ... To make
a function deduplicable, the developer only needs to create a
Deduplicable version by providing the aforementioned simple description,
and then uses the new version as normal.  This usually requires a change
of only 2 lines of code per function call."

The Python rendering of the paper's C++ template API::

    # line 1: create the Deduplicable version of the function
    dedup_deflate = Deduplicable(runtime, FunctionDescription("zlib", "1.2.11", "bytes deflate(bytes)"))
    # line 2: use it as normal
    compressed = dedup_deflate(data)
"""

from __future__ import annotations

from typing import Any, Sequence

from .description import FunctionDescription
from .runtime import DedupResult, DedupRuntime
from .serialization import AnyParser, Parser, TupleParser


class Deduplicable:
    """A callable, deduplicated version of one trusted-library function.

    Parameters
    ----------
    runtime:
        The application's DedupRuntime.
    description:
        Library family / version / signature identifying the function;
        the runtime verifies the application actually links that code.
    input_parser, result_parser:
        Optional explicit parsers; by default the self-describing
        :class:`~repro.core.serialization.AnyParser` resolves parsers
        from the runtime's registry by value type.
    native_factor:
        Calibration constant for the simulated clock: how many times
        faster the paper's native library runs than our pure-Python
        reimplementation (see DESIGN.md §2).
    """

    def __init__(
        self,
        runtime: DedupRuntime,
        description: FunctionDescription,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ):
        self.runtime = runtime
        self.description = description
        self._input_parser = input_parser
        self._result_parser = result_parser
        self.native_factor = native_factor
        # Fail fast at creation time if the app does not own the code.
        with runtime.enclave.ecall("deduplicable_create"):
            runtime.libraries.lookup(description)

    def _resolve_args(self, args: tuple) -> tuple[Any, Parser | None, bool]:
        """Map a ``*args`` call onto (input value, input parser, unpack).

        This is the single argument-marshalling code path shared by
        direct calls, the decorator front end, and the batch entry
        points, so every surface agrees on how multi-argument calls are
        serialized (and therefore on the tags they derive).
        """
        if not args:
            raise TypeError("a deduplicated call needs at least one argument")
        if len(args) == 1:
            return args[0], self._input_parser, False
        if self._input_parser is not None:
            input_parser: Parser = self._input_parser
        else:
            registry = self.runtime.parsers
            input_parser = TupleParser(*(AnyParser(registry) for _ in args))
        return tuple(args), input_parser, True

    def __call__(self, *args: Any) -> Any:
        """Invoke the function with deduplication, "as normal"."""
        return self.call_result(*args).value

    def call_result(self, *args: Any) -> DedupResult:
        """Invoke with deduplication; return the full
        :class:`~repro.core.runtime.DedupResult` (value + hit/source/tag
        + span ids) instead of the bare value."""
        input_value, input_parser, unpack = self._resolve_args(args)
        return self.runtime.execute_result(
            self.description,
            input_value,
            input_parser=input_parser,
            result_parser=self._result_parser,
            unpack_args=unpack,
            native_factor=self.native_factor,
        )

    def map(self, inputs: Sequence[Any]) -> list[Any]:
        """Run a whole batch of single-argument calls in one enclave
        entry (:meth:`DedupRuntime.execute_many`)."""
        return [r.value for r in self.map_results(inputs)]

    def map_results(self, inputs: Sequence[Any]) -> list[DedupResult]:
        """Batch variant of :meth:`call_result`: one
        :class:`~repro.core.runtime.DedupResult` per input."""
        return self.runtime.execute_many_results(
            self.description,
            list(inputs),
            input_parser=self._input_parser,
            result_parser=self._result_parser,
            native_factor=self.native_factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deduplicable {self.description}>"
