"""The developer-facing API: ``Deduplicable`` (paper §IV-C, Fig. 4).

"The API is centered on a Deduplicable object, which wraps the
interaction with [the] underlying trusted DedupRuntime, conversion
between data formats, and all other intermediate operations. ... To make
a function deduplicable, the developer only needs to create a
Deduplicable version by providing the aforementioned simple description,
and then uses the new version as normal.  This usually requires a change
of only 2 lines of code per function call."

The Python rendering of the paper's C++ template API::

    # line 1: create the Deduplicable version of the function
    dedup_deflate = Deduplicable(runtime, FunctionDescription("zlib", "1.2.11", "bytes deflate(bytes)"))
    # line 2: use it as normal
    compressed = dedup_deflate(data)
"""

from __future__ import annotations

from typing import Any

from .description import FunctionDescription
from .runtime import DedupRuntime
from .serialization import AnyParser, Parser, TupleParser


class Deduplicable:
    """A callable, deduplicated version of one trusted-library function.

    Parameters
    ----------
    runtime:
        The application's DedupRuntime.
    description:
        Library family / version / signature identifying the function;
        the runtime verifies the application actually links that code.
    input_parser, result_parser:
        Optional explicit parsers; by default the self-describing
        :class:`~repro.core.serialization.AnyParser` resolves parsers
        from the runtime's registry by value type.
    native_factor:
        Calibration constant for the simulated clock: how many times
        faster the paper's native library runs than our pure-Python
        reimplementation (see DESIGN.md §2).
    """

    def __init__(
        self,
        runtime: DedupRuntime,
        description: FunctionDescription,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        native_factor: float = 1.0,
    ):
        self.runtime = runtime
        self.description = description
        self._input_parser = input_parser
        self._result_parser = result_parser
        self.native_factor = native_factor
        # Fail fast at creation time if the app does not own the code.
        with runtime.enclave.ecall("deduplicable_create"):
            runtime.libraries.lookup(description)

    def __call__(self, *args: Any) -> Any:
        """Invoke the function with deduplication, "as normal"."""
        if not args:
            raise TypeError("a deduplicated call needs at least one argument")
        if len(args) == 1:
            input_value: Any = args[0]
            input_parser = self._input_parser
            unpack = False
        else:
            input_value = tuple(args)
            if self._input_parser is not None:
                input_parser = self._input_parser
            else:
                registry = self.runtime.parsers
                input_parser = TupleParser(*(AnyParser(registry) for _ in args))
            unpack = True
        return self.runtime.execute(
            self.description,
            input_value,
            input_parser=input_parser,
            result_parser=self._result_parser,
            unpack_args=unpack,
            native_factor=self.native_factor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deduplicable {self.description}>"
