"""Function descriptions and trusted-library identity (paper §IV-B).

DedupRuntime does not hash raw executable bytes — "the same code may be
compiled into different executable files in different compilation
environment".  Instead the developer supplies a *description* of a marked
function — library family, version number, function signature — e.g.
``("zlib", "1.2.11", "int deflate(...)")``.  The runtime then "verif[ies]
that the application indeed owns the actual code of the function by
scanning the underlying trusted library, and derive[s] a universally
unique value for function identification".

Our Python rendering: a :class:`TrustedLibrary` groups the ported
functions of one library; the registry checks a description against the
libraries linked into the application enclave and derives the function
identity from the description plus a fingerprint of the actual code
object — so two applications that link the same library version derive
the same identity, while an application that merely *claims* the
description without the code cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import CodeType
from typing import Callable

from ..crypto.hashes import tagged_hash
from ..errors import DedupError


@dataclass(frozen=True)
class FunctionDescription:
    """What the developer writes to mark a function (Fig. 4)."""

    family: str      # e.g. "zlib"
    version: str     # e.g. "1.2.11"
    signature: str   # e.g. "int deflate(...)"

    def canonical_bytes(self) -> bytes:
        return tagged_hash(
            b"speed/func-desc",
            self.family.encode(),
            self.version.encode(),
            self.signature.encode(),
        )

    def __str__(self) -> str:
        return f'("{self.family}", "{self.version}", {self.signature})'


def _const_fingerprint(const) -> bytes:
    """One constant's contribution to a code fingerprint.

    Nested code objects (genexprs, lambdas, inner defs) must recurse:
    their ``repr`` embeds the object's memory address, which would make
    the fingerprint — and therefore every tag derived from it — vary
    per process under ASLR.
    """
    if isinstance(const, CodeType):
        return _code_object_fingerprint(const)
    return tagged_hash(b"speed/code-fp/const", repr(const).encode())


def _code_object_fingerprint(code: CodeType) -> bytes:
    return tagged_hash(
        b"speed/code-fp/code",
        code.co_code,
        str(code.co_argcount).encode(),
        *(_const_fingerprint(c) for c in code.co_consts),
    )


def code_fingerprint(func: Callable) -> bytes:
    """Fingerprint the actual code of a trusted-library function.

    Python's analogue of scanning the trusted library's text: the
    bytecode and constants of the function object, recursing into
    nested code objects.  Identical source at the same interpreter
    version fingerprints identically across applications — and across
    processes — which is what cross-application deduplication needs.
    """
    code = getattr(func, "__code__", None)
    if code is None:
        # Builtins / callables without code objects: identity by qualified name.
        name = getattr(func, "__qualname__", repr(func))
        return tagged_hash(b"speed/code-fp/builtin", name.encode())
    return tagged_hash(b"speed/code-fp", _code_object_fingerprint(code))


@dataclass
class TrustedLibrary:
    """One ported ("properly ported, at the applications", §IV-B fn. 2)
    trusted library linked into an application enclave."""

    family: str
    version: str
    functions: dict[str, Callable] = field(default_factory=dict)

    def add(self, signature: str, func: Callable) -> "TrustedLibrary":
        if signature in self.functions:
            raise DedupError(f"duplicate signature {signature!r} in {self.family}")
        self.functions[signature] = func
        return self

    def code_identity(self) -> bytes:
        """Contribution of this library to the enclave measurement."""
        parts = [self.family.encode(), self.version.encode()]
        for signature in sorted(self.functions):
            parts.append(signature.encode())
            parts.append(code_fingerprint(self.functions[signature]))
        return tagged_hash(b"speed/lib-identity", *parts)


class TrustedLibraryRegistry:
    """The set of trusted libraries available inside one application."""

    def __init__(self):
        self._libraries: dict[tuple[str, str], TrustedLibrary] = {}

    def register(self, library: TrustedLibrary) -> None:
        key = (library.family, library.version)
        if key in self._libraries:
            raise DedupError(f"library {key} already registered")
        self._libraries[key] = library

    def lookup(self, description: FunctionDescription) -> Callable:
        """Return the actual function for a description, or raise."""
        library = self._libraries.get((description.family, description.version))
        if library is None:
            raise DedupError(
                f"application does not link trusted library "
                f"{description.family} {description.version}"
            )
        func = library.functions.get(description.signature)
        if func is None:
            raise DedupError(
                f"trusted library {description.family} {description.version} "
                f"has no function {description.signature!r}"
            )
        return func

    def function_identity(self, description: FunctionDescription) -> bytes:
        """The "universally unique value for function identification":
        description plus fingerprint of the code the app actually owns."""
        func = self.lookup(description)
        return tagged_hash(
            b"speed/func-identity",
            description.canonical_bytes(),
            code_fingerprint(func),
        )

    def code_identity(self) -> bytes:
        """Aggregate identity of all linked libraries, fed into the
        application enclave's measurement."""
        parts = [
            self._libraries[key].code_identity() for key in sorted(self._libraries)
        ]
        return tagged_hash(b"speed/app-libs", *parts)

    def libraries(self) -> list[TrustedLibrary]:
        return list(self._libraries.values())
