"""Function-agnostic parsers with a uniform serialization interface.

"The parsers, OCALLs and related data structures are implemented in a
function-agnostic way with uniform serialization interface, so they are
capable of handling different functions intended for deduplication.  To
support [a] new function ... the only step is to associate it with a
proper parser from existing ones or create a new one with customized
serialization for the function's input and output." (§IV-B)

A :class:`Parser` turns one Python value into canonical bytes and back.
Canonicality matters twice: the *input* encoding feeds the tag (equal
inputs must encode equally) and the *result* encoding feeds the AEAD.
The registry resolves a parser by declared name or by value type.
"""

from __future__ import annotations

import abc
import struct
from typing import Any

import numpy as np

from ..errors import SerializationError
from ..net.framing import FieldReader, FieldWriter


class Parser(abc.ABC):
    """Uniform serialization interface: value <-> canonical bytes."""

    name: str = "abstract"

    @abc.abstractmethod
    def encode(self, value: Any) -> bytes: ...

    @abc.abstractmethod
    def decode(self, data: bytes) -> Any: ...


class BytesParser(Parser):
    name = "bytes"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise SerializationError(f"bytes parser got {type(value).__name__}")
        return bytes(value)

    def decode(self, data: bytes) -> bytes:
        return data


class TextParser(Parser):
    name = "text"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, str):
            raise SerializationError(f"text parser got {type(value).__name__}")
        return value.encode("utf-8")

    def decode(self, data: bytes) -> str:
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 payload") from exc


class IntParser(Parser):
    name = "int"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, int) or isinstance(value, bool):
            raise SerializationError(f"int parser got {type(value).__name__}")
        length = max(1, (value.bit_length() + 8) // 8)  # room for sign
        return value.to_bytes(length, "big", signed=True)

    def decode(self, data: bytes) -> int:
        if not data:
            raise SerializationError("empty int payload")
        return int.from_bytes(data, "big", signed=True)


class FloatParser(Parser):
    name = "float"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, float):
            raise SerializationError(f"float parser got {type(value).__name__}")
        return struct.pack(">d", value)

    def decode(self, data: bytes) -> float:
        if len(data) != 8:
            raise SerializationError("float payload must be 8 bytes")
        return struct.unpack(">d", data)[0]


class NdarrayParser(Parser):
    """Canonical numpy array encoding: dtype, shape, C-order buffer."""

    name = "ndarray"
    _MAX_NDIM = 32

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, np.ndarray):
            raise SerializationError(f"ndarray parser got {type(value).__name__}")
        arr = np.ascontiguousarray(value)
        w = FieldWriter()
        w.text(arr.dtype.str)
        w.u32(arr.ndim)
        for dim in arr.shape:
            w.u64(dim)
        w.blob(arr.tobytes())
        return w.getvalue()

    def decode(self, data: bytes) -> np.ndarray:
        r = FieldReader(data)
        dtype = np.dtype(r.text())
        ndim = r.u32()
        if ndim > self._MAX_NDIM:
            raise SerializationError(f"ndarray with {ndim} dims rejected")
        shape = tuple(r.u64() for _ in range(ndim))
        buf = r.blob()
        r.expect_end()
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        if len(buf) != expected:
            raise SerializationError("ndarray buffer length mismatch")
        return np.frombuffer(buf, dtype=dtype).reshape(shape).copy()


class TupleParser(Parser):
    """Composite parser for fixed-arity tuples of parseable values."""

    def __init__(self, *element_parsers: Parser):
        if not element_parsers:
            raise SerializationError("TupleParser needs at least one element parser")
        self._parsers = element_parsers
        self.name = "tuple(" + ",".join(p.name for p in element_parsers) + ")"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, tuple) or len(value) != len(self._parsers):
            raise SerializationError(
                f"expected a {len(self._parsers)}-tuple, got {value!r:.60}"
            )
        w = FieldWriter()
        for parser, element in zip(self._parsers, value):
            w.blob(parser.encode(element))
        return w.getvalue()

    def decode(self, data: bytes) -> tuple:
        r = FieldReader(data)
        out = tuple(parser.decode(r.blob()) for parser in self._parsers)
        r.expect_end()
        return out


class ListParser(Parser):
    """Homogeneous variable-length sequences."""

    def __init__(self, element_parser: Parser):
        self._element = element_parser
        self.name = f"list({element_parser.name})"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, (list, tuple)):
            raise SerializationError(f"list parser got {type(value).__name__}")
        w = FieldWriter()
        w.u32(len(value))
        for element in value:
            w.blob(self._element.encode(element))
        return w.getvalue()

    def decode(self, data: bytes) -> list:
        r = FieldReader(data)
        count = r.u32()
        out = [self._element.decode(r.blob()) for _ in range(count)]
        r.expect_end()
        return out


class MappingParser(Parser):
    """String-keyed mappings with sorted (canonical) key order."""

    def __init__(self, value_parser: Parser):
        self._value = value_parser
        self.name = f"mapping({value_parser.name})"

    def encode(self, value: Any) -> bytes:
        if not isinstance(value, dict):
            raise SerializationError(f"mapping parser got {type(value).__name__}")
        w = FieldWriter()
        w.u32(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise SerializationError("mapping keys must be strings")
            w.text(key)
            w.blob(self._value.encode(value[key]))
        return w.getvalue()

    def decode(self, data: bytes) -> dict:
        r = FieldReader(data)
        count = r.u32()
        out = {}
        for _ in range(count):
            key = r.text()
            out[key] = self._value.decode(r.blob())
        r.expect_end()
        return out


class AnyParser(Parser):
    """Self-describing parser: prefixes the concrete parser's name.

    This is the default when a ``Deduplicable`` is created without
    explicit parsers — the concrete parser is resolved from the registry
    by value type at encode time and by recorded name at decode time, so
    results can be decoded on a cache hit without ever seeing a value.
    """

    name = "any"

    def __init__(self, registry: "ParserRegistry"):
        self._registry = registry

    def encode(self, value: Any) -> bytes:
        parser = self._registry.for_value(value)
        w = FieldWriter()
        w.text(parser.name)
        w.blob(parser.encode(value))
        return w.getvalue()

    def decode(self, data: bytes) -> Any:
        r = FieldReader(data)
        parser = self._registry.by_name(r.text())
        value = parser.decode(r.blob())
        r.expect_end()
        return value


class ParserRegistry:
    """Resolves parsers by name or by value type."""

    def __init__(self):
        self._by_name: dict[str, Parser] = {}
        self._by_type: list[tuple[type, Parser]] = []

    def register(self, parser: Parser, *types: type) -> None:
        if parser.name in self._by_name:
            raise SerializationError(f"parser {parser.name!r} already registered")
        self._by_name[parser.name] = parser
        for t in types:
            self._by_type.append((t, parser))

    def by_name(self, name: str) -> Parser:
        parser = self._by_name.get(name)
        if parser is None:
            raise SerializationError(f"no parser named {name!r}")
        return parser

    def for_value(self, value: Any) -> Parser:
        for t, parser in self._by_type:
            if isinstance(value, t):
                return parser
        raise SerializationError(
            f"no parser registered for type {type(value).__name__}; "
            "pass one explicitly when creating the Deduplicable"
        )


def default_registry() -> ParserRegistry:
    """Registry with the built-in parsers pre-registered."""
    registry = ParserRegistry()
    registry.register(BytesParser(), bytes, bytearray, memoryview)
    registry.register(TextParser(), str)
    registry.register(NdarrayParser(), np.ndarray)
    registry.register(IntParser(), int)
    registry.register(FloatParser(), float)
    return registry
