"""SPEED core: the paper's primary contribution.

Function descriptions and trusted-library identity (:mod:`.description`),
function-agnostic serialization (:mod:`.serialization`), tag derivation
(:mod:`.tag`), the result-protection schemes of §III-B / §III-C
(:mod:`.scheme`), the Fig. 3 verification protocol (:mod:`.verification`),
the DedupRuntime (:mod:`.runtime`), and the 2-lines-of-code developer API
(:mod:`.deduplicable`).
"""

from .adaptive import AdaptiveDedupPolicy, FunctionProfile
from .approximate import (
    ApproximateDeduplicable,
    band_values,
    hamming_distance,
    shingle_features,
    simhash64,
)
from .decorator import deduplicable_marker
from .deduplicable import Deduplicable
from .description import (
    FunctionDescription,
    TrustedLibrary,
    TrustedLibraryRegistry,
    code_fingerprint,
)
from .runtime import DedupResult, DedupRuntime, RuntimeConfig
from .scheme import (
    CrossAppScheme,
    PlaintextScheme,
    ProtectedResult,
    ResultScheme,
    SingleKeyScheme,
)
from .serialization import (
    AnyParser,
    BytesParser,
    FloatParser,
    IntParser,
    ListParser,
    MappingParser,
    NdarrayParser,
    Parser,
    ParserRegistry,
    TextParser,
    TupleParser,
    default_registry,
)
from .stats import CallRecord, RuntimeStats
from .tag import TAG_SIZE, derive_locking_hash, derive_tag
from .verification import VerificationOutcome, verify_and_recover

__all__ = [
    "AdaptiveDedupPolicy",
    "ApproximateDeduplicable",
    "AnyParser",
    "BytesParser",
    "CallRecord",
    "CrossAppScheme",
    "Deduplicable",
    "DedupResult",
    "DedupRuntime",
    "FunctionProfile",
    "FloatParser",
    "FunctionDescription",
    "IntParser",
    "ListParser",
    "MappingParser",
    "NdarrayParser",
    "Parser",
    "ParserRegistry",
    "PlaintextScheme",
    "ProtectedResult",
    "ResultScheme",
    "RuntimeConfig",
    "RuntimeStats",
    "SingleKeyScheme",
    "TAG_SIZE",
    "TextParser",
    "TrustedLibrary",
    "TrustedLibraryRegistry",
    "TupleParser",
    "VerificationOutcome",
    "code_fingerprint",
    "deduplicable_marker",
    "default_registry",
    "derive_locking_hash",
    "derive_tag",
    "band_values",
    "hamming_distance",
    "shingle_features",
    "simhash64",
    "verify_and_recover",
]
