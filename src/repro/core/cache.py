"""In-enclave L1 tag→result cache for the batched dedup pipeline.

The ResultStore round-trip costs two transitions, a network hop, and a
channel record even on a hit.  For tags an application sees repeatedly,
a small cache of *verified* plaintext results inside the application
enclave short-circuits the network entirely — the dedup analogue of a
CPU's L1 in front of the shared L2.

Security note: only results that passed the Fig. 3 verification protocol
(or were just computed locally) are inserted, so a poisoned ResultStore
entry can never be served from here; the cache holds exactly what the
enclave itself was already entitled to see in plaintext.

Cost model: the cache lives in enclave heap, so every lookup and insert
touches its pages through :meth:`Enclave.touch`, charging EPC page
faults when the cached working set outgrows the EPC — an oversized L1
pays for itself in paging, exactly the pressure that made the paper keep
result ciphertexts *outside* the store enclave.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import DedupError
from ..sgx.enclave import Enclave

# Per-entry bookkeeping overhead charged to the arena beyond the result
# bytes: the 32-byte tag plus list/refcount plumbing.
ENTRY_OVERHEAD_BYTES = 64


@dataclass
class L1CacheStats:
    """Operational counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0


class _Arena:
    """Page-granular offset allocator for the cache's enclave region.

    Entries get stable extents so the EPC model sees a realistic page
    working set; freed extents are reused for later entries of the same
    page count.
    """

    def __init__(self, page_size: int):
        self._page_size = page_size
        self._cursor = 0
        self._free: dict[int, list[int]] = {}

    def _pages(self, n_bytes: int) -> int:
        return max(1, -(-n_bytes // self._page_size))

    def allocate(self, n_bytes: int) -> int:
        pages = self._pages(n_bytes)
        bucket = self._free.get(pages)
        if bucket:
            return bucket.pop()
        offset = self._cursor
        self._cursor += pages * self._page_size
        return offset

    def release(self, offset: int, n_bytes: int) -> None:
        self._free.setdefault(self._pages(n_bytes), []).append(offset)


class L1ResultCache:
    """Bounded LRU cache of verified results keyed by tag.

    Parameters
    ----------
    enclave:
        The application enclave whose heap holds the cache; lookups and
        inserts must happen while execution is inside it.
    max_entries:
        Entry-count bound (> 0).
    max_bytes:
        Optional bound on the summed entry footprints (result bytes plus
        per-entry overhead).  Results larger than the bound are simply
        not cached.
    """

    def __init__(
        self,
        enclave: Enclave,
        max_entries: int,
        max_bytes: int | None = None,
        region: str = "runtime/l1cache",
    ):
        if max_entries <= 0:
            raise DedupError("L1 cache needs max_entries > 0")
        if max_bytes is not None and max_bytes <= 0:
            raise DedupError("L1 cache max_bytes must be positive when set")
        self._enclave = enclave
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._region = region
        # tag -> (result_bytes, arena offset, charged footprint)
        self._entries: OrderedDict[bytes, tuple[bytes, int, int]] = OrderedDict()
        self._arena = _Arena(enclave.platform.clock.params.page_size)
        self.current_bytes = 0
        self.stats = L1CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tag: bytes) -> bool:
        return tag in self._entries

    @staticmethod
    def _footprint(result_bytes: bytes) -> int:
        return len(result_bytes) + ENTRY_OVERHEAD_BYTES

    def get(self, tag: bytes) -> bytes | None:
        """Look up a tag; a hit touches the entry's pages and refreshes
        its LRU position."""
        entry = self._entries.get(tag)
        if entry is None:
            self.stats.misses += 1
            return None
        result, offset, footprint = entry
        self._entries.move_to_end(tag)
        self._enclave.touch(self._region, offset, footprint)
        self.stats.hits += 1
        return result

    def put(self, tag: bytes, result_bytes: bytes) -> bool:
        """Insert a verified result; returns False when it cannot be
        cached (already present, or larger than the byte bound)."""
        if tag in self._entries:
            self._entries.move_to_end(tag)
            return False
        footprint = self._footprint(result_bytes)
        if self.max_bytes is not None and footprint > self.max_bytes:
            return False
        while len(self._entries) >= self.max_entries or (
            self.max_bytes is not None
            and self.current_bytes + footprint > self.max_bytes
        ):
            self._evict_lru()
        offset = self._arena.allocate(footprint)
        self._entries[tag] = (result_bytes, offset, footprint)
        self.current_bytes += footprint
        self._enclave.touch(self._region, offset, footprint)
        self.stats.insertions += 1
        return True

    def _evict_lru(self) -> None:
        tag, (_, offset, footprint) = self._entries.popitem(last=False)
        self._arena.release(offset, footprint)
        self.current_bytes -= footprint
        self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (keeps cumulative stats)."""
        while self._entries:
            self._evict_lru()
