"""Adaptive deduplication strategy (the paper's stated future direction).

"As a future direction, we will explore an automatic extension to enable
the application to adjust its deduplication strategy via dynamic
analyzing the underlying computations during its runtime." (§VII)

This module implements that extension.  The observation behind it is the
paper's own §V-B conclusion: deduplication pays off for time-consuming
functions, while for fast functions the GET + crypto path can cost more
than just recomputing.  :class:`AdaptiveDedupPolicy` learns, per marked
function, an online estimate of

* the *miss path* cost (compute + protect + PUT),
* the *hit path* cost (tag + GET + verify + decrypt), and
* the observed hit rate,

and keeps deduplication enabled only while the expected value of
attempting a lookup beats always computing:

    hit_rate * hit_cost + (1 - hit_rate) * (miss_cost + lookup_overhead)
        <  compute_cost

A periodic *probe* re-enables lookups for a function that was turned
off, so a workload whose duplication ratio improves is rediscovered.
All estimates use the simulated clock, making decisions deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FunctionProfile:
    """Online cost/benefit statistics for one marked function."""

    calls: int = 0
    hits: int = 0
    # Exponential moving averages, in simulated seconds.
    ema_hit_cost: float = 0.0
    ema_miss_cost: float = 0.0
    ema_compute_cost: float = 0.0
    dedup_enabled: bool = True
    suppressed_calls: int = 0

    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


@dataclass
class AdaptiveDedupPolicy:
    """Decides per call whether the runtime should attempt deduplication.

    Parameters
    ----------
    min_observations:
        Calls to observe before any suppression decision is made.
    ema_alpha:
        Smoothing factor for the cost averages.
    probe_interval:
        While suppressed, one in every ``probe_interval`` calls still
        attempts the lookup so improving workloads are rediscovered.
    margin:
        Required advantage (fractional) before flipping a decision, to
        avoid oscillation around the break-even point.
    """

    min_observations: int = 8
    ema_alpha: float = 0.25
    probe_interval: int = 16
    margin: float = 0.1
    _profiles: dict[bytes, FunctionProfile] = field(default_factory=dict)

    def profile(self, func_identity: bytes) -> FunctionProfile:
        prof = self._profiles.get(func_identity)
        if prof is None:
            prof = FunctionProfile()
            self._profiles[func_identity] = prof
        return prof

    # -- decision ---------------------------------------------------------
    def should_attempt_dedup(self, func_identity: bytes) -> bool:
        """Called by the runtime before the GET."""
        prof = self.profile(func_identity)
        if prof.dedup_enabled:
            return True
        prof.suppressed_calls += 1
        # Probe occasionally even while suppressed.
        return prof.suppressed_calls % self.probe_interval == 0

    # -- learning -----------------------------------------------------------
    def _ema(self, old: float, sample: float) -> float:
        if old == 0.0:
            return sample
        return (1 - self.ema_alpha) * old + self.ema_alpha * sample

    def observe_hit(self, func_identity: bytes, sim_seconds: float) -> None:
        prof = self.profile(func_identity)
        prof.calls += 1
        prof.hits += 1
        prof.ema_hit_cost = self._ema(prof.ema_hit_cost, sim_seconds)
        self._reconsider(prof)

    def observe_miss(
        self, func_identity: bytes, sim_seconds: float, compute_seconds: float
    ) -> None:
        prof = self.profile(func_identity)
        prof.calls += 1
        prof.ema_miss_cost = self._ema(prof.ema_miss_cost, sim_seconds)
        prof.ema_compute_cost = self._ema(prof.ema_compute_cost, compute_seconds)
        self._reconsider(prof)

    def observe_plain_compute(self, func_identity: bytes, compute_seconds: float) -> None:
        """A suppressed call that simply computed (no store round trip)."""
        prof = self.profile(func_identity)
        prof.ema_compute_cost = self._ema(prof.ema_compute_cost, compute_seconds)

    # -- the cost model -------------------------------------------------------
    def _reconsider(self, prof: FunctionProfile) -> None:
        if prof.calls < self.min_observations:
            return
        if prof.ema_compute_cost <= 0.0:
            return
        rate = prof.hit_rate()
        hit_cost = prof.ema_hit_cost or prof.ema_compute_cost
        miss_cost = prof.ema_miss_cost or prof.ema_compute_cost
        expected_with_dedup = rate * hit_cost + (1 - rate) * miss_cost
        if prof.dedup_enabled:
            # Disable only with a clear margin against plain compute.
            if expected_with_dedup > prof.ema_compute_cost * (1 + self.margin):
                prof.dedup_enabled = False
                prof.suppressed_calls = 0
        else:
            if expected_with_dedup < prof.ema_compute_cost * (1 - self.margin):
                prof.dedup_enabled = True

    # -- reporting ---------------------------------------------------------------
    def report(self) -> dict[bytes, FunctionProfile]:
        return dict(self._profiles)
