"""The secure deduplication runtime (paper §IV-B, Algorithms 1 & 2).

One :class:`DedupRuntime` instance is linked into one application
enclave.  A deduplicated call runs as follows, mirroring the paper's
control flow exactly:

1. **ECALL** into the application enclave.
2. Verify the app owns the marked function (trusted-library scan) and
   derive the function identity; canonically serialize the input.
3. ``t ← Hash(func, m)`` and **OCALL** a synchronous ``GET_REQUEST``.
4. On a positive response, run the Fig. 3 verification protocol; a
   verified result is decrypted, deserialized, and returned — the
   *subsequent computation* path (Algorithm 2).
5. Otherwise execute the function inside the enclave, protect the result
   with the configured scheme, and issue a ``PUT_REQUEST`` — the
   *initial computation* path (Algorithm 1).  The PUT is asynchronous by
   default ("the remaining PUT operations can be processed in a
   separated thread", §V-B); ``flush_puts`` drains it off the critical
   path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from .adaptive import AdaptiveDedupPolicy
from .description import FunctionDescription, TrustedLibraryRegistry
from .scheme import CrossAppScheme, ProtectedResult, ResultScheme
from .serialization import AnyParser, Parser, ParserRegistry, default_registry
from .stats import CallRecord, RuntimeStats
from .tag import derive_tag
from .verification import verify_and_recover
from ..errors import DedupError
from ..net.messages import GetRequest, GetResponse, PutRequest, PutResponse
from ..net.rpc import RpcClient
from ..sgx.enclave import Enclave


@dataclass
class RuntimeConfig:
    """Per-application runtime policy."""

    app_id: str = "app"
    async_put: bool = True
    scheme: ResultScheme = field(default_factory=CrossAppScheme)
    # When False, a deduplicated call skips the GET/PUT entirely and just
    # executes — the "without SPEED" baseline of Fig. 5.
    dedup_enabled: bool = True
    # The paper's future-work extension (§VII): learn per function
    # whether deduplication pays off and suppress it when it does not.
    adaptive: AdaptiveDedupPolicy | None = None


class DedupRuntime:
    """The trusted deduplication library linked against one app enclave."""

    def __init__(
        self,
        enclave: Enclave,
        client: RpcClient,
        libraries: TrustedLibraryRegistry,
        parsers: ParserRegistry | None = None,
        config: RuntimeConfig | None = None,
    ):
        self.enclave = enclave
        self.client = client
        self.libraries = libraries
        self.parsers = parsers or default_registry()
        self.config = config or RuntimeConfig()
        self.clock = enclave.platform.clock
        self.stats = RuntimeStats()
        self._pending_puts: list[PutRequest] = []

    # -- public entry point -------------------------------------------------
    def execute(
        self,
        description: FunctionDescription,
        input_value: Any,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        unpack_args: bool = False,
        native_factor: float = 1.0,
    ) -> Any:
        """Run one deduplicated computation and return its result."""
        input_parser = input_parser or AnyParser(self.parsers)
        result_parser = result_parser or AnyParser(self.parsers)
        wall_start = time.perf_counter()
        sim_start = self.clock.snapshot()

        with self.enclave.ecall("dedup_execute"):
            func = self.libraries.lookup(description)
            func_identity = self.libraries.function_identity(description)
            input_bytes = input_parser.encode(input_value)
            tag = derive_tag(func_identity, input_bytes, self.clock)

            result_value = None
            hit = False
            result_len = 0

            attempt_dedup = self.config.dedup_enabled
            adaptive = self.config.adaptive
            if attempt_dedup and adaptive is not None:
                attempt_dedup = adaptive.should_attempt_dedup(func_identity)
            compute_sim_seconds = 0.0

            if attempt_dedup:
                response = self._get(tag, len(input_bytes))
                if response.found:
                    protected = ProtectedResult(
                        challenge=response.challenge,
                        wrapped_key=response.wrapped_key,
                        sealed_result=response.sealed_result,
                    )
                    outcome = verify_and_recover(
                        self.config.scheme, func_identity, input_bytes, tag,
                        protected, self.clock,
                    )
                    if outcome.ok:
                        hit = True
                        result_len = len(outcome.result_bytes)
                        result_value = result_parser.decode(outcome.result_bytes)
                    else:
                        self.stats.verification_failures += 1

            if not hit:
                result_value, result_len, compute_sim_seconds = self._compute_and_put(
                    func, description, func_identity, input_value, input_bytes,
                    tag, result_parser, unpack_args, native_factor,
                    store_result=attempt_dedup,
                )

        wall = time.perf_counter() - wall_start
        sim = self.clock.since(sim_start) / self.clock.params.cpu_freq_hz
        if adaptive is not None and self.config.dedup_enabled:
            if hit:
                adaptive.observe_hit(func_identity, sim)
            elif attempt_dedup:
                adaptive.observe_miss(func_identity, sim, compute_sim_seconds)
            else:
                adaptive.observe_plain_compute(func_identity, compute_sim_seconds)
        self.stats.record_call(
            CallRecord(
                description=str(description),
                hit=hit,
                input_bytes=len(input_bytes),
                result_bytes=result_len,
                wall_seconds=wall,
                sim_seconds=sim,
            )
        )
        return result_value

    # -- GET (Algorithm 2, lines 2-3) ----------------------------------------
    def _get(self, tag: bytes, input_len: int) -> GetResponse:
        request = GetRequest(tag=tag, app_id=self.config.app_id)
        with self.enclave.ocall("get_request", in_bytes=len(tag) + 64):
            response = self.client.call(request)
        if not isinstance(response, GetResponse):
            raise DedupError(f"store answered GET with {type(response).__name__}")
        return response

    # -- fresh computation + PUT (Algorithm 1, lines 4-10) --------------------
    def _compute_and_put(
        self,
        func: Callable,
        description: FunctionDescription,
        func_identity: bytes,
        input_value: Any,
        input_bytes: bytes,
        tag: bytes,
        result_parser: Parser,
        unpack_args: bool,
        native_factor: float,
        store_result: bool = True,
    ) -> tuple[Any, int, float]:
        compute_start = time.perf_counter()
        if unpack_args:
            result_value = func(*input_value)
        else:
            result_value = func(input_value)
        compute_wall = time.perf_counter() - compute_start
        self.clock.charge_compute(compute_wall, native_factor)
        compute_sim = compute_wall / native_factor

        result_bytes = result_parser.encode(result_value)
        if self.config.dedup_enabled and store_result:
            protected = self.config.scheme.protect(
                func_identity, input_bytes, tag, result_bytes,
                rand=self.enclave.read_rand, clock=self.clock,
            )
            put = PutRequest(
                tag=tag,
                challenge=protected.challenge,
                wrapped_key=protected.wrapped_key,
                sealed_result=protected.sealed_result,
                app_id=self.config.app_id,
            )
            if self.config.async_put:
                self._pending_puts.append(put)
            else:
                self._send_put_sync(put)
        return result_value, len(result_bytes), compute_sim

    def _send_put_sync(self, put: PutRequest) -> None:
        with self.enclave.ocall("put_request", in_bytes=len(put.sealed_result) + 128):
            response = self.client.call(put)
        self.stats.puts_sent += 1
        if isinstance(response, PutResponse) and response.accepted:
            self.stats.puts_accepted += 1
        else:
            self.stats.puts_rejected += 1

    # -- asynchronous PUT draining ---------------------------------------------
    def flush_puts(self) -> int:
        """Send all queued PUTs (the "separated thread" of §V-B) and
        account their outcomes; returns the number flushed.

        Called off the latency-critical path — e.g. between requests or
        from the host loop.  Queued PUTs were already protected inside
        the enclave; only untrusted sending remains.
        """
        flushed = 0
        for put in self._pending_puts:
            self.client.send_oneway(put)
            self.stats.puts_sent += 1
            flushed += 1
        self._pending_puts.clear()
        for response in self.client.drain_responses():
            if isinstance(response, PutResponse) and response.accepted:
                self.stats.puts_accepted += 1
            else:
                self.stats.puts_rejected += 1
        return flushed

    @property
    def pending_put_count(self) -> int:
        return len(self._pending_puts)
