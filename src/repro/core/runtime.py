"""The secure deduplication runtime (paper §IV-B, Algorithms 1 & 2).

One :class:`DedupRuntime` instance is linked into one application
enclave.  A deduplicated call runs as follows, mirroring the paper's
control flow exactly:

1. **ECALL** into the application enclave.
2. Verify the app owns the marked function (trusted-library scan) and
   derive the function identity; canonically serialize the input.
3. ``t ← Hash(func, m)`` and **OCALL** a synchronous ``GET_REQUEST``.
4. On a positive response, run the Fig. 3 verification protocol; a
   verified result is decrypted, deserialized, and returned — the
   *subsequent computation* path (Algorithm 2).
5. Otherwise execute the function inside the enclave, protect the result
   with the configured scheme, and issue a ``PUT_REQUEST`` — the
   *initial computation* path (Algorithm 1).  The PUT is asynchronous by
   default ("the remaining PUT operations can be processed in a
   separated thread", §V-B); ``flush_puts`` drains it off the critical
   path.

Two optimizations amortize the fixed per-call costs without touching the
per-item semantics above:

- :meth:`DedupRuntime.execute_many` runs a whole batch under **one**
  ECALL, ships all duplicate checks as one batched OCALL/channel record,
  and queues all PUTs together.  Each item still follows Algorithm 1 or
  2 individually and gets its own :class:`CallRecord`.
- An optional in-enclave **L1 cache** of verified results
  (:class:`L1ResultCache`) short-circuits the store round-trip for tags
  this enclave has already verified or computed, at the price of EPC
  pressure charged through the paging model.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..cluster.router import ClusterRouter

from .adaptive import AdaptiveDedupPolicy
from .cache import L1ResultCache
from .description import FunctionDescription, TrustedLibraryRegistry
from .scheme import CrossAppScheme, ProtectedResult, ResultScheme
from .serialization import AnyParser, Parser, ParserRegistry, default_registry
from .stats import CallRecord, RuntimeStats
from .tag import derive_tag
from .verification import verify_and_recover
from ..errors import (
    ChannelError,
    DedupError,
    NoLiveOwnerError,
    ProtocolError,
    TransportError,
)
from ..net.messages import (
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    GetResponse,
    Message,
    PutRequest,
    PutResponse,
)
from ..net.rpc import RpcClient
from ..obs.tracer import NULL_TRACER
from ..sgx.enclave import Enclave

# Failures meaning "the store did not serve this request": the send or
# reply was lost/garbled, retries ran out, or no owner shard was live.
_STORE_FAILURES = (TransportError, ChannelError, ProtocolError)


@dataclass(frozen=True)
class DedupResult:
    """Per-item outcome of a deduplicated call.

    ``execute``/``execute_many`` return plain values; the ``*_result``
    variants return this wrapper so callers can see *how* each value was
    obtained without digging through stats:

    * ``source`` — ``"l1"`` (served from the in-enclave cache),
      ``"store"`` (verified store hit, Algorithm 2), ``"computed"``
      (fresh execution, Algorithm 1) or ``"coalesced"`` (single-flight:
      an identical in-flight tag shared its leader's round trip and
      verification, and this follower observed the leader's result);
    * ``span_id``/``trace_id`` — the call's root span when a tracer is
      attached (``None`` under the default :data:`NULL_TRACER`).
    """

    value: Any
    hit: bool
    l1_hit: bool
    tag: bytes
    source: str
    span_id: int | None = None
    trace_id: int | None = None
    # True when the store was unreachable and the value was computed
    # locally under graceful degradation (source is ``"computed"``).
    degraded: bool = False


@dataclass
class RuntimeConfig:
    """Per-application runtime policy."""

    app_id: str = "app"
    async_put: bool = True
    scheme: ResultScheme = field(default_factory=CrossAppScheme)
    # When False, a deduplicated call skips the GET/PUT entirely and just
    # executes — the "without SPEED" baseline of Fig. 5.
    dedup_enabled: bool = True
    # The paper's future-work extension (§VII): learn per function
    # whether deduplication pays off and suppress it when it does not.
    adaptive: AdaptiveDedupPolicy | None = None
    # In-enclave L1 tag→result cache.  0 disables it (the default: the
    # cache trades EPC pressure for round-trips, which only pays off for
    # workloads with repeated tags).
    l1_cache_entries: int = 0
    l1_cache_bytes: int | None = None
    # Graceful degradation: when the store is unreachable (transport
    # failure, exhausted retries, no live owner shard), compute locally
    # instead of surfacing the error — correctness is preserved because
    # the miss path (Algorithm 1) recomputes anyway; only deduplication
    # is lost.  Off by default: fail-fast keeps store outages visible.
    degrade_on_store_failure: bool = False
    # Async PUT flusher bounds.  ``put_queue_entries`` caps the pending
    # queue: when an enqueue would leave it at the cap, the oldest batch
    # is drained first (back-pressure — the caller absorbs the send cost
    # instead of the queue growing without bound).  0 keeps the legacy
    # unbounded queue drained only by explicit ``flush_puts`` calls.
    put_queue_entries: int = 0
    # PUTs shipped per background drain (one channel record each);
    # 0 drains the whole queue in a single batch.
    put_flush_batch: int = 0


@dataclass
class _BatchItem:
    """Per-input bookkeeping while a batch moves through the pipeline."""

    input_value: Any
    input_bytes: bytes = b""
    tag: bytes = b""
    attempt_dedup: bool = False
    hit: bool = False
    l1_hit: bool = False
    coalesced: bool = False
    degraded: bool = False
    result_value: Any = None
    result_len: int = 0
    compute_sim: float = 0.0
    # Costs attributable to this item alone; batch-shared costs (ECALL,
    # batched OCALLs, channel records) are split evenly afterwards.
    direct_wall: float = 0.0
    direct_sim: float = 0.0


class _SerialRegion:
    """No-op stand-in for :meth:`PipelineEngine.parallel_region` used when
    no engine is attached: tasks run (and are accounted) serially."""

    def __enter__(self) -> "_SerialRegion":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def task(self) -> "_SerialRegion":
        return self


class DedupRuntime:
    """The trusted deduplication library linked against one app enclave.

    ``client`` is anything that speaks the RpcClient surface — a plain
    :class:`~repro.net.rpc.RpcClient` bound to one ResultStore, or a
    :class:`~repro.cluster.router.ClusterRouter` fanning the same calls
    out across a shard ring.  The runtime's per-item semantics
    (Algorithms 1 & 2, Fig. 3 verification) are identical either way;
    only where the bytes land differs.
    """

    def __init__(
        self,
        enclave: Enclave,
        client: "RpcClient | ClusterRouter",
        libraries: TrustedLibraryRegistry,
        parsers: ParserRegistry | None = None,
        config: RuntimeConfig | None = None,
        tracer=NULL_TRACER,
    ):
        self.enclave = enclave
        self.client = client
        self.libraries = libraries
        self.parsers = parsers or default_registry()
        self.config = config or RuntimeConfig()
        self.clock = enclave.platform.clock
        self.stats = RuntimeStats()
        self.tracer = NULL_TRACER if tracer is None else tracer
        if self.tracer.enabled:
            # The app enclave's transitions belong to this call's trace.
            self.enclave.tracer = self.tracer
        self._pending_puts: list[PutRequest] = []
        # Optional pipelined execution engine (see repro.engine); when
        # attached, stage-2 GETs and stage-4 PUTs of execute_many go
        # through its concurrent submit/wait fan-out instead of the
        # serial call_batch path.
        self.engine = None
        self._closed = False
        # Correlation id -> number of PUT items awaiting a response.
        self._inflight_puts: dict[int, int] = {}
        # Correlation id -> the tags those PUT items carried, in order,
        # so acks can be attributed to tags (the simulation harness's
        # durability invariant: an acknowledged tag must stay servable).
        self._inflight_put_tags: dict[int, tuple[bytes, ...]] = {}
        self.acked_put_tags: set[bytes] = set()
        self.l1_cache: L1ResultCache | None = None
        if self.config.l1_cache_entries > 0:
            self.l1_cache = L1ResultCache(
                enclave,
                max_entries=self.config.l1_cache_entries,
                max_bytes=self.config.l1_cache_bytes,
            )

    # -- pipelined engine / lifecycle -----------------------------------------
    def attach_engine(self, engine) -> None:
        """Attach a :class:`~repro.engine.PipelineEngine`.

        Once attached, :meth:`execute_many` fans its batched GETs and
        synchronous PUTs out through the engine's pipelined
        ``submit()/wait()`` surface (with single-flight tag coalescing),
        and asynchronous PUT drains are accounted as the engine's
        background lane.  Per-item results, clock charges, and counters
        stay identical to the serial path; only the schedule — and hence
        the engine's makespan accounting — changes.
        """
        self.engine = engine

    def close(self) -> int:
        """Flush every queued PUT, settle engine accounting, and refuse
        further queued PUTs.  Idempotent.  Returns the number of PUTs
        this call flushed.

        After ``close()``, computations that would queue an async PUT
        raise :class:`DedupError` — a closed runtime must not silently
        accumulate work that nothing will ever flush.
        """
        flushed = self.flush_puts()
        if self.engine is not None:
            self.engine.settle()
        self._closed = True
        return flushed

    @property
    def closed(self) -> bool:
        return self._closed

    # -- public entry points --------------------------------------------------
    def execute(
        self,
        description: FunctionDescription,
        input_value: Any,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        unpack_args: bool = False,
        native_factor: float = 1.0,
    ) -> Any:
        """Run one deduplicated computation and return its result."""
        return self.execute_result(
            description, input_value, input_parser, result_parser,
            unpack_args, native_factor,
        ).value

    def execute_result(
        self,
        description: FunctionDescription,
        input_value: Any,
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        unpack_args: bool = False,
        native_factor: float = 1.0,
    ) -> DedupResult:
        """Like :meth:`execute`, but returns the full per-call
        :class:`DedupResult` (value, hit/source, tag, span ids)."""
        input_parser = input_parser or AnyParser(self.parsers)
        result_parser = result_parser or AnyParser(self.parsers)
        wall_start = time.perf_counter()
        sim_start = self.clock.snapshot()

        with self.tracer.span(
            "runtime.execute", clock=self.clock, func=str(description)
        ) as root:
            with self.enclave.ecall("dedup_execute"):
                func = self.libraries.lookup(description)
                func_identity = self.libraries.function_identity(description)
                with self.tracer.span("runtime.tag", clock=self.clock):
                    input_bytes = input_parser.encode(input_value)
                    tag = derive_tag(func_identity, input_bytes, self.clock)

                result_value = None
                hit = False
                l1_hit = False
                result_len = 0

                attempt_dedup = self.config.dedup_enabled
                adaptive = self.config.adaptive
                if attempt_dedup and adaptive is not None:
                    attempt_dedup = adaptive.should_attempt_dedup(func_identity)
                compute_sim_seconds = 0.0

                if attempt_dedup and self.l1_cache is not None:
                    with self.tracer.span("runtime.l1_lookup", clock=self.clock) as l1s:
                        cached = self.l1_cache.get(tag)
                        l1s.set("hit", cached is not None)
                    if cached is not None:
                        hit = l1_hit = True
                        result_len = len(cached)
                        result_value = result_parser.decode(cached)

                degraded = False
                if attempt_dedup and not hit:
                    try:
                        response = self._get(tag, len(input_bytes))
                    except _STORE_FAILURES:
                        if not self.config.degrade_on_store_failure:
                            raise
                        degraded = True
                        response = GetResponse(found=False)
                    if (
                        not response.found
                        and response.reason == NoLiveOwnerError.code
                        and self.config.degrade_on_store_failure
                    ):
                        # The router answered "unavailable, recompute":
                        # same degradation, reported in-band.
                        degraded = True
                    if response.found:
                        protected = ProtectedResult(
                            challenge=response.challenge,
                            wrapped_key=response.wrapped_key,
                            sealed_result=response.sealed_result,
                        )
                        with self.tracer.span("runtime.verify", clock=self.clock) as vs:
                            outcome = verify_and_recover(
                                self.config.scheme, func_identity, input_bytes, tag,
                                protected, self.clock,
                            )
                            vs.set("ok", outcome.ok)
                        if outcome.ok:
                            hit = True
                            result_len = len(outcome.result_bytes)
                            result_value = result_parser.decode(outcome.result_bytes)
                            if self.l1_cache is not None:
                                self.l1_cache.put(tag, outcome.result_bytes)
                        else:
                            self.stats.verification_failures += 1

                if not hit:
                    result_value, result_len, compute_sim_seconds = self._compute_and_put(
                        func, description, func_identity, input_value, input_bytes,
                        tag, result_parser, unpack_args, native_factor,
                        store_result=attempt_dedup,
                    )
            source = "l1" if l1_hit else ("store" if hit else "computed")
            root.set("source", source)
            root_span_id = root.span_id
            root_trace_id = self.tracer.current_trace_id

        wall = time.perf_counter() - wall_start
        sim = self.clock.since(sim_start) / self.clock.params.cpu_freq_hz
        if adaptive is not None and self.config.dedup_enabled:
            if hit:
                adaptive.observe_hit(func_identity, sim)
            elif attempt_dedup:
                adaptive.observe_miss(func_identity, sim, compute_sim_seconds)
            else:
                adaptive.observe_plain_compute(func_identity, compute_sim_seconds)
        self.stats.record_call(
            CallRecord(
                description=str(description),
                hit=hit,
                input_bytes=len(input_bytes),
                result_bytes=result_len,
                wall_seconds=wall,
                sim_seconds=sim,
                l1_hit=l1_hit,
                degraded=degraded,
            )
        )
        return DedupResult(
            value=result_value,
            hit=hit,
            l1_hit=l1_hit,
            tag=tag,
            source=source,
            span_id=root_span_id,
            trace_id=root_trace_id,
            degraded=degraded,
        )

    def execute_many(
        self,
        description: FunctionDescription,
        inputs: Sequence[Any],
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        unpack_args: bool = False,
        native_factor: float = 1.0,
    ) -> list[Any]:
        """Run a batch of deduplicated computations in one enclave entry.

        Semantics per item are identical to :meth:`execute` — every input
        follows Algorithm 1 or Algorithm 2 on its own and yields its own
        :class:`CallRecord` — but the fixed costs are paid once per
        batch: one ECALL, one batched GET OCALL under one channel record,
        and (in synchronous-PUT mode) one batched PUT OCALL.  Costs that
        cannot be attributed to a single item are split evenly across the
        batch's records, so per-batch sums match the totals.
        """
        return [
            r.value
            for r in self.execute_many_results(
                description, inputs, input_parser, result_parser,
                unpack_args, native_factor,
            )
        ]

    def execute_many_results(
        self,
        description: FunctionDescription,
        inputs: Sequence[Any],
        input_parser: Parser | None = None,
        result_parser: Parser | None = None,
        unpack_args: bool = False,
        native_factor: float = 1.0,
    ) -> list[DedupResult]:
        """Like :meth:`execute_many`, but returns per-item
        :class:`DedupResult` wrappers instead of bare values."""
        inputs = list(inputs)
        if not inputs:
            return []
        input_parser = input_parser or AnyParser(self.parsers)
        result_parser = result_parser or AnyParser(self.parsers)
        n = len(inputs)
        items = [_BatchItem(input_value=value) for value in inputs]
        item_span_ids: list[int | None] = [None] * n
        adaptive = self.config.adaptive
        wall_start = time.perf_counter()
        sim_start = self.clock.snapshot()

        with self.tracer.span(
            "runtime.execute_batch", clock=self.clock,
            func=str(description), items=n,
        ):
            batch_trace_id = self.tracer.current_trace_id
            with self.enclave.ecall("dedup_execute_batch"):
                func = self.libraries.lookup(description)
                func_identity = self.libraries.function_identity(description)

                # Stage 1: derive every tag; serve what the L1 already holds.
                # Per-item derivation is independent enclave work, so with
                # the engine attached it rides the worker lanes exactly like
                # stage-2 verification.
                stage1_region = (
                    self.engine.parallel_region()
                    if self.engine is not None
                    else _SerialRegion()
                )
                with stage1_region as region:
                    for index, item in enumerate(items):
                        with self.tracer.span(
                            "runtime.item", clock=self.clock, index=index
                        ) as item_span, self._item_meter(item), region.task():
                            item.input_bytes = input_parser.encode(
                                item.input_value
                            )
                            item.tag = derive_tag(
                                func_identity, item.input_bytes, self.clock
                            )
                            attempt = self.config.dedup_enabled
                            if attempt and adaptive is not None:
                                attempt = adaptive.should_attempt_dedup(
                                    func_identity
                                )
                            item.attempt_dedup = attempt
                            if attempt and self.l1_cache is not None:
                                cached = self.l1_cache.get(item.tag)
                                if cached is not None:
                                    item.hit = item.l1_hit = True
                                    item.result_len = len(cached)
                                    item.result_value = result_parser.decode(
                                        cached
                                    )
                            item_span.set("l1_hit", item.l1_hit)
                            item_span_ids[index] = item_span.span_id

                # Stage 2: one multi-tag duplicate check for everything the
                # L1 could not answer (Algorithm 2, lines 2-3, batched).
                lookups = [
                    (index, item)
                    for index, item in enumerate(items)
                    if item.attempt_dedup and not item.hit
                ]
                if lookups:
                    requests = [
                        GetRequest(tag=item.tag, app_id=self.config.app_id)
                        for _, item in lookups
                    ]
                    payload = sum(len(item.tag) + 64 for _, item in lookups)
                    if self.engine is not None:
                        with self.enclave.ocall("batch_get_request", in_bytes=payload):
                            batch = self.engine.run_gets(requests)
                        self._absorb_engine_gets(
                            lookups, batch, func_identity, result_parser
                        )
                    else:
                        try:
                            with self.enclave.ocall(
                                "batch_get_request", in_bytes=payload
                            ):
                                responses = self.client.call_batch(requests)
                        except _STORE_FAILURES:
                            if not self.config.degrade_on_store_failure:
                                raise
                            # The whole duplicate check was lost: every
                            # item degrades to local compute (stage 3).
                            for _, item in lookups:
                                item.degraded = True
                            responses = []
                            lookups = []
                        for (index, item), response in zip(lookups, responses):
                            self._absorb_get_response(
                                index, item, response, func_identity, result_parser
                            )

                # Stage 3: compute the misses in input order (Algorithm 1).
                # With the engine's single-flight mode on, later misses
                # whose tag an earlier miss already computed this batch
                # join that leader in-enclave: one compute, one PUT.
                sync_puts: list[PutRequest] = []
                coalesce = (
                    self.engine is not None and self.engine.config.coalesce
                )
                computed_by_tag: dict[bytes, _BatchItem] = {}
                for item in items:
                    if item.hit:
                        continue
                    if coalesce and item.attempt_dedup:
                        leader = computed_by_tag.get(item.tag)
                        if leader is not None:
                            item.hit = True
                            item.coalesced = True
                            item.degraded = False
                            item.result_len = leader.result_len
                            item.result_value = leader.result_value
                            continue
                    with self._item_meter(item):
                        self._compute_batch_item(
                            item, func, func_identity, result_parser,
                            unpack_args, native_factor, sync_puts,
                        )
                    if coalesce and item.attempt_dedup and not item.l1_hit:
                        computed_by_tag[item.tag] = item

                # Stage 4: ship all synchronous PUTs as one record/OCALL.
                if sync_puts:
                    payload = sum(len(p.sealed_result) + 128 for p in sync_puts)
                    if self.engine is not None:
                        with self.enclave.ocall("batch_put_request", in_bytes=payload):
                            put_batch = self.engine.run_puts(sync_puts)
                        if not self.config.degrade_on_store_failure:
                            for response in put_batch.responses:
                                if isinstance(response, Exception):
                                    raise response
                        self.stats.puts_sent += len(sync_puts)
                        for put, response in zip(sync_puts, put_batch.responses):
                            if isinstance(response, Exception):
                                self.stats.puts_failed += 1
                            elif (
                                isinstance(response, PutResponse)
                                and response.accepted
                            ):
                                self.stats.puts_accepted += 1
                                self.acked_put_tags.add(put.tag)
                            else:
                                self.stats.puts_rejected += 1
                    else:
                        try:
                            with self.enclave.ocall(
                                "batch_put_request", in_bytes=payload
                            ):
                                responses = self.client.call_batch(sync_puts)
                        except _STORE_FAILURES:
                            if not self.config.degrade_on_store_failure:
                                raise
                            self.stats.puts_sent += len(sync_puts)
                            self.stats.puts_failed += len(sync_puts)
                        else:
                            self.stats.puts_sent += len(sync_puts)
                            for put, response in zip(sync_puts, responses):
                                if (
                                    isinstance(response, PutResponse)
                                    and response.accepted
                                ):
                                    self.stats.puts_accepted += 1
                                    self.acked_put_tags.add(put.tag)
                                else:
                                    self.stats.puts_rejected += 1

        total_wall = time.perf_counter() - wall_start
        total_sim = self.clock.since(sim_start) / self.clock.params.cpu_freq_hz
        shared_wall = max(0.0, total_wall - sum(i.direct_wall for i in items)) / n
        shared_sim = max(0.0, total_sim - sum(i.direct_sim for i in items)) / n

        self.stats.batches += 1
        results: list[DedupResult] = []
        for index, item in enumerate(items):
            sim = item.direct_sim + shared_sim
            wall = item.direct_wall + shared_wall
            if adaptive is not None and self.config.dedup_enabled:
                if item.hit:
                    adaptive.observe_hit(func_identity, sim)
                elif item.attempt_dedup:
                    adaptive.observe_miss(func_identity, sim, item.compute_sim)
                else:
                    adaptive.observe_plain_compute(func_identity, item.compute_sim)
            self.stats.record_call(
                CallRecord(
                    description=str(description),
                    hit=item.hit,
                    input_bytes=len(item.input_bytes),
                    result_bytes=item.result_len,
                    wall_seconds=wall,
                    sim_seconds=sim,
                    l1_hit=item.l1_hit,
                    batch_size=n,
                    degraded=item.degraded and not item.hit,
                    coalesced=item.coalesced,
                )
            )
            results.append(
                DedupResult(
                    value=item.result_value,
                    hit=item.hit,
                    l1_hit=item.l1_hit,
                    tag=item.tag,
                    source="coalesced" if item.coalesced else (
                        "l1" if item.l1_hit else (
                            "store" if item.hit else "computed"
                        )
                    ),
                    span_id=item_span_ids[index],
                    trace_id=batch_trace_id,
                    degraded=item.degraded and not item.hit,
                )
            )
        return results

    # -- batch helpers --------------------------------------------------------
    @contextmanager
    def _item_meter(self, item: _BatchItem) -> Iterator[None]:
        """Accumulate one item's directly-attributable wall/sim costs."""
        wall0 = time.perf_counter()
        sim0 = self.clock.snapshot()
        try:
            yield
        finally:
            item.direct_wall += time.perf_counter() - wall0
            item.direct_sim += self.clock.since(sim0) / self.clock.params.cpu_freq_hz

    def _absorb_get_response(
        self,
        index: int,
        item: _BatchItem,
        response: Message,
        func_identity: bytes,
        result_parser: Parser,
    ) -> None:
        """Fold one store GET response into its batch item (type check,
        miss/degrade handling, Fig. 3 verification on a hit)."""
        if not isinstance(response, GetResponse):
            raise DedupError(
                f"store answered GET with {type(response).__name__}"
            )
        if not response.found:
            if (
                response.reason == NoLiveOwnerError.code
                and self.config.degrade_on_store_failure
            ):
                item.degraded = True
            return
        with self.tracer.span(
            "runtime.verify", clock=self.clock, index=index
        ) as vs, self._item_meter(item):
            self._verify_batch_hit(item, response, func_identity, result_parser)
            vs.set("ok", item.hit)

    def _absorb_engine_gets(
        self,
        lookups: list,
        batch,
        func_identity: bytes,
        result_parser: Parser,
    ) -> None:
        """Fold a pipelined :class:`~repro.engine.EngineBatch` of GETs in.

        Leaders (one per distinct tag) are verified exactly like the
        serial path; a per-op failure degrades just that item (or is
        surfaced, matching the serial whole-batch raise policy).
        Coalesced followers never touched the wire — they observe their
        leader's outcome verbatim: the leader's verified bytes on a hit,
        degradation on a degraded leader, or fall-through to stage-3
        compute on a miss/failed verification.
        """
        followers = batch.leader_of
        # Per-item verification is enclave-local work with no shared
        # state: the engine accounts it as spread over the worker lanes
        # (one verification per enclave worker thread at a time).
        with self.engine.parallel_region() as region:
            for pos, (index, item) in enumerate(lookups):
                if pos in followers:
                    continue
                response = batch.responses[pos]
                if isinstance(response, Exception):
                    if not self.config.degrade_on_store_failure:
                        raise response
                    item.degraded = True
                    continue
                with region.task():
                    self._absorb_get_response(
                        index, item, response, func_identity, result_parser
                    )
        for pos, leader_pos in followers.items():
            _, item = lookups[pos]
            _, leader = lookups[leader_pos]
            if leader.hit:
                item.hit = True
                item.coalesced = True
                item.result_len = leader.result_len
                item.result_value = leader.result_value
            elif leader.degraded:
                item.degraded = True
            # Leader miss (or failed verification): the follower falls
            # through to stage 3, where compute coalescing pairs them.

    def _verify_batch_hit(
        self,
        item: _BatchItem,
        response: GetResponse,
        func_identity: bytes,
        result_parser: Parser,
    ) -> None:
        protected = ProtectedResult(
            challenge=response.challenge,
            wrapped_key=response.wrapped_key,
            sealed_result=response.sealed_result,
        )
        outcome = verify_and_recover(
            self.config.scheme, func_identity, item.input_bytes, item.tag,
            protected, self.clock,
        )
        if outcome.ok:
            item.hit = True
            item.result_len = len(outcome.result_bytes)
            item.result_value = result_parser.decode(outcome.result_bytes)
            if self.l1_cache is not None:
                self.l1_cache.put(item.tag, outcome.result_bytes)
        else:
            self.stats.verification_failures += 1

    def _compute_batch_item(
        self,
        item: _BatchItem,
        func: Callable,
        func_identity: bytes,
        result_parser: Parser,
        unpack_args: bool,
        native_factor: float,
        sync_puts: list[PutRequest],
    ) -> None:
        if item.attempt_dedup and self.l1_cache is not None:
            # An earlier miss in this very batch may have computed the
            # same tag already — mirror the sequential-with-cache order.
            cached = self.l1_cache.get(item.tag)
            if cached is not None:
                item.hit = item.l1_hit = True
                item.result_len = len(cached)
                item.result_value = result_parser.decode(cached)
                return
        item.result_value, item.compute_sim = self._compute_raw(
            func, item.input_value, unpack_args, native_factor
        )
        result_bytes = result_parser.encode(item.result_value)
        item.result_len = len(result_bytes)
        if not (self.config.dedup_enabled and item.attempt_dedup):
            return
        if self.l1_cache is not None:
            self.l1_cache.put(item.tag, result_bytes)
        put = self._protect_put(func_identity, item.input_bytes, item.tag, result_bytes)
        if self.config.async_put:
            self._enqueue_put(put)
        else:
            sync_puts.append(put)

    # -- GET (Algorithm 2, lines 2-3) ----------------------------------------
    def _get(self, tag: bytes, input_len: int) -> GetResponse:
        request = GetRequest(tag=tag, app_id=self.config.app_id)
        with self.enclave.ocall("get_request", in_bytes=len(tag) + 64):
            response = self.client.call(request)
        if not isinstance(response, GetResponse):
            raise DedupError(f"store answered GET with {type(response).__name__}")
        return response

    # -- fresh computation + PUT (Algorithm 1, lines 4-10) --------------------
    def _compute_raw(
        self,
        func: Callable,
        input_value: Any,
        unpack_args: bool,
        native_factor: float,
    ) -> tuple[Any, float]:
        with self.tracer.span("runtime.compute", clock=self.clock):
            compute_start = time.perf_counter()
            if unpack_args:
                result_value = func(*input_value)
            else:
                result_value = func(input_value)
            compute_wall = time.perf_counter() - compute_start
            self.clock.charge_compute(compute_wall, native_factor)
        return result_value, compute_wall / native_factor

    def _protect_put(
        self,
        func_identity: bytes,
        input_bytes: bytes,
        tag: bytes,
        result_bytes: bytes,
    ) -> PutRequest:
        protected = self.config.scheme.protect(
            func_identity, input_bytes, tag, result_bytes,
            rand=self.enclave.read_rand, clock=self.clock,
        )
        return PutRequest(
            tag=tag,
            challenge=protected.challenge,
            wrapped_key=protected.wrapped_key,
            sealed_result=protected.sealed_result,
            app_id=self.config.app_id,
        )

    def _compute_and_put(
        self,
        func: Callable,
        description: FunctionDescription,
        func_identity: bytes,
        input_value: Any,
        input_bytes: bytes,
        tag: bytes,
        result_parser: Parser,
        unpack_args: bool,
        native_factor: float,
        store_result: bool = True,
    ) -> tuple[Any, int, float]:
        result_value, compute_sim = self._compute_raw(
            func, input_value, unpack_args, native_factor
        )
        result_bytes = result_parser.encode(result_value)
        if self.config.dedup_enabled and store_result:
            if self.l1_cache is not None:
                self.l1_cache.put(tag, result_bytes)
            put = self._protect_put(func_identity, input_bytes, tag, result_bytes)
            if self.config.async_put:
                self._enqueue_put(put)
            else:
                self._send_put_sync(put)
        return result_value, len(result_bytes), compute_sim

    def _send_put_sync(self, put: PutRequest) -> None:
        try:
            with self.enclave.ocall("put_request", in_bytes=len(put.sealed_result) + 128):
                response = self.client.call(put)
        except _STORE_FAILURES:
            if not self.config.degrade_on_store_failure:
                raise
            self.stats.puts_sent += 1
            self.stats.puts_failed += 1
            return
        self.stats.puts_sent += 1
        if isinstance(response, PutResponse) and response.accepted:
            self.stats.puts_accepted += 1
            self.acked_put_tags.add(put.tag)
        else:
            self.stats.puts_rejected += 1

    # -- asynchronous PUT draining ---------------------------------------------
    def _enqueue_put(self, put: PutRequest) -> None:
        """Queue an async PUT, applying the configured back-pressure.

        With ``put_queue_entries > 0`` the queue is bounded: once the
        enqueue reaches the cap, the oldest ``put_flush_batch`` entries
        are drained immediately — the computing caller absorbs the send
        cost rather than the queue growing without limit (the engine's
        background lane overlaps it with foreground work when attached).
        """
        if self._closed:
            raise DedupError("runtime is closed; no further PUTs accepted")
        self._pending_puts.append(put)
        bound = self.config.put_queue_entries
        if bound > 0 and len(self._pending_puts) >= bound:
            if self.engine is not None:
                # Forced drains are the engine's PUT back-pressure
                # signal: the adaptive depth controller shrinks its
                # window instead of piling more work on a full queue.
                self.engine.note_backpressure()
            self.drain_put_batch()

    def drain_put_batch(self, max_items: int | None = None) -> int:
        """Send the oldest queued PUT batch one-way and account any
        responses already available; returns the number sent.

        This is the background flusher's unit of work: bounded, cheap,
        callable between foreground requests.  When an engine is
        attached the drain's clock charges are accounted as the
        engine's background lane — they overlap the next round of
        foreground work instead of adding to the critical path.
        """
        if max_items is None:
            max_items = self.config.put_flush_batch or len(self._pending_puts)
        batch = self._pending_puts[:max_items]
        del self._pending_puts[:max_items]
        if batch:
            if self.engine is not None:
                with self.engine.background():
                    self._send_put_batch_oneway(batch)
            else:
                self._send_put_batch_oneway(batch)
        self._account_put_responses(self.client.drain_responses())
        return len(batch)

    def _send_put_batch_oneway(self, batch: list[PutRequest]) -> None:
        if len(batch) == 1:
            request_id = self.client.send_oneway(batch[0])
        else:
            request_id = self.client.send_oneway_batch(batch)
        self._inflight_puts[request_id] = len(batch)
        self._inflight_put_tags[request_id] = tuple(p.tag for p in batch)
        self.stats.puts_sent += len(batch)

    def flush_puts(self) -> int:
        """Send all queued PUTs (the "separated thread" of §V-B) and
        account their outcomes; returns the number flushed.

        Called off the latency-critical path — e.g. between requests or
        from the host loop.  Queued PUTs were already protected inside
        the enclave; only untrusted sending remains.  Two or more queued
        PUTs travel as one batched channel record.

        Accounting is explicit: a drained response is attributed to a
        flushed PUT only when its correlation id matches one we sent.
        Each such PUT lands in exactly one of ``puts_accepted``,
        ``puts_rejected`` (the store said no), or ``puts_failed`` (the
        store answered with an error, e.g. the record was corrupted in
        transit).  PUTs whose response never arrived — dropped replies,
        or errors the server could not correlate — stay visible in
        :attr:`puts_unacknowledged` instead of being miscounted.
        """
        flushed = 0
        while self._pending_puts:
            flushed += self.drain_put_batch(max_items=len(self._pending_puts))
        if not flushed:
            self._account_put_responses(self.client.drain_responses())
        return flushed

    def _account_put_responses(self, responses: Sequence[Message]) -> None:
        for response in responses:
            count = self._inflight_puts.pop(response.request_id, None)
            if count is None:
                # Not a reply to any PUT we are waiting on (e.g. an
                # uncorrelated decode error): the affected PUTs remain
                # in puts_unacknowledged rather than being guessed at.
                continue
            tags = self._inflight_put_tags.pop(response.request_id, ())
            if isinstance(response, PutResponse):
                if response.accepted:
                    self.stats.puts_accepted += 1
                    if tags:
                        self.acked_put_tags.add(tags[0])
                else:
                    self.stats.puts_rejected += 1
            elif isinstance(response, BatchPutResponse):
                for index, item in enumerate(response.items):
                    if item.accepted:
                        self.stats.puts_accepted += 1
                        if index < len(tags):
                            self.acked_put_tags.add(tags[index])
                    else:
                        self.stats.puts_rejected += 1
            elif isinstance(response, ErrorMessage):
                self.stats.puts_failed += count
            else:
                self.stats.puts_failed += count

    @property
    def pending_put_count(self) -> int:
        return len(self._pending_puts)

    @property
    def puts_unacknowledged(self) -> int:
        """Flushed PUTs whose response has not been drained (or was lost)."""
        return sum(self._inflight_puts.values())

    def snapshot(self) -> dict:
        """The runtime's full observability export: every RuntimeStats
        counter plus the in-flight PUT state only the runtime can see."""
        snap = self.stats.snapshot()
        snap["pending_puts"] = snap["runtime.pending_puts"] = self.pending_put_count
        snap["puts_unacknowledged"] = snap["runtime.puts_unacknowledged"] = (
            self.puts_unacknowledged
        )
        snap["puts_acked_unique"] = snap["runtime.puts_acked_unique"] = len(
            self.acked_put_tags
        )
        if self.l1_cache is not None:
            snap["l1_entries"] = snap["runtime.l1_entries"] = len(self.l1_cache)
        return snap
