"""Shared conventions for structured operation reports.

Several subsystems return a frozen dataclass summarising a completed
operation — :class:`~repro.cluster.migration.MigrationReport`,
:class:`~repro.durable.recovery.RecoveryReport`, and the topology-level
:class:`~repro.session.TopologyReport`.  :class:`ReportMixin` gives them
one rendering convention:

- ``to_dict()``: a flat, JSON-serialisable dict of the report fields
  (nested report fields are expanded recursively), and
- ``table()``: a fixed-width two-column plain-text table for humans.

Reports stay plain dataclasses; the mixin only adds presentation.
"""

from __future__ import annotations

import dataclasses
from typing import Any


class ReportMixin:
    """Uniform ``to_dict()`` / ``table()`` rendering for report dataclasses."""

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-serialisable view of the report fields."""
        out: dict[str, Any] = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            out[field.name] = _jsonable(getattr(self, field.name))
        return out

    def table(self) -> str:
        """Two-column fixed-width rendering, one row per field."""
        title = type(self).__name__
        rows = [(name, _cell(value)) for name, value in self.to_dict().items()]
        width = max(len(name) for name, _ in rows)
        vwidth = max(len(v) for _, v in rows)
        lines = [title, "=" * len(title)]
        for name, value in rows:
            lines.append(f"{name.ljust(width)} | {value.rjust(vwidth)}")
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    if isinstance(value, ReportMixin):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, bytes):
        return value.hex()
    return value


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
    if isinstance(value, (dict, list)):
        return repr(value)
    return str(value)
