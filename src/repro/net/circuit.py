"""Per-destination circuit breakers for the cluster routing layer.

A dead shard makes every call to it pay the full timeout path (send,
scan, retries).  A :class:`CircuitBreaker` converts repeated failures
into fast local refusals: after ``failure_threshold`` consecutive
failures the breaker *opens* and calls are refused without touching the
wire; after a quiet period it admits a single probe (*half-open*) whose
outcome decides between closing again and re-opening.

Two recovery clocks are supported, because the simulation offers two
notions of "later":

* ``reset_timeout_s`` — simulated seconds on the machine's
  :class:`~repro.sgx.cost_model.SimClock`;
* ``reset_after_skips`` — a count of refused calls.  This variant is
  fully deterministic even though the SimClock accumulates measured
  wall time for compute, so the simulation harness uses it to keep
  traces byte-identical across runs.

When both are set, whichever trips first admits the probe.
"""

from __future__ import annotations

from dataclasses import dataclass

# Numeric state codes (exported through metrics snapshots).
CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half_open"}


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning for one :class:`CircuitBreaker`."""

    failure_threshold: int = 3
    reset_timeout_s: float | None = 0.05
    reset_after_skips: int | None = None

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s is None and self.reset_after_skips is None:
            raise ValueError("breaker needs a recovery clock (timeout or skips)")


class CircuitBreaker:
    """Closed → open → half-open failure gate for one destination."""

    def __init__(self, config: BreakerConfig | None = None, clock=None):
        self.config = config or BreakerConfig()
        self.clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._skips_while_open = 0
        self.opens = 0
        self.skips = 0

    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self._state]

    def _now(self) -> float:
        return self.clock.elapsed_seconds() if self.clock is not None else 0.0

    def allow(self) -> bool:
        """May a call go out right now?  A refusal is counted as a skip
        and advances the skip-based recovery clock."""
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            cfg = self.config
            timed_out = (
                cfg.reset_timeout_s is not None
                and self._now() - self._opened_at >= cfg.reset_timeout_s
            )
            skipped_out = (
                cfg.reset_after_skips is not None
                and self._skips_while_open >= cfg.reset_after_skips
            )
            if timed_out or skipped_out:
                self._state = HALF_OPEN
                return True
            self.skips += 1
            self._skips_while_open += 1
            return False
        return True  # HALF_OPEN: admit the probe

    def record_success(self) -> None:
        self._state = CLOSED
        self._failures = 0
        self._skips_while_open = 0

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == HALF_OPEN or self._failures >= self.config.failure_threshold:
            if self._state != OPEN:
                self.opens += 1
            self._state = OPEN
            self._failures = 0
            self._skips_while_open = 0
            self._opened_at = self._now()

    def snapshot(self) -> dict:
        return {
            "state": self._state,
            "opens": self.opens,
            "skips": self.skips,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.state_name} opens={self.opens}>"
