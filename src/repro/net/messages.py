"""Wire messages exchanged between DedupRuntime and ResultStore.

These are the ``XXX_REQUEST`` / ``XXX_RESPONSE`` structures of §IV-B,
implemented "in a function-agnostic way with uniform serialization"
(§II-C): tags, challenges, wrapped keys, and sealed results are opaque
byte strings at this layer.

``SYNC_*`` messages implement the master-ResultStore replication the
paper sketches in the §IV-B remark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .framing import FieldReader, FieldWriter
from ..errors import ProtocolError


class MessageType(enum.IntEnum):
    GET_REQUEST = 1
    GET_RESPONSE = 2
    PUT_REQUEST = 3
    PUT_RESPONSE = 4
    SYNC_REQUEST = 5
    SYNC_RESPONSE = 6
    ERROR = 7


@dataclass(frozen=True)
class GetRequest:
    """Duplicate check: does the store hold a result for ``tag``?"""

    tag: bytes
    app_id: str = ""

    TYPE = MessageType.GET_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.blob(self.tag).text(self.app_id)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "GetRequest":
        return cls(tag=r.blob(), app_id=r.text())


@dataclass(frozen=True)
class GetResponse:
    """Store's answer: ``found`` plus ``(r, [k], [res])`` when positive
    (Algorithm 2, line 3)."""

    found: bool
    challenge: bytes = b""
    wrapped_key: bytes = b""
    sealed_result: bytes = b""

    TYPE = MessageType.GET_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.boolean(self.found).blob(self.challenge).blob(self.wrapped_key).blob(self.sealed_result)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "GetResponse":
        return cls(
            found=r.boolean(),
            challenge=r.blob(),
            wrapped_key=r.blob(),
            sealed_result=r.blob(),
        )


@dataclass(frozen=True)
class PutRequest:
    """Store an initial computation's ``(r, [k], [res])`` under ``tag``
    (Algorithm 1, line 10)."""

    tag: bytes
    challenge: bytes
    wrapped_key: bytes
    sealed_result: bytes
    app_id: str = ""

    TYPE = MessageType.PUT_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.blob(self.tag).blob(self.challenge).blob(self.wrapped_key)
        w.blob(self.sealed_result).text(self.app_id)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "PutRequest":
        return cls(
            tag=r.blob(),
            challenge=r.blob(),
            wrapped_key=r.blob(),
            sealed_result=r.blob(),
            app_id=r.text(),
        )


@dataclass(frozen=True)
class PutResponse:
    accepted: bool
    reason: str = ""

    TYPE = MessageType.PUT_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.boolean(self.accepted).text(self.reason)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "PutResponse":
        return cls(accepted=r.boolean(), reason=r.text())


@dataclass(frozen=True)
class SyncRequest:
    """Master-store pull: request entries hotter than ``min_hits`` that
    the requester does not hold yet."""

    known_tags: tuple[bytes, ...] = ()
    min_hits: int = 1

    TYPE = MessageType.SYNC_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.known_tags))
        for t in self.known_tags:
            w.blob(t)
        w.u32(self.min_hits)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "SyncRequest":
        count = r.u32()
        tags = tuple(r.blob() for _ in range(count))
        return cls(known_tags=tags, min_hits=r.u32())


@dataclass(frozen=True)
class SyncResponse:
    """A batch of replicated entries: (tag, r, [k], [res]) tuples."""

    entries: tuple[tuple[bytes, bytes, bytes, bytes], ...] = field(default=())

    TYPE = MessageType.SYNC_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.entries))
        for tag, challenge, wrapped_key, sealed in self.entries:
            w.blob(tag).blob(challenge).blob(wrapped_key).blob(sealed)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "SyncResponse":
        count = r.u32()
        entries = tuple(
            (r.blob(), r.blob(), r.blob(), r.blob()) for _ in range(count)
        )
        return cls(entries=entries)


@dataclass(frozen=True)
class ErrorMessage:
    code: int
    detail: str = ""

    TYPE = MessageType.ERROR

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(self.code).text(self.detail)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "ErrorMessage":
        return cls(code=r.u32(), detail=r.text())


_MESSAGE_CLASSES = {
    cls.TYPE: cls
    for cls in (
        GetRequest,
        GetResponse,
        PutRequest,
        PutResponse,
        SyncRequest,
        SyncResponse,
        ErrorMessage,
    )
}

Message = (
    GetRequest
    | GetResponse
    | PutRequest
    | PutResponse
    | SyncRequest
    | SyncResponse
    | ErrorMessage
)


def encode_message(msg: Message) -> bytes:
    """Serialize a message to ``type_byte || body``."""
    w = FieldWriter()
    w.u8(int(msg.TYPE))
    msg.encode_body(w)
    return w.getvalue()


def decode_message(data: bytes) -> Message:
    """Parse a message; raises ProtocolError on unknown type or garbage."""
    r = FieldReader(data)
    try:
        mtype = MessageType(r.u8())
    except ValueError as exc:
        raise ProtocolError(f"unknown message type in {data[:8]!r}") from exc
    msg = _MESSAGE_CLASSES[mtype].decode_body(r)
    r.expect_end()
    return msg
