"""Wire messages exchanged between DedupRuntime and ResultStore.

These are the ``XXX_REQUEST`` / ``XXX_RESPONSE`` structures of §IV-B,
implemented "in a function-agnostic way with uniform serialization"
(§II-C): tags, challenges, wrapped keys, and sealed results are opaque
byte strings at this layer.

``SYNC_*`` messages implement the master-ResultStore replication the
paper sketches in the §IV-B remark.

Every message carries a ``request_id`` in its header: servers echo the
requester's id into the response so that a client multiplexing
synchronous calls and one-way sends on one endpoint can match each
response to its request.  The id is transport bookkeeping, not message
content — it is excluded from equality.

``BATCH_*`` messages carry many GET/PUT items under one header (and
therefore one channel record and one server-side ECALL): the batched
hot path that amortizes per-message overhead across items.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field

from .framing import FieldReader, FieldWriter
from ..errors import ProtocolError

# Upper bound on items per batch message; a decoded count beyond this is
# a protocol violation (defends the store against resource-exhaustion
# payloads that claim absurd item counts).
MAX_BATCH_ITEMS = 65536


class MessageType(enum.IntEnum):
    GET_REQUEST = 1
    GET_RESPONSE = 2
    PUT_REQUEST = 3
    PUT_RESPONSE = 4
    SYNC_REQUEST = 5
    SYNC_RESPONSE = 6
    ERROR = 7
    BATCH_GET_REQUEST = 8
    BATCH_GET_RESPONSE = 9
    BATCH_PUT_REQUEST = 10
    BATCH_PUT_RESPONSE = 11


@dataclass(frozen=True)
class GetRequest:
    """Duplicate check: does the store hold a result for ``tag``?"""

    tag: bytes
    app_id: str = ""
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.GET_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.blob(self.tag).text(self.app_id)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "GetRequest":
        return cls(tag=r.blob(), app_id=r.text())


@dataclass(frozen=True)
class GetResponse:
    """Store's answer: ``found`` plus ``(r, [k], [res])`` when positive
    (Algorithm 2, line 3).

    ``reason`` annotates negative answers: a plain miss carries an empty
    reason, while the cluster router marks items whose every owner timed
    out so the caller can tell "recompute because unknown" apart from
    "recompute because the owning shards were unreachable".  Either way
    the fail-safe action is the same (Algorithm 1 recompute).
    """

    found: bool
    challenge: bytes = b""
    wrapped_key: bytes = b""
    sealed_result: bytes = b""
    reason: str = ""
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.GET_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.boolean(self.found).blob(self.challenge).blob(self.wrapped_key).blob(self.sealed_result)
        w.text(self.reason)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "GetResponse":
        return cls(
            found=r.boolean(),
            challenge=r.blob(),
            wrapped_key=r.blob(),
            sealed_result=r.blob(),
            reason=r.text(),
        )


@dataclass(frozen=True)
class PutRequest:
    """Store an initial computation's ``(r, [k], [res])`` under ``tag``
    (Algorithm 1, line 10)."""

    tag: bytes
    challenge: bytes
    wrapped_key: bytes
    sealed_result: bytes
    app_id: str = ""
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.PUT_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.blob(self.tag).blob(self.challenge).blob(self.wrapped_key)
        w.blob(self.sealed_result).text(self.app_id)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "PutRequest":
        return cls(
            tag=r.blob(),
            challenge=r.blob(),
            wrapped_key=r.blob(),
            sealed_result=r.blob(),
            app_id=r.text(),
        )


@dataclass(frozen=True)
class PutResponse:
    accepted: bool
    reason: str = ""
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.PUT_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.boolean(self.accepted).text(self.reason)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "PutResponse":
        return cls(accepted=r.boolean(), reason=r.text())


@dataclass(frozen=True)
class SyncRequest:
    """Master-store pull: request entries hotter than ``min_hits`` that
    the requester does not hold yet."""

    known_tags: tuple[bytes, ...] = ()
    min_hits: int = 1
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.SYNC_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.known_tags))
        for t in self.known_tags:
            w.blob(t)
        w.u32(self.min_hits)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "SyncRequest":
        count = r.u32()
        tags = tuple(r.blob() for _ in range(count))
        return cls(known_tags=tags, min_hits=r.u32())


@dataclass(frozen=True)
class SyncResponse:
    """A batch of replicated entries: (tag, r, [k], [res]) tuples."""

    entries: tuple[tuple[bytes, bytes, bytes, bytes], ...] = field(default=())
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.SYNC_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.entries))
        for tag, challenge, wrapped_key, sealed in self.entries:
            w.blob(tag).blob(challenge).blob(wrapped_key).blob(sealed)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "SyncResponse":
        count = r.u32()
        entries = tuple(
            (r.blob(), r.blob(), r.blob(), r.blob()) for _ in range(count)
        )
        return cls(entries=entries)


def _read_batch_count(r: FieldReader) -> int:
    count = r.u32()
    if count > MAX_BATCH_ITEMS:
        raise ProtocolError(f"batch of {count} items exceeds limit {MAX_BATCH_ITEMS}")
    return count


@dataclass(frozen=True)
class BatchGetRequest:
    """Many duplicate checks under one header: one channel record, one
    store-side ECALL, N dictionary probes."""

    items: tuple[GetRequest, ...]
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.BATCH_GET_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.items))
        for item in self.items:
            item.encode_body(w)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "BatchGetRequest":
        count = _read_batch_count(r)
        return cls(items=tuple(GetRequest.decode_body(r) for _ in range(count)))


@dataclass(frozen=True)
class BatchGetResponse:
    """Per-item answers, in the order of the request's items."""

    items: tuple[GetResponse, ...]
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.BATCH_GET_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.items))
        for item in self.items:
            item.encode_body(w)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "BatchGetResponse":
        count = _read_batch_count(r)
        return cls(items=tuple(GetResponse.decode_body(r) for _ in range(count)))


@dataclass(frozen=True)
class BatchPutRequest:
    """Many initial-computation stores under one header."""

    items: tuple[PutRequest, ...]
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.BATCH_PUT_REQUEST

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.items))
        for item in self.items:
            item.encode_body(w)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "BatchPutRequest":
        count = _read_batch_count(r)
        return cls(items=tuple(PutRequest.decode_body(r) for _ in range(count)))


@dataclass(frozen=True)
class BatchPutResponse:
    """Per-item verdicts, in the order of the request's items."""

    items: tuple[PutResponse, ...]
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.BATCH_PUT_RESPONSE

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(len(self.items))
        for item in self.items:
            item.encode_body(w)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "BatchPutResponse":
        count = _read_batch_count(r)
        return cls(items=tuple(PutResponse.decode_body(r) for _ in range(count)))


@dataclass(frozen=True)
class ErrorMessage:
    code: int
    detail: str = ""
    request_id: int = field(default=0, compare=False)

    TYPE = MessageType.ERROR

    def encode_body(self, w: FieldWriter) -> None:
        w.u32(self.code).text(self.detail)

    @classmethod
    def decode_body(cls, r: FieldReader) -> "ErrorMessage":
        return cls(code=r.u32(), detail=r.text())


_MESSAGE_CLASSES = {
    cls.TYPE: cls
    for cls in (
        GetRequest,
        GetResponse,
        PutRequest,
        PutResponse,
        SyncRequest,
        SyncResponse,
        ErrorMessage,
        BatchGetRequest,
        BatchGetResponse,
        BatchPutRequest,
        BatchPutResponse,
    )
}

Message = (
    GetRequest
    | GetResponse
    | PutRequest
    | PutResponse
    | SyncRequest
    | SyncResponse
    | ErrorMessage
    | BatchGetRequest
    | BatchGetResponse
    | BatchPutRequest
    | BatchPutResponse
)


def with_request_id(msg: Message, request_id: int) -> Message:
    """Return ``msg`` carrying ``request_id`` (no copy if already set)."""
    if msg.request_id == request_id:
        return msg
    return dataclasses.replace(msg, request_id=request_id)


def encode_message(msg: Message) -> bytes:
    """Serialize a message to ``type_byte || request_id || body``."""
    w = FieldWriter()
    w.u8(int(msg.TYPE))
    w.u64(msg.request_id)
    msg.encode_body(w)
    return w.getvalue()


def decode_message(data: bytes) -> Message:
    """Parse a message; raises ProtocolError on unknown type or garbage."""
    r = FieldReader(data)
    try:
        mtype = MessageType(r.u8())
    except ValueError as exc:
        raise ProtocolError(f"unknown message type in {data[:8]!r}") from exc
    request_id = r.u64()
    msg = _MESSAGE_CLASSES[mtype].decode_body(r)
    r.expect_end()
    if request_id:
        msg = dataclasses.replace(msg, request_id=request_id)
    return msg
