"""In-process loopback transport standing in for the paper's sockets.

The paper deploys the ResultStore "at the same machine of the outsourced
applications" (§IV-B remark) and talks to it over a local socket with
synchronous GETs and asynchronous PUTs.  This transport reproduces that
topology deterministically: named endpoints on a shared network object,
FIFO delivery, and per-message cost charged to the *sender's* platform
clock (wire time + syscall overhead are sender-side in our accounting).

An optional :class:`FaultInjector` perturbs delivery — drop, corrupt,
duplicate, or delay individual messages, or kill whole addresses — used
by the failure-injection tests and by the :mod:`repro.simtest` harness,
whose seeded :class:`~repro.simtest.schedule.FaultPlan` plugs in through
:attr:`FaultInjector.plan`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..errors import TransportError
from ..sgx.cost_model import SimClock


@dataclass(frozen=True)
class FaultDecision:
    """What the fault layer does to one message on one edge.

    ``duplicate`` is the number of *extra* copies delivered after the
    original; ``delay`` holds the message back until that many further
    network deliveries have happened (the loopback network has no
    independent timeline, so "later" is measured in delivery events).
    ``drop`` wins over everything else; ``corrupt`` applies to every
    delivered copy.
    """

    drop: bool = False
    corrupt: bool = False
    duplicate: int = 0
    delay: int = 0


#: The no-fault decision (shared instance: decisions are immutable).
DELIVER = FaultDecision()


def corrupt_payload(payload: bytes) -> bytes:
    """The canonical single-message corruption: flip the last byte."""
    if not payload:
        return payload
    return payload[:-1] + bytes([payload[-1] ^ 0xFF])


@dataclass
class FaultInjector:
    """Deterministic fault rules applied per (source, dest) edge.

    Index-based rules (``drop_indices`` / ``corrupt_indices``) count
    messages **per edge**: plain integer ``N`` matches the Nth message on
    *every* edge, and an ``(source, dest, N)`` tuple matches the Nth
    message on that one edge only.  (Historically a single global counter
    spanned all edges, so rule meanings silently shifted whenever
    unrelated traffic interleaved.)

    Address-based rules model whole-process failures: any message sent
    *to* an address in :attr:`dead_addresses` vanishes on the wire, which
    is how the cluster layer kills a ResultStore shard (requests reach
    the dead shard's socket and are never answered, so the caller's
    synchronous receive times out).

    :attr:`plan` accepts a schedule object with a
    ``decide(source, dest, index, size) -> FaultDecision`` method (e.g.
    :class:`repro.simtest.schedule.FaultPlan`); its decision is merged
    with the index rules.
    """

    drop_indices: set = field(default_factory=set)
    corrupt_indices: set = field(default_factory=set)
    dead_addresses: set[str] = field(default_factory=set)
    plan: object | None = None
    _edge_counters: dict[tuple[str, str], int] = field(default_factory=dict, init=False)

    def kill(self, address: str) -> None:
        """Silently discard all traffic to ``address`` from now on."""
        self.dead_addresses.add(address)

    def revive(self, address: str) -> None:
        """Let traffic reach ``address`` again."""
        self.dead_addresses.discard(address)

    def is_dead(self, address: str) -> bool:
        return address in self.dead_addresses

    def edge_count(self, source: str, dest: str) -> int:
        """Messages seen so far on one directed edge (the next message
        on that edge gets this index)."""
        return self._edge_counters.get((source, dest), 0)

    def _index_matches(self, rules: set, source: str, dest: str, index: int) -> bool:
        return index in rules or (source, dest, index) in rules

    def decide(self, payload: bytes, source: str = "", dest: str = "") -> FaultDecision:
        """Consume one edge index and decide this message's fate."""
        index = self._edge_counters.get((source, dest), 0)
        self._edge_counters[(source, dest)] = index + 1
        if dest in self.dead_addresses or source in self.dead_addresses:
            return FaultDecision(drop=True)
        drop = self._index_matches(self.drop_indices, source, dest, index)
        corrupt = self._index_matches(self.corrupt_indices, source, dest, index)
        duplicate = 0
        delay = 0
        if self.plan is not None:
            planned = self.plan.decide(source, dest, index, len(payload))
            drop = drop or planned.drop
            corrupt = corrupt or planned.corrupt
            duplicate = planned.duplicate
            delay = planned.delay
        if drop:
            return FaultDecision(drop=True)
        if not (corrupt or duplicate or delay):
            return DELIVER
        return FaultDecision(corrupt=corrupt, duplicate=duplicate, delay=delay)

    def apply(self, payload: bytes, source: str = "", dest: str = "") -> bytes | None:
        """Compatibility shim over :meth:`decide` for drop/corrupt-only
        callers: returns the (possibly corrupted) payload, or None to
        drop.  Duplicate/delay decisions need the network's delivery
        machinery and are ignored here."""
        decision = self.decide(payload, source=source, dest=dest)
        if decision.drop:
            return None
        if decision.corrupt and payload:
            return corrupt_payload(payload)
        return payload


class Endpoint:
    """One addressable mailbox on a network."""

    def __init__(self, network: "Network", address: str, clock: SimClock):
        self.network = network
        self.address = address
        self.clock = clock
        self._inbox: deque[tuple[str, bytes]] = deque()

    def send(self, dest: str, payload: bytes) -> None:
        self.network.deliver(self.address, dest, payload)

    def recv(self) -> tuple[str, bytes]:
        """Pop the next (source, payload); raises if the inbox is empty —
        the simulation is synchronous, so an empty inbox is a logic bug."""
        if not self._inbox:
            raise TransportError(f"endpoint {self.address!r} has no pending messages")
        return self._inbox.popleft()

    def pending(self) -> int:
        return len(self._inbox)

    def _push(self, source: str, payload: bytes) -> None:
        self._inbox.append((source, payload))


class Network:
    """A set of endpoints with FIFO loopback delivery."""

    def __init__(self, fault_injector: FaultInjector | None = None):
        self._endpoints: dict[str, Endpoint] = {}
        self._fault_injector = fault_injector
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_corrupted = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self._taps: list[Callable[[str, str, bytes], None]] = []
        self._reactors: dict[str, object] = {}
        # Held-back messages: [remaining deliveries, source, dest, payload].
        self._delayed: list[list] = []
        self._releasing = False

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._fault_injector

    def ensure_fault_injector(self) -> FaultInjector:
        """Return the attached injector, installing an empty one if needed
        (the cluster layer kills shards through injector address rules)."""
        if self._fault_injector is None:
            self._fault_injector = FaultInjector()
        return self._fault_injector

    def endpoint(self, address: str, clock: SimClock) -> Endpoint:
        if address in self._endpoints:
            raise TransportError(f"address {address!r} already registered")
        ep = Endpoint(self, address, clock)
        self._endpoints[address] = ep
        return ep

    def add_tap(self, tap: Callable[[str, str, bytes], None]) -> None:
        """Register a passive observer (the honest-but-curious adversary in
        the security tests watches the wire through a tap)."""
        self._taps.append(tap)

    def deliver(self, source: str, dest: str, payload: bytes) -> None:
        sender = self._endpoints.get(source)
        receiver = self._endpoints.get(dest)
        if sender is None or receiver is None:
            raise TransportError(f"unknown endpoint in {source!r} -> {dest!r}")
        sender.clock.charge_network(len(payload))
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        for tap in self._taps:
            tap(source, dest, payload)
        # Every delivery event ages the held-back queue by one tick, so a
        # delayed message overtakes exactly `delay` later sends (reorder).
        for entry in self._delayed:
            entry[0] -= 1
        decision = DELIVER
        if self._fault_injector is not None:
            decision = self._fault_injector.decide(payload, source=source, dest=dest)
        if decision.drop:
            self.messages_dropped += 1
            self._release_due()
            return
        if decision.corrupt:
            self.messages_corrupted += 1
            payload = corrupt_payload(payload)
        if decision.delay > 0:
            self.messages_delayed += 1
            self._delayed.append([decision.delay, source, dest, payload])
        else:
            self._push_and_pump(source, dest, payload)
        for _ in range(decision.duplicate):
            self.messages_duplicated += 1
            self._push_and_pump(source, dest, payload)
        self._release_due()

    def _push_and_pump(self, source: str, dest: str, payload: bytes) -> None:
        receiver = self._endpoints.get(dest)
        if receiver is None:
            return  # endpoint withdrawn while the message was in flight
        receiver._push(source, payload)
        reactor = self._reactors.get(dest)
        if reactor is not None:
            reactor.pump()

    def _release_due(self) -> int:
        """Deliver every held-back message whose countdown expired.

        Reentrancy-guarded: releasing a message can pump a reactor whose
        reply re-enters :meth:`deliver`; the nested call only ages the
        queue and leaves the actual release to the outermost frame.
        """
        if self._releasing:
            return 0
        self._releasing = True
        released = 0
        try:
            while True:
                index = next(
                    (i for i, e in enumerate(self._delayed) if e[0] <= 0), None
                )
                if index is None:
                    break
                _, source, dest, payload = self._delayed.pop(index)
                injector = self._fault_injector
                if injector is not None and (
                    dest in injector.dead_addresses
                    or source in injector.dead_addresses
                ):
                    self.messages_dropped += 1
                    continue  # the address died while the message was held
                released += 1
                self._push_and_pump(source, dest, payload)
        finally:
            self._releasing = False
        return released

    def flush_delayed(self) -> int:
        """Force every held-back message out now (end-of-scenario healing);
        returns the number delivered."""
        released = 0
        for _ in range(1000):  # releases can enqueue new delayed messages
            if not self._delayed:
                break
            for entry in self._delayed:
                entry[0] = 0
            released += self._release_due()
        return released

    @property
    def delayed_count(self) -> int:
        return len(self._delayed)

    def snapshot(self) -> dict:
        """Canonical ``net.<metric>`` counters for the metrics registry."""
        return {
            "net.messages": self.messages_sent,
            "net.bytes": self.bytes_sent,
            "net.dropped": self.messages_dropped,
            "net.corrupted": self.messages_corrupted,
            "net.duplicated": self.messages_duplicated,
            "net.delayed": self.messages_delayed,
            "net.held": len(self._delayed),
        }

    def set_reactor(self, address: str, reactor) -> None:
        """Attach a server reactor: its ``pump()`` runs on each delivery,
        modelling a service process that drains its socket as data lands."""
        if address not in self._endpoints:
            raise TransportError(f"cannot attach reactor to unknown address {address!r}")
        self._reactors[address] = reactor

    def remove_reactor(self, address: str) -> None:
        """Detach a reactor (a stopped service no longer drains its socket)."""
        self._reactors.pop(address, None)
