"""In-process loopback transport standing in for the paper's sockets.

The paper deploys the ResultStore "at the same machine of the outsourced
applications" (§IV-B remark) and talks to it over a local socket with
synchronous GETs and asynchronous PUTs.  This transport reproduces that
topology deterministically: named endpoints on a shared network object,
FIFO delivery, and per-message cost charged to the *sender's* platform
clock (wire time + syscall overhead are sender-side in our accounting).

An optional :class:`FaultInjector` drops or corrupts messages, used by
the failure-injection tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..errors import TransportError
from ..sgx.cost_model import SimClock


@dataclass
class FaultInjector:
    """Deterministic fault plan: drop or corrupt the Nth message.

    Address-based rules model whole-process failures: any message sent
    *to* an address in :attr:`dead_addresses` vanishes on the wire, which
    is how the cluster layer kills a ResultStore shard (requests reach
    the dead shard's socket and are never answered, so the caller's
    synchronous receive times out).
    """

    drop_indices: set[int] = field(default_factory=set)
    corrupt_indices: set[int] = field(default_factory=set)
    dead_addresses: set[str] = field(default_factory=set)
    _counter: int = field(default=0, init=False)

    def kill(self, address: str) -> None:
        """Silently discard all traffic to ``address`` from now on."""
        self.dead_addresses.add(address)

    def revive(self, address: str) -> None:
        """Let traffic reach ``address`` again."""
        self.dead_addresses.discard(address)

    def is_dead(self, address: str) -> bool:
        return address in self.dead_addresses

    def apply(self, payload: bytes, source: str = "", dest: str = "") -> bytes | None:
        """Returns the (possibly corrupted) payload, or None to drop."""
        index = self._counter
        self._counter += 1
        if dest in self.dead_addresses or source in self.dead_addresses:
            return None
        if index in self.drop_indices:
            return None
        if index in self.corrupt_indices and payload:
            return payload[:-1] + bytes([payload[-1] ^ 0xFF])
        return payload


class Endpoint:
    """One addressable mailbox on a network."""

    def __init__(self, network: "Network", address: str, clock: SimClock):
        self.network = network
        self.address = address
        self.clock = clock
        self._inbox: deque[tuple[str, bytes]] = deque()

    def send(self, dest: str, payload: bytes) -> None:
        self.network.deliver(self.address, dest, payload)

    def recv(self) -> tuple[str, bytes]:
        """Pop the next (source, payload); raises if the inbox is empty —
        the simulation is synchronous, so an empty inbox is a logic bug."""
        if not self._inbox:
            raise TransportError(f"endpoint {self.address!r} has no pending messages")
        return self._inbox.popleft()

    def pending(self) -> int:
        return len(self._inbox)

    def _push(self, source: str, payload: bytes) -> None:
        self._inbox.append((source, payload))


class Network:
    """A set of endpoints with FIFO loopback delivery."""

    def __init__(self, fault_injector: FaultInjector | None = None):
        self._endpoints: dict[str, Endpoint] = {}
        self._fault_injector = fault_injector
        self.messages_sent = 0
        self.bytes_sent = 0
        self._taps: list[Callable[[str, str, bytes], None]] = []
        self._reactors: dict[str, object] = {}

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._fault_injector

    def ensure_fault_injector(self) -> FaultInjector:
        """Return the attached injector, installing an empty one if needed
        (the cluster layer kills shards through injector address rules)."""
        if self._fault_injector is None:
            self._fault_injector = FaultInjector()
        return self._fault_injector

    def endpoint(self, address: str, clock: SimClock) -> Endpoint:
        if address in self._endpoints:
            raise TransportError(f"address {address!r} already registered")
        ep = Endpoint(self, address, clock)
        self._endpoints[address] = ep
        return ep

    def add_tap(self, tap: Callable[[str, str, bytes], None]) -> None:
        """Register a passive observer (the honest-but-curious adversary in
        the security tests watches the wire through a tap)."""
        self._taps.append(tap)

    def deliver(self, source: str, dest: str, payload: bytes) -> None:
        sender = self._endpoints.get(source)
        receiver = self._endpoints.get(dest)
        if sender is None or receiver is None:
            raise TransportError(f"unknown endpoint in {source!r} -> {dest!r}")
        sender.clock.charge_network(len(payload))
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        for tap in self._taps:
            tap(source, dest, payload)
        if self._fault_injector is not None:
            mutated = self._fault_injector.apply(payload, source=source, dest=dest)
            if mutated is None:
                return  # dropped on the wire
            payload = mutated
        receiver._push(source, payload)
        reactor = self._reactors.get(dest)
        if reactor is not None:
            reactor.pump()

    def set_reactor(self, address: str, reactor) -> None:
        """Attach a server reactor: its ``pump()`` runs on each delivery,
        modelling a service process that drains its socket as data lands."""
        if address not in self._endpoints:
            raise TransportError(f"cannot attach reactor to unknown address {address!r}")
        self._reactors[address] = reactor

    def remove_reactor(self, address: str) -> None:
        """Detach a reactor (a stopped service no longer drains its socket)."""
        self._reactors.pop(address, None)
