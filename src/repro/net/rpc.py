"""Request/response layer over the loopback transport.

DedupRuntime issues a synchronous ``GET_REQUEST`` (the OCALL "needs to
wait until receiving corresponding GET_RESPONSE", §IV-B) and an
asynchronous ``PUT_REQUEST``.  The server side is a reactor: the network
invokes it as messages arrive, which models the ResultStore process
draining its socket.

All payloads crossing this layer are channel *records* — the plaintext
messages only ever exist inside the two enclaves.

Correlation: every outgoing request carries a client-assigned
``request_id`` which the server echoes.  A synchronous :meth:`RpcClient.call`
therefore always receives *its own* response even when replies to earlier
one-way sends are still sitting in the inbox — those are buffered and
handed out by :meth:`RpcClient.drain_responses` instead of being
mis-delivered to the next caller.

Batching: :meth:`RpcClient.call_batch` ships a uniform list of GET or PUT
requests as one ``BATCH_*`` message, so the whole batch costs one channel
record (one AEAD seal/open per direction) and one server-side ECALL
instead of N of each.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .channel import ChannelEndpoint
from .messages import (
    BatchGetRequest,
    BatchGetResponse,
    BatchPutRequest,
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    Message,
    PutRequest,
    decode_message,
    encode_message,
    with_request_id,
)
from .transport import Endpoint
from ..errors import ProtocolError, TransportError
from ..obs.tracer import NULL_TRACER


class RpcServer:
    """Reactor serving protected messages on one endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        channel: ChannelEndpoint,
        handler: Callable[[Message], Message],
        wrap_factory: Callable[[str, int], object] | None = None,
    ):
        self._endpoint = endpoint
        self._channel = channel
        self._handler = handler
        # For an SGX-hosted service: a factory returning a context manager
        # (typically ``enclave.ecall``) wrapping each request, so channel
        # crypto and dictionary access happen inside the enclave and the
        # ECALL transition cost is charged (paper §IV-B).
        self._wrap_factory = wrap_factory
        self.requests_served = 0

    def _process(self, record: bytes) -> bytes:
        request_id = 0
        try:
            request = decode_message(self._channel.unprotect(record))
        except Exception as exc:  # channel/protocol violation
            response: Message = ErrorMessage(code=400, detail=str(exc))
        else:
            request_id = request.request_id
            try:
                response = self._handler(request)
            except Exception as exc:
                response = ErrorMessage(code=500, detail=str(exc))
        return self._channel.protect(encode_message(with_request_id(response, request_id)))

    def pump(self) -> int:
        """Serve every pending request; returns the number served."""
        served = 0
        while self._endpoint.pending():
            source, record = self._endpoint.recv()
            if self._wrap_factory is not None:
                with self._wrap_factory("serve_request", len(record)):
                    reply = self._process(record)
            else:
                reply = self._process(record)
            self._endpoint.send(source, reply)
            served += 1
            self.requests_served += 1
        return served


class RpcClient:
    """Synchronous caller; also supports fire-and-forget sends."""

    def __init__(
        self,
        endpoint: Endpoint,
        channel: ChannelEndpoint,
        server_address: str,
        tracer=NULL_TRACER,
        clock=None,
    ):
        self._endpoint = endpoint
        self._channel = channel
        self._server_address = server_address
        self._next_request_id = 1
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.clock = clock
        # Responses addressed to one-way sends that arrived while a sync
        # call was scanning the inbox; surfaced by drain_responses().
        self._stray_responses: list[Message] = []

    @property
    def server_address(self) -> str:
        """Network address of the server this client is bound to (the
        cluster router labels per-shard failures with it)."""
        return self._server_address

    @property
    def records_sent(self) -> int:
        """Channel records this client has sealed (the benchmark's
        records-per-call numerator)."""
        return self._channel.records_protected

    def _fresh_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _send(self, request: Message) -> None:
        self._endpoint.send(
            self._server_address, self._channel.protect(encode_message(request))
        )

    def _recv_one(self) -> Message:
        _source, record = self._endpoint.recv()
        return decode_message(self._channel.unprotect(record))

    def call(self, request: Message) -> Message:
        """Send a request and block on the *matching* response.

        Responses carrying other correlation ids (replies to earlier
        one-way sends) are buffered for :meth:`drain_responses` rather
        than returned here.  An uncorrelated ``ErrorMessage`` (the server
        could not even parse the offending request, so it could not echo
        an id) is surfaced to this caller.
        """
        with self.tracer.span(
            "rpc.call", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            request_id = self._fresh_request_id()
            self._send(with_request_id(request, request_id))
            while self._endpoint.pending():
                response = self._recv_one()
                if response.request_id == request_id:
                    if isinstance(response, ErrorMessage):
                        raise ProtocolError(
                            f"server error {response.code}: {response.detail}"
                        )
                    return response
                if isinstance(response, ErrorMessage) and response.request_id == 0:
                    raise ProtocolError(
                        f"server error {response.code}: {response.detail}"
                    )
                self._stray_responses.append(response)
            raise TransportError("no response arrived (server reactor not attached?)")

    def call_batch(self, requests: Sequence[Message]) -> list[Message]:
        """Issue a uniform batch of GETs or PUTs under one channel record.

        Returns the per-item responses in request order.  The batch is
        protected as a single record, so the AEAD and sequencing costs of
        the secure channel — and the store's ECALL — are paid once for
        the whole batch instead of once per item.
        """
        requests = list(requests)
        if not requests:
            return []
        if all(isinstance(r, GetRequest) for r in requests):
            batch: Message = BatchGetRequest(items=tuple(requests))
            expected: type = BatchGetResponse
        elif all(isinstance(r, PutRequest) for r in requests):
            batch = BatchPutRequest(items=tuple(requests))
            expected = BatchPutResponse
        else:
            raise ProtocolError("call_batch needs a uniform list of GETs or PUTs")
        response = self.call(batch)
        if not isinstance(response, expected):
            raise ProtocolError(
                f"store answered batch with {type(response).__name__}"
            )
        if len(response.items) != len(requests):
            raise ProtocolError(
                f"batch response has {len(response.items)} items, "
                f"expected {len(requests)}"
            )
        return list(response.items)

    def send_oneway(self, request: Message) -> int:
        """Fire-and-forget (used by the asynchronous PUT path); returns the
        assigned correlation id so the caller can match the eventual
        response from :meth:`drain_responses`."""
        with self.tracer.span(
            "rpc.send", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            request_id = self._fresh_request_id()
            self._send(with_request_id(request, request_id))
            return request_id

    def send_oneway_batch(self, requests: Sequence[PutRequest]) -> int:
        """Fire-and-forget an entire PUT batch as one channel record."""
        with self.tracer.span(
            "rpc.send", clock=self.clock,
            message="BatchPutRequest", server=self._server_address, items=len(requests),
        ):
            request_id = self._fresh_request_id()
            self._send(with_request_id(BatchPutRequest(items=tuple(requests)), request_id))
            return request_id

    def drain_responses(self) -> list[Message]:
        """Collect any responses to one-way sends (off the critical path).

        Includes responses that a synchronous :meth:`call` encountered and
        set aside while scanning for its own reply.
        """
        out: list[Message] = self._stray_responses
        self._stray_responses = []
        while self._endpoint.pending():
            out.append(self._recv_one())
        return out


def attach_reactor(network, address: str, server: RpcServer) -> None:
    """Wire a server so it drains its inbox whenever a message lands."""
    network.set_reactor(address, server)
