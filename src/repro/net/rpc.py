"""Request/response layer over the loopback transport.

DedupRuntime issues a synchronous ``GET_REQUEST`` (the OCALL "needs to
wait until receiving corresponding GET_RESPONSE", §IV-B) and an
asynchronous ``PUT_REQUEST``.  The server side is a reactor: the network
invokes it as messages arrive, which models the ResultStore process
draining its socket.

All payloads crossing this layer are channel *records* — the plaintext
messages only ever exist inside the two enclaves.

Correlation: every outgoing request carries a client-assigned
``request_id`` which the server echoes.  A synchronous :meth:`RpcClient.call`
therefore always receives *its own* response even when replies to earlier
one-way sends are still sitting in the inbox — those are buffered and
handed out by :meth:`RpcClient.drain_responses` instead of being
mis-delivered to the next caller.

Batching: :meth:`RpcClient.call_batch` ships a uniform list of GET or PUT
requests as one ``BATCH_*`` message, so the whole batch costs one channel
record (one AEAD seal/open per direction) and one server-side ECALL
instead of N of each.

Fault tolerance: an optional :class:`RetryPolicy` makes :meth:`RpcClient.call`
retry transient failures with exponential backoff (charged to the
SimClock) and *deterministic* jitter.  Retries reuse the original
correlation id, so a retried PUT whose first copy actually arrived is a
store-side duplicate ("already stored", accepted) rather than a double
write — idempotency keyed by correlation id.  Wire-duplicated or
replayed response records are rejected by the channel's sequence check
(counted, not fatal), and duplicate response *ids* that survive an
unsequenced channel are dropped before they can reach the wrong waiter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from .channel import ChannelEndpoint
from .messages import (
    BatchGetRequest,
    BatchGetResponse,
    BatchPutRequest,
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    Message,
    PutRequest,
    decode_message,
    encode_message,
    with_request_id,
)
from .transport import Endpoint
from ..crypto.hashes import tagged_hash
from ..errors import ChannelError, ProtocolError, RetryExhaustedError, TransportError
from ..obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for synchronous calls.

    ``max_attempts=1`` (the default) disables retries entirely, keeping
    the historical fail-fast behaviour.  The delay before attempt ``k``
    (k >= 1 retries) is ``base_delay_s * multiplier**(k-1)`` capped at
    ``max_delay_s``, reduced by up to ``jitter`` (a 0..1 fraction) using
    a hash of (server, correlation id, attempt) — deterministic, so
    simulated runs replay identically, yet decorrelated across callers.
    """

    max_attempts: int = 1
    base_delay_s: float = 200e-6
    multiplier: float = 2.0
    max_delay_s: float = 20e-3
    jitter: float = 0.5
    # A correlated ErrorMessage (server code 500) or an uncorrelated 400
    # (the server could not parse a corrupted record) is deterministic
    # for a fixed request *unless* the wire mangled it — under active
    # fault injection retrying it is the right call.
    retry_protocol_errors: bool = False

    def delay_for(self, retry_index: int, salt: bytes) -> float:
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier**retry_index)
        if not self.jitter:
            return raw
        digest = tagged_hash(b"rpc/backoff", salt, retry_index.to_bytes(4, "big"))
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 - self.jitter * fraction)


class RpcServer:
    """Reactor serving protected messages on one endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        channel: ChannelEndpoint,
        handler: Callable[[Message], Message],
        wrap_factory: Callable[[str, int], object] | None = None,
    ):
        self._endpoint = endpoint
        self._channel = channel
        self._handler = handler
        # For an SGX-hosted service: a factory returning a context manager
        # (typically ``enclave.ecall``) wrapping each request, so channel
        # crypto and dictionary access happen inside the enclave and the
        # ECALL transition cost is charged (paper §IV-B).
        self._wrap_factory = wrap_factory
        self.requests_served = 0

    def _process(self, record: bytes) -> bytes:
        request_id = 0
        try:
            request = decode_message(self._channel.unprotect(record))
        except Exception as exc:  # channel/protocol violation
            response: Message = ErrorMessage(code=400, detail=str(exc))
        else:
            request_id = request.request_id
            try:
                response = self._handler(request)
            except Exception as exc:
                response = ErrorMessage(code=500, detail=str(exc))
        return self._channel.protect(encode_message(with_request_id(response, request_id)))

    def pump(self) -> int:
        """Serve every pending request; returns the number served."""
        served = 0
        while self._endpoint.pending():
            source, record = self._endpoint.recv()
            if self._wrap_factory is not None:
                with self._wrap_factory("serve_request", len(record)):
                    reply = self._process(record)
            else:
                reply = self._process(record)
            self._endpoint.send(source, reply)
            served += 1
            self.requests_served += 1
        return served


class RpcClient:
    """Synchronous caller; also supports fire-and-forget sends."""

    def __init__(
        self,
        endpoint: Endpoint,
        channel: ChannelEndpoint,
        server_address: str,
        tracer=NULL_TRACER,
        clock=None,
        retry_policy: RetryPolicy | None = None,
    ):
        self._endpoint = endpoint
        self._channel = channel
        self._server_address = server_address
        self._next_request_id = 1
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.clock = clock
        self.retry_policy = retry_policy
        # Responses addressed to one-way sends that arrived while a sync
        # call was scanning the inbox; surfaced by drain_responses().
        self._stray_responses: list[Message] = []
        self._stray_ids: set[int] = set()
        # Correlation ids already answered: a later response with the same
        # id is a duplicate (wire-level or replayed) and must never reach
        # another waiter.
        self._seen_response_ids: set[int] = set()
        # Multi-slot pipelining: requests submitted but not yet waited on
        # (kept whole so wait() can retry under the same correlation id),
        # and responses that arrived while another waiter was scanning.
        self._pipeline: dict[int, Message] = {}
        self._completed: dict[int, Message] = {}
        self.retries = 0
        self.backoff_seconds_total = 0.0
        self.records_rejected = 0
        self.duplicates_dropped = 0
        self.submits = 0
        self.max_inflight = 0

    @property
    def server_address(self) -> str:
        """Network address of the server this client is bound to (the
        cluster router labels per-shard failures with it)."""
        return self._server_address

    @property
    def records_sent(self) -> int:
        """Channel records this client has sealed (the benchmark's
        records-per-call numerator)."""
        return self._channel.records_protected

    def _fresh_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        return request_id

    def _send(self, request: Message) -> None:
        self._endpoint.send(
            self._server_address, self._channel.protect(encode_message(request))
        )

    def _recv_one(self) -> Message:
        _source, record = self._endpoint.recv()
        return decode_message(self._channel.unprotect(record))

    def call(self, request: Message) -> Message:
        """Send a request and block on the *matching* response.

        Responses carrying other correlation ids (replies to earlier
        one-way sends) are buffered for :meth:`drain_responses` rather
        than returned here.  An uncorrelated ``ErrorMessage`` (the server
        could not even parse the offending request, so it could not echo
        an id) is surfaced to this caller.

        With a :class:`RetryPolicy` attached, transient failures (no
        response, and optionally server errors) are retried under the
        *same* correlation id after a backoff charged to the SimClock —
        a retried PUT whose first copy landed is deduplicated store-side.
        """
        with self.tracer.span(
            "rpc.call", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            request_id = self._fresh_request_id()
            request = with_request_id(request, request_id)
            policy = self.retry_policy
            attempts = max(1, policy.max_attempts) if policy is not None else 1
            last_error: Exception | None = None
            for attempt in range(attempts):
                if attempt:
                    self.retries += 1
                    self._charge_backoff(policy, attempt - 1, request_id)
                try:
                    self._send(request)
                    return self._await_response(request_id)
                except TransportError as exc:
                    last_error = exc
                except ProtocolError as exc:
                    if policy is None or not policy.retry_protocol_errors:
                        raise
                    last_error = exc
            assert last_error is not None
            if attempts > 1:
                raise RetryExhaustedError(
                    f"request {request_id} to {self._server_address!r} failed "
                    f"after {attempts} attempts: {last_error}"
                ) from last_error
            raise last_error

    def _charge_backoff(self, policy: RetryPolicy, retry_index: int, request_id: int) -> None:
        salt = self._server_address.encode() + request_id.to_bytes(8, "big")
        delay = policy.delay_for(retry_index, salt)
        self.backoff_seconds_total += delay
        if self.clock is not None:
            self.clock.charge_seconds(delay, "backoff")

    def _await_response(self, request_id: int) -> Message:
        """Scan the inbox for the response correlated with ``request_id``.

        Records the channel rejects (duplicated/reordered/corrupted wire
        records fail the sequence or AEAD check) are counted and skipped
        rather than aborting the call; responses whose correlation id was
        already answered are dropped so a replay can never be delivered
        to a different waiter.
        """
        while self._endpoint.pending():
            try:
                response = self._recv_one()
            except ChannelError:
                self.records_rejected += 1
                continue
            rid = response.request_id
            if rid == request_id:
                self._seen_response_ids.add(rid)
                if isinstance(response, ErrorMessage):
                    raise ProtocolError(
                        f"server error {response.code}: {response.detail}"
                    )
                return response
            if isinstance(response, ErrorMessage) and rid == 0:
                raise ProtocolError(
                    f"server error {response.code}: {response.detail}"
                )
            if (
                rid in self._seen_response_ids
                or rid in self._stray_ids
                or rid in self._completed
            ):
                self.duplicates_dropped += 1
                continue
            if rid in self._pipeline:
                # Another submitted slot's response: park it for its waiter.
                self._completed[rid] = response
                continue
            self._stray_ids.add(rid)
            self._stray_responses.append(response)
        raise TransportError("no response arrived (server reactor not attached?)")

    # -- multi-slot pipelining ----------------------------------------------
    def submit(self, request: Message) -> int:
        """Send a correlated request without waiting; returns its slot id.

        Up to N submitted requests may be outstanding on the connection
        at once (correlation ids keep their responses apart); each is
        settled by :meth:`wait`.  A send that fails outright is deferred:
        :meth:`wait` resends it under the same correlation id via the
        retry policy, preserving the idempotency guarantees of
        :meth:`call`.
        """
        with self.tracer.span(
            "rpc.submit", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            request_id = self._fresh_request_id()
            request = with_request_id(request, request_id)
            self._pipeline[request_id] = request
            self.submits += 1
            if len(self._pipeline) > self.max_inflight:
                self.max_inflight = len(self._pipeline)
            try:
                self._send(request)
            except TransportError:
                pass  # wait() retries (or surfaces) under the same id
            return request_id

    def wait(self, request_id: int) -> Message:
        """Block on the response to a :meth:`submit`-ted request.

        Applies the same retry/backoff schedule as :meth:`call`, reusing
        the original correlation id so a retried request whose first copy
        landed is deduplicated server-side.  Responses that arrived while
        other slots were being waited on are delivered from the parked
        set without touching the wire.
        """
        request = self._pipeline.get(request_id)
        if request is None:
            raise ProtocolError(
                f"request {request_id} was never submitted (or already waited on)"
            )
        with self.tracer.span(
            "rpc.wait", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            try:
                policy = self.retry_policy
                attempts = max(1, policy.max_attempts) if policy is not None else 1
                last_error: Exception | None = None
                for attempt in range(attempts):
                    if attempt:
                        self.retries += 1
                        self._charge_backoff(policy, attempt - 1, request_id)
                        try:
                            self._send(request)
                        except TransportError as exc:
                            last_error = exc
                            continue
                    try:
                        return self._take_response(request_id)
                    except TransportError as exc:
                        last_error = exc
                    except ProtocolError as exc:
                        if policy is None or not policy.retry_protocol_errors:
                            raise
                        last_error = exc
                assert last_error is not None
                if attempts > 1:
                    raise RetryExhaustedError(
                        f"request {request_id} to {self._server_address!r} failed "
                        f"after {attempts} attempts: {last_error}"
                    ) from last_error
                raise last_error
            finally:
                self._pipeline.pop(request_id, None)

    def _take_response(self, request_id: int) -> Message:
        """One settle attempt: parked response first, then the inbox."""
        response = self._completed.pop(request_id, None)
        if response is not None:
            self._seen_response_ids.add(request_id)
            if isinstance(response, ErrorMessage):
                raise ProtocolError(
                    f"server error {response.code}: {response.detail}"
                )
            return response
        return self._await_response(request_id)

    # -- grouped pipelining (one record per submitted group) -----------------
    def plan_gets(self, requests: Sequence[GetRequest]) -> list[list[int]]:
        """Partition GET indices into groups that can share one wire
        record.  One server, one connection: everything is one group."""
        return [list(range(len(requests)))] if requests else []

    def submit_gets(self, requests: Sequence[GetRequest]) -> int:
        """Submit a GET group as a single channel record without waiting.

        The group costs one AEAD seal (and one server ECALL) like
        :meth:`call_batch`, but the slot is settled later by
        :meth:`wait_gets` — so several groups, e.g. one per shard, can be
        in flight at once.
        """
        requests = list(requests)
        if len(requests) == 1:
            return self.submit(requests[0])
        return self.submit(BatchGetRequest(items=tuple(requests)))

    def wait_gets(self, handle: int, n_items: int) -> list[Message]:
        """Settle a :meth:`submit_gets` slot into per-item responses."""
        response = self.wait(handle)
        if n_items == 1:
            items = [response]
        elif isinstance(response, BatchGetResponse):
            items = list(response.items)
        else:
            raise ProtocolError(
                f"store answered batch GET with {type(response).__name__}"
            )
        if len(items) != n_items:
            raise ProtocolError(
                f"batch GET response has {len(items)} items, expected {n_items}"
            )
        return items

    def plan_puts(self, requests: Sequence[PutRequest]) -> list[list[int]]:
        """Partition PUT indices into groups that can share one wire
        record.  One server, one connection: everything is one group."""
        return [list(range(len(requests)))] if requests else []

    def submit_puts(self, requests: Sequence[PutRequest]) -> int:
        """Submit a PUT group as a single channel record without waiting
        (the PUT twin of :meth:`submit_gets`)."""
        requests = list(requests)
        if len(requests) == 1:
            return self.submit(requests[0])
        return self.submit(BatchPutRequest(items=tuple(requests)))

    def wait_puts(self, handle: int, n_items: int) -> list[Message]:
        """Settle a :meth:`submit_puts` slot into per-item verdicts."""
        response = self.wait(handle)
        if n_items == 1:
            items = [response]
        elif isinstance(response, BatchPutResponse):
            items = list(response.items)
        else:
            raise ProtocolError(
                f"store answered batch PUT with {type(response).__name__}"
            )
        if len(items) != n_items:
            raise ProtocolError(
                f"batch PUT response has {len(items)} items, expected {n_items}"
            )
        return items

    def call_batch(self, requests: Sequence[Message]) -> list[Message]:
        """Issue a uniform batch of GETs or PUTs under one channel record.

        Returns the per-item responses in request order.  The batch is
        protected as a single record, so the AEAD and sequencing costs of
        the secure channel — and the store's ECALL — are paid once for
        the whole batch instead of once per item.
        """
        requests = list(requests)
        if not requests:
            return []
        if all(isinstance(r, GetRequest) for r in requests):
            batch: Message = BatchGetRequest(items=tuple(requests))
            expected: type = BatchGetResponse
        elif all(isinstance(r, PutRequest) for r in requests):
            batch = BatchPutRequest(items=tuple(requests))
            expected = BatchPutResponse
        else:
            raise ProtocolError("call_batch needs a uniform list of GETs or PUTs")
        response = self.call(batch)
        if not isinstance(response, expected):
            raise ProtocolError(
                f"store answered batch with {type(response).__name__}"
            )
        if len(response.items) != len(requests):
            raise ProtocolError(
                f"batch response has {len(response.items)} items, "
                f"expected {len(requests)}"
            )
        return list(response.items)

    def send_oneway(self, request: Message) -> int:
        """Fire-and-forget (used by the asynchronous PUT path); returns the
        assigned correlation id so the caller can match the eventual
        response from :meth:`drain_responses`."""
        with self.tracer.span(
            "rpc.send", clock=self.clock,
            message=type(request).__name__, server=self._server_address,
        ):
            request_id = self._fresh_request_id()
            self._send(with_request_id(request, request_id))
            return request_id

    def send_oneway_batch(self, requests: Sequence[PutRequest]) -> int:
        """Fire-and-forget an entire PUT batch as one channel record."""
        with self.tracer.span(
            "rpc.send", clock=self.clock,
            message="BatchPutRequest", server=self._server_address, items=len(requests),
        ):
            request_id = self._fresh_request_id()
            self._send(with_request_id(BatchPutRequest(items=tuple(requests)), request_id))
            return request_id

    def drain_responses(self) -> list[Message]:
        """Collect any responses to one-way sends (off the critical path).

        Includes responses that a synchronous :meth:`call` encountered and
        set aside while scanning for its own reply.  Undecryptable records
        and responses whose correlation id was already delivered are
        counted and dropped, exactly as in :meth:`call` — an id is handed
        out at most once.
        """
        pending: list[Message] = self._stray_responses
        self._stray_responses = []
        self._stray_ids.clear()
        while self._endpoint.pending():
            try:
                pending.append(self._recv_one())
            except ChannelError:
                self.records_rejected += 1
        out: list[Message] = []
        for response in pending:
            rid = response.request_id
            if rid != 0 and (rid in self._seen_response_ids or rid in self._completed):
                self.duplicates_dropped += 1
                continue
            if rid in self._pipeline:
                # Belongs to a submitted slot: park it for wait(), never
                # hand a pipelined response out as a stray.
                self._completed[rid] = response
                continue
            if rid != 0:
                self._seen_response_ids.add(rid)
            out.append(response)
        return out

    def snapshot(self) -> dict:
        """Canonical ``rpc.<metric>`` counters for the metrics registry."""
        return {
            "rpc.retries": self.retries,
            "rpc.backoff_seconds_total": self.backoff_seconds_total,
            "rpc.records_rejected": self.records_rejected,
            "rpc.duplicate_responses_dropped": self.duplicates_dropped,
            "rpc.records_sent": self.records_sent,
            "rpc.pipelined_submits": self.submits,
            "rpc.pipeline_max_inflight": self.max_inflight,
        }


def attach_reactor(network, address: str, server: RpcServer) -> None:
    """Wire a server so it drains its inbox whenever a message lands."""
    network.set_reactor(address, server)
