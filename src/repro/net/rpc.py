"""Request/response layer over the loopback transport.

DedupRuntime issues a synchronous ``GET_REQUEST`` (the OCALL "needs to
wait until receiving corresponding GET_RESPONSE", §IV-B) and an
asynchronous ``PUT_REQUEST``.  The server side is a reactor: the network
invokes it as messages arrive, which models the ResultStore process
draining its socket.

All payloads crossing this layer are channel *records* — the plaintext
messages only ever exist inside the two enclaves.
"""

from __future__ import annotations

from typing import Callable

from .channel import ChannelEndpoint
from .messages import ErrorMessage, Message, decode_message, encode_message
from .transport import Endpoint
from ..errors import ProtocolError, TransportError


class RpcServer:
    """Reactor serving protected messages on one endpoint."""

    def __init__(
        self,
        endpoint: Endpoint,
        channel: ChannelEndpoint,
        handler: Callable[[Message], Message],
        wrap_factory: Callable[[str, int], object] | None = None,
    ):
        self._endpoint = endpoint
        self._channel = channel
        self._handler = handler
        # For an SGX-hosted service: a factory returning a context manager
        # (typically ``enclave.ecall``) wrapping each request, so channel
        # crypto and dictionary access happen inside the enclave and the
        # ECALL transition cost is charged (paper §IV-B).
        self._wrap_factory = wrap_factory
        self.requests_served = 0

    def _process(self, record: bytes) -> bytes:
        try:
            request = decode_message(self._channel.unprotect(record))
        except Exception as exc:  # channel/protocol violation
            response: Message = ErrorMessage(code=400, detail=str(exc))
        else:
            try:
                response = self._handler(request)
            except Exception as exc:
                response = ErrorMessage(code=500, detail=str(exc))
        return self._channel.protect(encode_message(response))

    def pump(self) -> int:
        """Serve every pending request; returns the number served."""
        served = 0
        while self._endpoint.pending():
            source, record = self._endpoint.recv()
            if self._wrap_factory is not None:
                with self._wrap_factory("serve_request", len(record)):
                    reply = self._process(record)
            else:
                reply = self._process(record)
            self._endpoint.send(source, reply)
            served += 1
            self.requests_served += 1
        return served


class RpcClient:
    """Synchronous caller; also supports fire-and-forget sends."""

    def __init__(self, endpoint: Endpoint, channel: ChannelEndpoint, server_address: str):
        self._endpoint = endpoint
        self._channel = channel
        self._server_address = server_address

    def call(self, request: Message) -> Message:
        """Send a request and block on (pop) the response."""
        self._endpoint.send(self._server_address, self._channel.protect(encode_message(request)))
        if not self._endpoint.pending():
            raise TransportError("no response arrived (server reactor not attached?)")
        _source, record = self._endpoint.recv()
        response = decode_message(self._channel.unprotect(record))
        if isinstance(response, ErrorMessage):
            raise ProtocolError(f"server error {response.code}: {response.detail}")
        return response

    def send_oneway(self, request: Message) -> None:
        """Fire-and-forget (used by the asynchronous PUT path); the caller
        must later drain the response with :meth:`drain_responses`."""
        self._endpoint.send(self._server_address, self._channel.protect(encode_message(request)))

    def drain_responses(self) -> list[Message]:
        """Collect any responses to one-way sends (off the critical path)."""
        out: list[Message] = []
        while self._endpoint.pending():
            _source, record = self._endpoint.recv()
            out.append(decode_message(self._channel.unprotect(record)))
        return out


def attach_reactor(network, address: str, server: RpcServer) -> None:
    """Wire a server so it drains its inbox whenever a message lands."""
    network.set_reactor(address, server)
