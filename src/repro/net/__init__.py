"""Network substrate: wire messages, loopback transport, secure channel.

Stands in for the sockets + ``sgx_dh`` secure-channel machinery of the
paper's prototype (DESIGN.md §2).
"""

from .channel import ChannelEndpoint, EstablishedChannel, establish
from .framing import FieldReader, FieldWriter
from .messages import (
    ErrorMessage,
    GetRequest,
    GetResponse,
    Message,
    MessageType,
    PutRequest,
    PutResponse,
    SyncRequest,
    SyncResponse,
    decode_message,
    encode_message,
)
from .rpc import RpcClient, RpcServer, attach_reactor
from .transport import Endpoint, FaultInjector, Network

__all__ = [
    "ChannelEndpoint",
    "Endpoint",
    "ErrorMessage",
    "EstablishedChannel",
    "FaultInjector",
    "FieldReader",
    "FieldWriter",
    "GetRequest",
    "GetResponse",
    "Message",
    "MessageType",
    "Network",
    "PutRequest",
    "PutResponse",
    "RpcClient",
    "RpcServer",
    "SyncRequest",
    "SyncResponse",
    "attach_reactor",
    "decode_message",
    "encode_message",
    "establish",
]
