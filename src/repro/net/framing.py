"""Binary field codec used by every wire message and parser.

SPEED requires a *uniform serialization interface* so DedupRuntime and
ResultStore stay function-agnostic (§II-C, §IV-B).  This module is that
interface's lowest layer: a small, explicit, length-prefixed binary
format (no pickle — the store is untrusted and must never be able to make
an application deserialize arbitrary objects).

Layout primitives: ``u8``, ``u32``/``u64`` big-endian, ``bool`` as one
byte, and ``bytes`` with a ``u32`` length prefix.
"""

from __future__ import annotations

from ..errors import SerializationError

_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1


class FieldWriter:
    """Appends typed fields to a growing buffer."""

    def __init__(self):
        self._chunks: list[bytes] = []

    def u8(self, value: int) -> "FieldWriter":
        if not 0 <= value <= 0xFF:
            raise SerializationError(f"u8 out of range: {value}")
        self._chunks.append(bytes([value]))
        return self

    def u32(self, value: int) -> "FieldWriter":
        if not 0 <= value <= _U32_MAX:
            raise SerializationError(f"u32 out of range: {value}")
        self._chunks.append(value.to_bytes(4, "big"))
        return self

    def u64(self, value: int) -> "FieldWriter":
        if not 0 <= value <= _U64_MAX:
            raise SerializationError(f"u64 out of range: {value}")
        self._chunks.append(value.to_bytes(8, "big"))
        return self

    def boolean(self, value: bool) -> "FieldWriter":
        self._chunks.append(b"\x01" if value else b"\x00")
        return self

    def blob(self, value: bytes) -> "FieldWriter":
        if len(value) > _U32_MAX:
            raise SerializationError("blob too large for u32 length prefix")
        self._chunks.append(len(value).to_bytes(4, "big"))
        self._chunks.append(bytes(value))
        return self

    def text(self, value: str) -> "FieldWriter":
        return self.blob(value.encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class FieldReader:
    """Consumes typed fields from a buffer; raises on truncation."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise SerializationError(
                f"truncated message: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def boolean(self) -> bool:
        flag = self._take(1)[0]
        if flag not in (0, 1):
            raise SerializationError(f"invalid boolean byte: {flag}")
        return flag == 1

    def blob(self) -> bytes:
        return self._take(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in text field") from exc

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise SerializationError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos
