"""Attested secure channel between DedupRuntime and ResultStore.

Algorithm 1/2 of the paper send the tag "to the encrypted ResultStore via
a secure channel".  On real SGX this is built with local attestation
(``sgx_dh_*``): an ephemeral Diffie-Hellman exchange whose public values
are bound into attestation reports, followed by AEAD-protected records.
This module reproduces that construction:

* :func:`establish` — mutual attested handshake between two enclaves on
  one platform.  Each side binds the hash of its DH public value into the
  ``report_data`` of a local-attestation report targeted at the peer, so
  a man-in-the-middle cannot splice its own key into the exchange.
* :class:`ChannelEndpoint` — sequenced AES-GCM records with replay and
  reordering detection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.dh import derive_session_keys, generate_keypair
from ..crypto.drbg import HmacDrbg
from ..crypto.gcm import AesGcm
from ..crypto.hashes import sha256
from ..errors import ChannelError, IntegrityError
from ..obs.tracer import NULL_TRACER
from ..sgx.cost_model import SimClock
from ..sgx.enclave import Enclave
from ..sgx.measurement import Measurement

# One 2048-bit modular exponentiation on the paper's CPU (~0.2 ms).
_DH_EXP_CYCLES = 560_000


def _pub_bytes(public: int) -> bytes:
    return public.to_bytes(256, "big")


class ChannelEndpoint:
    """One direction pair of an established channel."""

    def __init__(self, clock: SimClock, send_key: bytes, recv_key: bytes, label: int):
        self._clock = clock
        self._send = AesGcm(send_key)
        self._recv = AesGcm(recv_key)
        self._label = label
        self._send_seq = 0
        self._recv_seq = 0
        # Observability: a Session points this at its shared tracer so
        # every seal/open shows up as a channel.encrypt/decrypt span.
        self.tracer = NULL_TRACER
        self.trace_clock = clock

    @property
    def records_protected(self) -> int:
        """Number of records sealed on this endpoint so far."""
        return self._send_seq

    def _iv(self, label: int, seq: int) -> bytes:
        return bytes([label, 0, 0, 0]) + seq.to_bytes(8, "big")

    def protect(self, payload: bytes) -> bytes:
        """Seal one record; output is ``seq(8) || tag(16) || ciphertext``."""
        with self.tracer.span("channel.encrypt", clock=self.trace_clock, bytes=len(payload)):
            seq = self._send_seq
            self._send_seq += 1
            self._clock.charge_aead_encrypt(len(payload))
            ct, tag = self._send.encrypt(
                self._iv(self._label, seq), payload,
                aad=b"speed/record" + seq.to_bytes(8, "big"),
            )
            return seq.to_bytes(8, "big") + tag + ct

    def unprotect(self, record: bytes) -> bytes:
        """Open one record, enforcing monotonic sequencing.

        Sequence numbers must strictly increase: replays and stale
        reordered records are rejected, while gaps are tolerated (the
        underlying transport is reliable in-order delivery, but a peer
        may legitimately skip numbers it spent on messages that were
        lost before reaching us).
        """
        with self.tracer.span("channel.decrypt", clock=self.trace_clock, bytes=len(record)):
            if len(record) < 24:
                raise ChannelError("record too short")
            seq = int.from_bytes(record[:8], "big")
            if seq < self._recv_seq:
                raise ChannelError(
                    f"record replayed or stale: got {seq}, want >= {self._recv_seq}"
                )
            tag, ct = record[8:24], record[24:]
            self._clock.charge_aead_decrypt(len(ct))
            try:
                payload = self._recv.decrypt(
                    self._iv(self._label ^ 1, seq), ct, tag,
                    aad=b"speed/record" + seq.to_bytes(8, "big"),
                )
            except IntegrityError as exc:
                raise ChannelError("record authentication failed") from exc
            self._recv_seq = seq + 1
            return payload


class NullChannelEndpoint(ChannelEndpoint):
    """Pass-through 'channel' with no protection and no cost.

    Used only by the ``use_sgx=False`` ResultStore variant of the Fig. 6
    comparison, where the paper runs the same store operations entirely
    outside enclaves (no protected channel exists in that regime).
    """

    def __init__(self):  # noqa: D107 - intentionally skips parent init
        self._send_seq = 0
        self._recv_seq = 0
        self.tracer = NULL_TRACER
        self.trace_clock = None

    def protect(self, payload: bytes) -> bytes:
        seq = self._send_seq
        self._send_seq += 1
        return seq.to_bytes(8, "big") + payload

    def unprotect(self, record: bytes) -> bytes:
        if len(record) < 8:
            raise ChannelError("record too short")
        seq = int.from_bytes(record[:8], "big")
        if seq < self._recv_seq:
            raise ChannelError(f"record replayed or stale: got {seq}, want >= {self._recv_seq}")
        self._recv_seq = seq + 1
        return record[8:]


@dataclass(frozen=True)
class EstablishedChannel:
    """Both endpoints plus the mutually attested peer identities."""

    client: ChannelEndpoint
    server: ChannelEndpoint
    client_measurement: Measurement
    server_measurement: Measurement


def establish_remote(
    service, client_enclave: Enclave, server_enclave: Enclave
) -> EstablishedChannel:
    """Run the attested DH handshake between enclaves on *different*
    machines (remote attestation via a shared quoting service).

    The construction mirrors :func:`establish` but binds each DH public
    value into a platform-signed quote instead of a local-attestation
    report, so neither side needs to share hardware with its peer.  Each
    returned endpoint charges its *own* platform's clock — the two sides
    live on different simulated machines.
    """
    c_clock = client_enclave.platform.clock
    s_clock = server_enclave.platform.clock

    with client_enclave.ecall("rdh_init", out_bytes=256 + 96):
        c_drbg = HmacDrbg(client_enclave.read_rand(32), b"channel/remote-client")
        c_kp = generate_keypair(c_drbg)
        c_clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        c_quote = client_enclave.create_quote(sha256(_pub_bytes(c_kp.public)))

    with server_enclave.ecall("rdh_respond", in_bytes=256 + 96, out_bytes=256 + 96):
        client_meas = service.verify_quote(c_quote)
        if c_quote.report_data[:32] != sha256(_pub_bytes(c_kp.public)):
            raise ChannelError("client DH public value not bound to its quote")
        s_drbg = HmacDrbg(server_enclave.read_rand(32), b"channel/remote-server")
        s_kp = generate_keypair(s_drbg)
        s_clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        s_quote = server_enclave.create_quote(sha256(_pub_bytes(s_kp.public)))
        transcript = _pub_bytes(c_kp.public) + _pub_bytes(s_kp.public)
        s_clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        s_c2s, s_s2c = derive_session_keys(s_kp, c_kp.public, transcript)

    with client_enclave.ecall("rdh_finish", in_bytes=256 + 96):
        server_meas = service.verify_quote(s_quote)
        if s_quote.report_data[:32] != sha256(_pub_bytes(s_kp.public)):
            raise ChannelError("server DH public value not bound to its quote")
        transcript = _pub_bytes(c_kp.public) + _pub_bytes(s_kp.public)
        c_clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        c_c2s, c_s2c = derive_session_keys(c_kp, s_kp.public, transcript)

    if (c_c2s, c_s2c) != (s_c2s, s_s2c):
        raise ChannelError("handshake key derivation mismatch")

    return EstablishedChannel(
        client=ChannelEndpoint(c_clock, send_key=c_c2s, recv_key=c_s2c, label=0),
        server=ChannelEndpoint(s_clock, send_key=s_s2c, recv_key=s_c2s, label=1),
        client_measurement=client_meas,
        server_measurement=server_meas,
    )


def establish(client_enclave: Enclave, server_enclave: Enclave) -> EstablishedChannel:
    """Run the attested DH handshake between two co-located enclaves.

    Raises :class:`~repro.errors.AttestationError` if either report fails
    verification and :class:`ChannelError` if a public value does not
    match the one bound into its report.
    """
    if client_enclave.platform is not server_enclave.platform:
        raise ChannelError(
            "local attestation requires both enclaves on one platform; "
            "use remote attestation (sgx.attestation.AttestationService) across machines"
        )
    clock = client_enclave.platform.clock

    # Client: ephemeral key + report binding its public value.
    with client_enclave.ecall("dh_init", out_bytes=256 + 96):
        c_drbg = HmacDrbg(client_enclave.read_rand(32), b"channel/client")
        c_kp = generate_keypair(c_drbg)
        clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        c_report = client_enclave.create_report(
            server_enclave.measurement, sha256(_pub_bytes(c_kp.public))
        )

    # Server: verify, bind its own value, derive keys.
    with server_enclave.ecall("dh_respond", in_bytes=256 + 96, out_bytes=256 + 96):
        client_meas = server_enclave.verify_peer_report(c_report)
        if c_report.report_data[:32] != sha256(_pub_bytes(c_kp.public)):
            raise ChannelError("client DH public value not bound to its report")
        s_drbg = HmacDrbg(server_enclave.read_rand(32), b"channel/server")
        s_kp = generate_keypair(s_drbg)
        clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        s_report = server_enclave.create_report(
            client_enclave.measurement, sha256(_pub_bytes(s_kp.public))
        )
        transcript = _pub_bytes(c_kp.public) + _pub_bytes(s_kp.public)
        clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        s_c2s, s_s2c = derive_session_keys(s_kp, c_kp.public, transcript)

    # Client: verify the server's report and derive the same keys.
    with client_enclave.ecall("dh_finish", in_bytes=256 + 96):
        server_meas = client_enclave.verify_peer_report(s_report)
        if s_report.report_data[:32] != sha256(_pub_bytes(s_kp.public)):
            raise ChannelError("server DH public value not bound to its report")
        transcript = _pub_bytes(c_kp.public) + _pub_bytes(s_kp.public)
        clock.charge_cycles(_DH_EXP_CYCLES, "crypto")
        c_c2s, c_s2c = derive_session_keys(c_kp, s_kp.public, transcript)

    if (c_c2s, c_s2c) != (s_c2s, s_s2c):
        raise ChannelError("handshake key derivation mismatch")

    return EstablishedChannel(
        client=ChannelEndpoint(clock, send_key=c_c2s, recv_key=c_s2c, label=0),
        server=ChannelEndpoint(clock, send_key=s_s2c, recv_key=s_c2s, label=1),
        client_measurement=client_meas,
        server_measurement=server_meas,
    )
