"""ResultStore persistence across restarts, via SGX sealing.

The paper's ResultStore keeps its metadata dictionary in enclave memory;
a machine reboot or service upgrade would discard every cached result.
Real deployments persist state with the sealing facility the SDK
provides (§II-D "hardware enclaves"), which is exactly what this module
does:

* :func:`snapshot_store` — inside the store enclave, serialize the
  dictionary (entries + their ciphertext blobs) and seal it under the
  **MRSIGNER** policy, so an upgraded store build from the same vendor
  can still restore it.
* :func:`restore_store` — unseal inside the (possibly new) store enclave
  and repopulate the dictionary and blob arena.

Snapshot format v2 also carries each entry's hit count and
insertion/recency sequence numbers, so a restored store's eviction
policies (LRU recency, LFU frequency, FIFO order) keep picking the same
victims they would have before the restart; restored entries likewise
re-credit their contributors' quota usage.  v1 images (no sequence
numbers) still load, falling back to insertion-order recency.

The sealed image is a single opaque blob the untrusted host may keep on
disk; tampering is detected by the seal's AEAD, and a blob from a
foreign signer fails to unseal at all.  The :mod:`repro.durable`
subsystem builds its checkpoints on this same serialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metadata import MetadataEntry, blob_digest
from .resultstore import ResultStore
from ..errors import StoreError
from ..net.framing import FieldReader, FieldWriter
from ..sgx.sealing import SealedBlob, SealPolicy

_FORMAT_VERSION = 2


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of a restore."""

    entries_restored: int
    entries_skipped: int  # duplicates already present


@dataclass(frozen=True)
class _SnapshotEntry:
    """One deserialized snapshot record (format-version agnostic)."""

    tag: bytes
    challenge: bytes
    wrapped_key: bytes
    sealed_result: bytes
    app_id: str
    hits: int
    insert_seq: int        # 0 in v1 images (unknown)
    last_access_seq: int   # 0 in v1 images (unknown)


def serialize_store_payload(store: ResultStore) -> bytes:
    """The snapshot plaintext (entries, blobs, and policy state) —
    sealed by :func:`snapshot_store` and by the durable checkpointer."""
    writer = FieldWriter()
    writer.u32(_FORMAT_VERSION)
    entries = store._dict.entries()
    writer.u32(len(entries))
    for entry in entries:
        sealed_result = store.blobstore.get(entry.blob_ref)
        writer.blob(entry.tag)
        writer.blob(entry.challenge)
        writer.blob(entry.wrapped_key)
        writer.blob(sealed_result)
        writer.text(entry.app_id)
        writer.u64(entry.hits)
        writer.u64(entry.insert_seq)
        writer.u64(entry.last_access_seq)
    return writer.getvalue()


def _deserialize_entries(data: bytes):
    reader = FieldReader(data)
    version = reader.u32()
    if version not in (1, _FORMAT_VERSION):
        raise StoreError(f"unsupported snapshot version {version}")
    count = reader.u32()
    for _ in range(count):
        tag = reader.blob()
        challenge = reader.blob()
        wrapped_key = reader.blob()
        sealed_result = reader.blob()
        app_id = reader.text()
        hits = reader.u64()
        insert_seq = reader.u64() if version >= 2 else 0
        last_access_seq = reader.u64() if version >= 2 else 0
        yield _SnapshotEntry(
            tag=tag,
            challenge=challenge,
            wrapped_key=wrapped_key,
            sealed_result=sealed_result,
            app_id=app_id,
            hits=hits,
            insert_seq=insert_seq,
            last_access_seq=last_access_seq,
        )


def apply_snapshot_entry(store: ResultStore, item: _SnapshotEntry) -> bool:
    """Re-insert one snapshot entry (duplicates skipped); preserves
    policy state when the image carries it and re-credits quota usage.
    Returns True iff the entry was inserted."""
    if store.contains(item.tag):
        return False
    ref = store.blobstore.put(item.sealed_result)
    entry = MetadataEntry(
        tag=item.tag,
        challenge=item.challenge,
        wrapped_key=item.wrapped_key,
        blob_ref=ref,
        blob_digest=blob_digest(item.sealed_result),
        size=len(item.sealed_result),
        app_id=item.app_id,
        hits=item.hits,
        insert_seq=item.insert_seq,
        last_access_seq=item.last_access_seq,
    )
    restore_entry = getattr(store._dict, "restore_entry", None)
    if restore_entry is not None and item.insert_seq:
        restore_entry(entry, touch=store._touch)
    else:
        store._dict.put(entry, touch=store._touch)
    if store._quota is not None:
        store._quota.restore(item.app_id, entry.size)
    if store.durable is not None and not store._durable_suspended:
        # A durable store must also re-log what the snapshot put back in
        # memory, or a later power failure would silently lose it.
        store.durable.append_put(entry, item.sealed_result)
    return True


def apply_snapshot_payload(store: ResultStore, payload: bytes) -> int:
    """Repopulate ``store`` from a snapshot plaintext; returns how many
    entries were inserted (the durable checkpoint-restore path)."""
    restored = 0
    for item in _deserialize_entries(payload):
        if apply_snapshot_entry(store, item):
            restored += 1
    return restored


def snapshot_store(store: ResultStore) -> SealedBlob:
    """Seal the store's full state for persistence (MRSIGNER policy)."""
    if store.enclave is None:
        raise StoreError("persistence requires an SGX-mode store")
    with store.enclave.ecall("snapshot"):
        payload = serialize_store_payload(store)
        return store.enclave.seal(payload, SealPolicy.MRSIGNER)


def restore_store(store: ResultStore, blob: SealedBlob) -> RestoreReport:
    """Unseal a snapshot into a (typically fresh) store.

    Raises :class:`~repro.errors.SealingError` if the snapshot was sealed
    by a different vendor's enclave or was modified at rest.
    """
    if store.enclave is None:
        raise StoreError("persistence requires an SGX-mode store")
    restored = 0
    skipped = 0
    with store.enclave.ecall("restore", in_bytes=len(blob.payload)):
        payload = store.enclave.unseal(blob)
        for item in _deserialize_entries(payload):
            if apply_snapshot_entry(store, item):
                restored += 1
            else:
                skipped += 1
        if store.durable is not None:
            store.durable.commit()
    store.stats.restores += 1
    store.stats.restored_entries += restored
    return RestoreReport(entries_restored=restored, entries_skipped=skipped)
