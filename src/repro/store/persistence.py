"""ResultStore persistence across restarts, via SGX sealing.

The paper's ResultStore keeps its metadata dictionary in enclave memory;
a machine reboot or service upgrade would discard every cached result.
Real deployments persist state with the sealing facility the SDK
provides (§II-D "hardware enclaves"), which is exactly what this module
does:

* :func:`snapshot_store` — inside the store enclave, serialize the
  dictionary (entries + their ciphertext blobs) and seal it under the
  **MRSIGNER** policy, so an upgraded store build from the same vendor
  can still restore it.
* :func:`restore_store` — unseal inside the (possibly new) store enclave
  and repopulate the dictionary and blob arena.

The sealed image is a single opaque blob the untrusted host may keep on
disk; tampering is detected by the seal's AEAD, and a blob from a
foreign signer fails to unseal at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metadata import MetadataEntry, blob_digest
from .resultstore import ResultStore
from ..errors import StoreError
from ..net.framing import FieldReader, FieldWriter
from ..sgx.sealing import SealedBlob, SealPolicy

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of a restore."""

    entries_restored: int
    entries_skipped: int  # duplicates already present


def _serialize_entries(store: ResultStore) -> bytes:
    writer = FieldWriter()
    writer.u32(_FORMAT_VERSION)
    entries = store._dict.entries()
    writer.u32(len(entries))
    for entry in entries:
        sealed_result = store.blobstore.get(entry.blob_ref)
        writer.blob(entry.tag)
        writer.blob(entry.challenge)
        writer.blob(entry.wrapped_key)
        writer.blob(sealed_result)
        writer.text(entry.app_id)
        writer.u64(entry.hits)
    return writer.getvalue()


def _deserialize_entries(data: bytes):
    reader = FieldReader(data)
    version = reader.u32()
    if version != _FORMAT_VERSION:
        raise StoreError(f"unsupported snapshot version {version}")
    count = reader.u32()
    for _ in range(count):
        yield (
            reader.blob(),   # tag
            reader.blob(),   # challenge
            reader.blob(),   # wrapped key
            reader.blob(),   # sealed result
            reader.text(),   # app id
            reader.u64(),    # hits
        )


def snapshot_store(store: ResultStore) -> SealedBlob:
    """Seal the store's full state for persistence (MRSIGNER policy)."""
    if store.enclave is None:
        raise StoreError("persistence requires an SGX-mode store")
    with store.enclave.ecall("snapshot"):
        payload = _serialize_entries(store)
        return store.enclave.seal(payload, SealPolicy.MRSIGNER)


def restore_store(store: ResultStore, blob: SealedBlob) -> RestoreReport:
    """Unseal a snapshot into a (typically fresh) store.

    Raises :class:`~repro.errors.SealingError` if the snapshot was sealed
    by a different vendor's enclave or was modified at rest.
    """
    if store.enclave is None:
        raise StoreError("persistence requires an SGX-mode store")
    restored = 0
    skipped = 0
    with store.enclave.ecall("restore", in_bytes=len(blob.payload)):
        payload = store.enclave.unseal(blob)
        for tag, challenge, wrapped_key, sealed_result, app_id, hits in (
            _deserialize_entries(payload)
        ):
            if store.contains(tag):
                skipped += 1
                continue
            ref = store.blobstore.put(sealed_result)
            entry = MetadataEntry(
                tag=tag,
                challenge=challenge,
                wrapped_key=wrapped_key,
                blob_ref=ref,
                blob_digest=blob_digest(sealed_result),
                size=len(sealed_result),
                app_id=app_id,
                hits=hits,
            )
            store._dict.put(entry, touch=store._touch)
            restored += 1
    return RestoreReport(entries_restored=restored, entries_skipped=skipped)
