"""Cache-eviction policies for the ResultStore.

The paper keeps the store "light-weight" (§III-D); when a capacity bound
is configured, a policy chooses which reusable result to drop.  LRU is
the default; LFU and FIFO exist for the eviction ablation
(``benchmarks/bench_ablation_quota.py``).
"""

from __future__ import annotations

import abc

from .metadata import MetadataEntry
from ..errors import StoreError


class EvictionPolicy(abc.ABC):
    """Strategy interface: pick a victim among current entries."""

    name: str = "abstract"

    @abc.abstractmethod
    def select_victim(self, entries: list[MetadataEntry]) -> MetadataEntry:
        """Return the entry to evict; ``entries`` is non-empty."""

    def _require(self, entries: list[MetadataEntry]) -> None:
        if not entries:
            raise StoreError("eviction requested from an empty store")


class LruPolicy(EvictionPolicy):
    """Evict the least-recently-used entry."""

    name = "lru"

    def select_victim(self, entries: list[MetadataEntry]) -> MetadataEntry:
        self._require(entries)
        return min(entries, key=lambda e: e.last_access_seq)


class LfuPolicy(EvictionPolicy):
    """Evict the least-frequently-hit entry (ties: older first)."""

    name = "lfu"

    def select_victim(self, entries: list[MetadataEntry]) -> MetadataEntry:
        self._require(entries)
        return min(entries, key=lambda e: (e.hits, e.insert_seq))


class FifoPolicy(EvictionPolicy):
    """Evict the oldest entry regardless of use."""

    name = "fifo"

    def select_victim(self, entries: list[MetadataEntry]) -> MetadataEntry:
        self._require(entries)
        return min(entries, key=lambda e: e.insert_seq)


POLICIES: dict[str, type[EvictionPolicy]] = {
    cls.name: cls for cls in (LruPolicy, LfuPolicy, FifoPolicy)
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by name ('lru', 'lfu', 'fifo')."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise StoreError(f"unknown eviction policy {name!r}") from None
