"""Controlled deduplication: store-side access control (paper §III-D).

"Such a 'keyless' encryption scheme does not naturally provide flexible
access control mechanism.  To ensure that only authorized applications
can access ResultStore, it requires an additional authorization
mechanism."

This module provides that mechanism.  Because every SGX-mode connection
is established over local attestation, the store learns the connecting
application's *measurement* before serving a single request; an
:class:`AuthorizationPolicy` decides, from that measurement, whether the
connection is admitted.  Policies can pin exact enclave builds
(MRENCLAVE), whole vendors (MRSIGNER), or both, and can be flipped
between allowlist and open modes at deployment time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StoreError
from ..sgx.measurement import Measurement


class AuthorizationError(StoreError):
    """A connection was refused by the store's authorization policy."""


@dataclass
class AuthorizationPolicy:
    """Measurement-based admission control for ResultStore connections.

    ``open_admission=True`` (the default when no policy is configured)
    admits everyone — the paper's base design.  Otherwise a connection is
    admitted iff its MRENCLAVE or its MRSIGNER is enrolled.
    """

    open_admission: bool = False
    allowed_mrenclaves: set[bytes] = field(default_factory=set)
    allowed_mrsigners: set[bytes] = field(default_factory=set)
    denials: int = field(default=0, init=False)

    # -- enrolment --------------------------------------------------------
    def allow_enclave(self, measurement: Measurement) -> "AuthorizationPolicy":
        """Pin one exact enclave build."""
        self.allowed_mrenclaves.add(measurement.mrenclave)
        return self

    def allow_signer(self, mrsigner: bytes) -> "AuthorizationPolicy":
        """Admit every enclave from one signer (vendor-level trust)."""
        self.allowed_mrsigners.add(mrsigner)
        return self

    def revoke_enclave(self, measurement: Measurement) -> None:
        self.allowed_mrenclaves.discard(measurement.mrenclave)

    def revoke_signer(self, mrsigner: bytes) -> None:
        self.allowed_mrsigners.discard(mrsigner)

    # -- admission ---------------------------------------------------------
    def admits(self, measurement: Measurement) -> bool:
        if self.open_admission:
            return True
        return (
            measurement.mrenclave in self.allowed_mrenclaves
            or measurement.mrsigner in self.allowed_mrsigners
        )

    def check(self, measurement: Measurement) -> None:
        """Raise :class:`AuthorizationError` for unauthorized peers."""
        if not self.admits(measurement):
            self.denials += 1
            raise AuthorizationError(
                "connection refused: enclave "
                f"{measurement.mrenclave.hex()[:16]}… is not authorized"
            )
