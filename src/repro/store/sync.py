"""Master-ResultStore replication across machines (paper §IV-B remark).

"We can also deploy a master ResultStore on a dedicated server, which
periodically synchronizes the popular (i.e., frequently appeared) results
from different machines. ... this will not cause redundancy at the master
ResultStore [because] the tags of underlying computations are
deterministic and only one version of result ciphertext needs to be
stored."

The replication link crosses machines, so it authenticates with *remote*
attestation: each store enclave produces a quote over its sync DH public
value; the shared :class:`~repro.sgx.attestation.AttestationService`
verifies both sides before session keys are derived.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resultstore import ResultStore
from ..errors import AttestationError, StoreError
from ..net.channel import ChannelEndpoint, establish_remote
from ..net.messages import SyncRequest
from ..sgx.attestation import AttestationService


@dataclass(frozen=True)
class SyncReport:
    """Outcome of one replication round."""

    offered: int
    transferred: int
    duplicates: int


def attested_store_channel(
    service: AttestationService,
    local: ResultStore,
    remote: ResultStore,
) -> tuple[ChannelEndpoint, ChannelEndpoint]:
    """Mutually attested DH between two store enclaves on different
    machines; returns (local endpoint, remote endpoint).

    Both replication (:func:`replicate_popular`) and the cluster layer's
    tag-range migration ride on this channel.  Beyond the generic remote
    handshake, each side requires the peer to carry the *ResultStore
    signer* identity, so an arbitrary attested enclave cannot pose as a
    store and siphon replicated ciphertexts.
    """
    if local.enclave is None or remote.enclave is None:
        raise StoreError("sync requires SGX-mode stores on both sides")
    established = establish_remote(service, local.enclave, remote.enclave)
    if established.client_measurement.mrsigner != remote.enclave.measurement.mrsigner:
        raise AttestationError("sync peer is not a ResultStore enclave")
    if established.server_measurement.mrsigner != local.enclave.measurement.mrsigner:
        raise AttestationError("sync peer is not a ResultStore enclave")
    return established.client, established.server


def replicate_popular(
    service: AttestationService,
    source: ResultStore,
    master: ResultStore,
    min_hits: int = 1,
) -> SyncReport:
    """Push results with ≥ ``min_hits`` hits from ``source`` to ``master``.

    The channel handshake authenticates both enclaves; the entries travel
    AEAD-protected; the master drops tags it already holds, so repeated
    rounds and multiple sources never create duplicate ciphertexts.
    """
    local_ep, master_ep = attested_store_channel(service, source, master)

    with source.enclave.ecall("sync_collect"):
        batch = source._handle_sync(  # same code path as the wire handler
            SyncRequest(known_tags=(), min_hits=min_hits)
        )
        payload = local_ep.protect(_encode_entries(batch.entries))

    source.platform.clock.charge_network(len(payload))

    transferred = 0
    duplicates = 0
    with master.enclave.ecall("sync_ingest", in_bytes=len(payload)):
        entries = _decode_entries(master_ep.unprotect(payload))
        for tag, challenge, wrapped_key, sealed in entries:
            if master.ingest_entry(tag, challenge, wrapped_key, sealed):
                transferred += 1
            else:
                duplicates += 1
    return SyncReport(offered=len(batch.entries), transferred=transferred, duplicates=duplicates)


def _encode_entries(entries) -> bytes:
    from ..net.framing import FieldWriter

    w = FieldWriter()
    w.u32(len(entries))
    for tag, challenge, wrapped_key, sealed in entries:
        w.blob(tag).blob(challenge).blob(wrapped_key).blob(sealed)
    return w.getvalue()


def _decode_entries(data: bytes):
    from ..net.framing import FieldReader

    r = FieldReader(data)
    count = r.u32()
    entries = [(r.blob(), r.blob(), r.blob(), r.blob()) for _ in range(count)]
    r.expect_end()
    return entries
