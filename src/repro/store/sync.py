"""Master-ResultStore replication across machines (paper §IV-B remark).

"We can also deploy a master ResultStore on a dedicated server, which
periodically synchronizes the popular (i.e., frequently appeared) results
from different machines. ... this will not cause redundancy at the master
ResultStore [because] the tags of underlying computations are
deterministic and only one version of result ciphertext needs to be
stored."

The replication link crosses machines, so it authenticates with *remote*
attestation: each store enclave produces a quote over its sync DH public
value; the shared :class:`~repro.sgx.attestation.AttestationService`
verifies both sides before session keys are derived.
"""

from __future__ import annotations

from dataclasses import dataclass

from .resultstore import ResultStore
from ..crypto.dh import derive_session_keys, generate_keypair
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import sha256
from ..errors import AttestationError, StoreError
from ..net.channel import ChannelEndpoint
from ..net.messages import SyncRequest
from ..sgx.attestation import AttestationService


@dataclass(frozen=True)
class SyncReport:
    """Outcome of one replication round."""

    offered: int
    transferred: int
    duplicates: int


def _attested_sync_channel(
    service: AttestationService,
    local: ResultStore,
    master: ResultStore,
) -> tuple[ChannelEndpoint, ChannelEndpoint]:
    """Mutually attested DH between two store enclaves on different
    machines; returns (local endpoint, master endpoint)."""
    if local.enclave is None or master.enclave is None:
        raise StoreError("sync requires SGX-mode stores on both sides")

    with local.enclave.ecall("sync_dh_init"):
        l_kp = generate_keypair(HmacDrbg(local.enclave.read_rand(32), b"sync/local"))
        l_quote = local.enclave.create_quote(sha256(l_kp.public.to_bytes(256, "big")))

    with master.enclave.ecall("sync_dh_respond"):
        l_meas = service.verify_quote(l_quote)
        if l_meas.mrsigner != master.enclave.measurement.mrsigner:
            raise AttestationError("sync peer is not a ResultStore enclave")
        if l_quote.report_data[:32] != sha256(l_kp.public.to_bytes(256, "big")):
            raise AttestationError("sync DH value not bound to quote")
        m_kp = generate_keypair(HmacDrbg(master.enclave.read_rand(32), b"sync/master"))
        m_quote = master.enclave.create_quote(sha256(m_kp.public.to_bytes(256, "big")))
        transcript = l_kp.public.to_bytes(256, "big") + m_kp.public.to_bytes(256, "big")
        m_keys = derive_session_keys(m_kp, l_kp.public, transcript)

    with local.enclave.ecall("sync_dh_finish"):
        m_meas = service.verify_quote(m_quote)
        if m_meas.mrsigner != local.enclave.measurement.mrsigner:
            raise AttestationError("sync peer is not a ResultStore enclave")
        if m_quote.report_data[:32] != sha256(m_kp.public.to_bytes(256, "big")):
            raise AttestationError("sync DH value not bound to quote")
        transcript = l_kp.public.to_bytes(256, "big") + m_kp.public.to_bytes(256, "big")
        l_keys = derive_session_keys(l_kp, m_kp.public, transcript)

    local_ep = ChannelEndpoint(local.platform.clock, send_key=l_keys[0], recv_key=l_keys[1], label=0)
    master_ep = ChannelEndpoint(master.platform.clock, send_key=m_keys[1], recv_key=m_keys[0], label=1)
    return local_ep, master_ep


def replicate_popular(
    service: AttestationService,
    source: ResultStore,
    master: ResultStore,
    min_hits: int = 1,
) -> SyncReport:
    """Push results with ≥ ``min_hits`` hits from ``source`` to ``master``.

    The channel handshake authenticates both enclaves; the entries travel
    AEAD-protected; the master drops tags it already holds, so repeated
    rounds and multiple sources never create duplicate ciphertexts.
    """
    local_ep, master_ep = _attested_sync_channel(service, source, master)

    with source.enclave.ecall("sync_collect"):
        batch = source._handle_sync(  # same code path as the wire handler
            SyncRequest(known_tags=(), min_hits=min_hits)
        )
        payload = local_ep.protect(_encode_entries(batch.entries))

    source.platform.clock.charge_network(len(payload))

    transferred = 0
    duplicates = 0
    with master.enclave.ecall("sync_ingest", in_bytes=len(payload)):
        entries = _decode_entries(master_ep.unprotect(payload))
        for tag, challenge, wrapped_key, sealed in entries:
            if master.ingest_entry(tag, challenge, wrapped_key, sealed):
                transferred += 1
            else:
                duplicates += 1
    return SyncReport(offered=len(batch.entries), transferred=transferred, duplicates=duplicates)


def _encode_entries(entries) -> bytes:
    from ..net.framing import FieldWriter

    w = FieldWriter()
    w.u32(len(entries))
    for tag, challenge, wrapped_key, sealed in entries:
        w.blob(tag).blob(challenge).blob(wrapped_key).blob(sealed)
    return w.getvalue()


def _decode_entries(data: bytes):
    from ..net.framing import FieldReader

    r = FieldReader(data)
    count = r.u32()
    entries = [(r.blob(), r.blob(), r.blob(), r.blob()) for _ in range(count)]
    r.expect_end()
    return entries
