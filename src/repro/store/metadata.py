"""The enclave-protected metadata dictionary ``D``.

Per §IV-B: "The main data structure used here is an enclave-protected
dictionary storing previous computation results keyed by the tag t.  To
maximize the utility of limited enclave memory, the dictionary entry is
designed to be small: it maintains some metadata (e.g., challenge message
r and authentication MAC), and a pointer to the real result ciphertexts
that are kept outside the enclave."

Entries occupy fixed-size slots so the EPC model can charge page touches
for dictionary accesses; the result ciphertexts themselves never enter
the dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashes import tagged_hash
from ..errors import StoreError

# challenge r (32) + wrapped key (16) + blob digest (32) + pointer,
# counters and bookkeeping — one cache-friendly 128-byte slot.
ENTRY_SLOT_BYTES = 128


@dataclass
class MetadataEntry:
    """One dictionary slot: everything but the ciphertext itself."""

    tag: bytes
    challenge: bytes       # r   — kept only inside the enclave
    wrapped_key: bytes     # [k] — k ⊕ Hash(func, m, r)
    blob_ref: int          # pointer into the untrusted blob store
    blob_digest: bytes     # binds the pointer to the exact ciphertext bytes
    size: int              # ciphertext size (for quotas / eviction)
    app_id: str            # contributor (for quota accounting)
    hits: int = 0
    insert_seq: int = 0
    last_access_seq: int = 0
    slot: int = field(default=-1)


def blob_digest(sealed_result: bytes) -> bytes:
    """Digest pinning a blob's exact content into the in-enclave entry.

    The blob is AEAD ciphertext already, but its GCM tag can only be
    checked by an application holding ``k``; this digest lets the *store
    enclave* detect substitution of the untrusted bytes on every GET.
    """
    return tagged_hash(b"store/blob-digest", sealed_result)


class MetadataDict:
    """Slot-allocating dictionary keyed by tag.

    ``touch`` integration: callers pass an accessor callback (usually
    ``enclave.touch``) so every lookup/update charges EPC traffic for the
    slot it lands on.
    """

    def __init__(self):
        self._entries: dict[bytes, MetadataEntry] = {}
        self._free_slots: list[int] = []
        self._next_slot = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, tag: bytes) -> bool:
        return tag in self._entries

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def slot_extent_bytes(self) -> int:
        """Total enclave heap span of the slot array (for EPC modelling)."""
        return self._next_slot * ENTRY_SLOT_BYTES

    def peek(self, tag: bytes) -> MetadataEntry | None:
        """Non-mutating lookup (introspection/tests; no hit accounting)."""
        return self._entries.get(tag)

    def get(self, tag: bytes, touch=None) -> MetadataEntry | None:
        entry = self._entries.get(tag)
        if entry is None:
            return None
        if touch is not None:
            touch("store/metadata", entry.slot * ENTRY_SLOT_BYTES, ENTRY_SLOT_BYTES)
        entry.hits += 1
        entry.last_access_seq = self._tick()
        return entry

    def put(self, entry: MetadataEntry, touch=None) -> None:
        if entry.tag in self._entries:
            raise StoreError("duplicate tag insert; use replace semantics explicitly")
        if self._free_slots:
            entry.slot = self._free_slots.pop()
        else:
            entry.slot = self._next_slot
            self._next_slot += 1
        entry.insert_seq = entry.last_access_seq = self._tick()
        if touch is not None:
            touch("store/metadata", entry.slot * ENTRY_SLOT_BYTES, ENTRY_SLOT_BYTES)
        self._entries[entry.tag] = entry

    def restore_entry(self, entry: MetadataEntry, touch=None) -> None:
        """Insert a restored entry *preserving* its hit count and
        insertion/recency sequence numbers (snapshot restore, WAL
        recovery), so eviction policies keep picking the same victims
        after a restart.  The internal sequence counter advances past the
        restored values, keeping future ticks monotonic."""
        if entry.tag in self._entries:
            raise StoreError("duplicate tag insert; use replace semantics explicitly")
        if self._free_slots:
            entry.slot = self._free_slots.pop()
        else:
            entry.slot = self._next_slot
            self._next_slot += 1
        self._seq = max(self._seq, entry.insert_seq, entry.last_access_seq)
        if touch is not None:
            touch("store/metadata", entry.slot * ENTRY_SLOT_BYTES, ENTRY_SLOT_BYTES)
        self._entries[entry.tag] = entry

    def touch_restore(self, tag: bytes, hits: int, touch=None) -> bool:
        """Re-apply a logged GET-recency mark (WAL replay): the entry's
        hit counter jumps to the logged value and its recency advances in
        log order, so LRU/LFU victims match the pre-crash access pattern.
        Returns False if the tag is unknown (evicted later in the log)."""
        entry = self._entries.get(tag)
        if entry is None:
            return False
        if touch is not None:
            touch("store/metadata", entry.slot * ENTRY_SLOT_BYTES, ENTRY_SLOT_BYTES)
        entry.hits = max(entry.hits, hits)
        entry.last_access_seq = self._tick()
        return True

    def remove(self, tag: bytes) -> MetadataEntry:
        entry = self._entries.pop(tag, None)
        if entry is None:
            raise StoreError("cannot remove unknown tag")
        self._free_slots.append(entry.slot)
        return entry

    def entries(self) -> list[MetadataEntry]:
        return list(self._entries.values())

    def total_bytes(self) -> int:
        """Sum of tracked ciphertext sizes (outside-enclave footprint)."""
        return sum(e.size for e in self._entries.values())
