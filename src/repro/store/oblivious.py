"""Oblivious metadata access: Path ORAM for the dictionary (paper §III-D).

"Even though the reusable results are always encrypted outside enclaves,
it may still raise the concern of leaking memory access pattern. ...
this issue can be addressed by integrating existing oblivious memory
access solutions.  However, this inevitably incurs extra overhead, and
we will explore a good balance between security and performance in our
future work."

This module is that exploration: a textbook Path ORAM (Stefanov et al.,
CCS 2013) over fixed-size blocks, used to hide *which* dictionary entry
a GET/PUT touches from an adversary who observes the enclave's memory
access pattern.  Parameters: bucket size Z=4, binary tree sized to the
declared capacity, position map and stash held in (simulated) enclave
registers, every access reading and re-writing one full root-to-leaf
path with re-randomised placement.

The ablation ``python -m repro.bench a6`` quantifies the overhead the
paper anticipated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.drbg import HmacDrbg
from ..errors import StoreError
from ..sgx.cost_model import SimClock

BUCKET_SIZE = 4  # Z


@dataclass
class _Block:
    """One ORAM block: application key + opaque value."""

    key: bytes
    value: object
    leaf: int


class PathOram:
    """Key-value Path ORAM with deterministic (seeded) leaf remapping.

    Values are arbitrary Python objects; the *size* accounted per block
    is ``block_bytes`` (what an implementation would encrypt per slot).
    Every operation — hit or miss, read or write — touches exactly one
    root-to-leaf path, so the access pattern is independent of the key.
    """

    def __init__(
        self,
        capacity: int,
        block_bytes: int = 128,
        seed: bytes = b"path-oram",
        clock: SimClock | None = None,
    ):
        if capacity < 1:
            raise StoreError("ORAM capacity must be positive")
        self.capacity = capacity
        self.block_bytes = block_bytes
        self._clock = clock
        self._drbg = HmacDrbg(seed, b"oram")
        # Tree with at least `capacity` leaves.
        self._levels = max(1, (capacity - 1).bit_length()) + 1
        self._n_leaves = 1 << (self._levels - 1)
        n_nodes = (1 << self._levels) - 1
        self._tree: list[list[_Block]] = [[] for _ in range(n_nodes)]
        self._position: dict[bytes, int] = {}
        self._stash: dict[bytes, _Block] = {}
        self.accesses = 0
        self.max_stash_seen = 0

    # -- tree geometry -----------------------------------------------------
    def _path_nodes(self, leaf: int) -> list[int]:
        """Node indices from root to the given leaf (heap layout)."""
        node = leaf + self._n_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    def _random_leaf(self) -> int:
        return self._drbg.randint_below(self._n_leaves)

    # -- the single access procedure -----------------------------------------
    def _access(self, key: bytes, write_value: object | None, *, remove: bool = False):
        """Read/write/remove under one uniform path access."""
        self.accesses += 1
        leaf = self._position.get(key)
        if leaf is None:
            leaf = self._random_leaf()  # dummy path for unknown keys
        path = self._path_nodes(leaf)

        # 1. Read the whole path into the stash.
        for node in path:
            if self._clock is not None:
                # Each bucket is decrypted on read (Z blocks).
                self._clock.charge_aead_decrypt(BUCKET_SIZE * self.block_bytes)
            for block in self._tree[node]:
                self._stash[block.key] = block
            self._tree[node] = []

        # 2. Operate on the target block.
        result = None
        block = self._stash.get(key)
        if block is not None:
            result = block.value
        if remove:
            self._stash.pop(key, None)
            self._position.pop(key, None)
        elif write_value is not None:
            new_leaf = self._random_leaf()
            self._stash[key] = _Block(key=key, value=write_value, leaf=new_leaf)
            self._position[key] = new_leaf
        elif block is not None:
            # Plain read still remaps (the core obliviousness mechanism).
            new_leaf = self._random_leaf()
            block.leaf = new_leaf
            self._position[key] = new_leaf

        # 3. Write the path back, placing stash blocks as deep as their
        #    assigned leaf allows.
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            placed: list[_Block] = []
            for candidate_key in list(self._stash):
                if len(placed) >= BUCKET_SIZE:
                    break
                candidate = self._stash[candidate_key]
                cand_path = self._path_nodes(candidate.leaf)
                if depth < len(cand_path) and cand_path[depth] == node:
                    placed.append(candidate)
                    del self._stash[candidate_key]
            self._tree[node] = placed
            if self._clock is not None:
                self._clock.charge_aead_encrypt(BUCKET_SIZE * self.block_bytes)

        self.max_stash_seen = max(self.max_stash_seen, len(self._stash))
        return result

    # -- public API ------------------------------------------------------------
    def get(self, key: bytes):
        """Oblivious lookup; returns the value or None."""
        return self._access(key, None)

    def put(self, key: bytes, value: object) -> None:
        """Oblivious insert/update."""
        if key not in self._position and len(self._position) >= self.capacity:
            raise StoreError("ORAM at declared capacity")
        self._access(key, value)

    def remove(self, key: bytes):
        """Oblivious delete; returns the removed value or None."""
        return self._access(key, None, remove=True)

    def __len__(self) -> int:
        return len(self._position)

    def __contains__(self, key: bytes) -> bool:
        # NOTE: a real deployment would not expose a non-oblivious
        # membership probe; tests use it for verification only.
        return key in self._position

    def stash_size(self) -> int:
        return len(self._stash)

    def path_of(self, key: bytes) -> int | None:
        """Current leaf assignment (test instrumentation)."""
        return self._position.get(key)

    def keys(self) -> list[bytes]:
        """Current key set (position-map metadata; leaks only membership,
        which the store's dedup responses reveal anyway)."""
        return list(self._position)


class ObliviousMetadataDict:
    """Drop-in for :class:`~repro.store.metadata.MetadataDict` that routes
    every per-request lookup through Path ORAM.

    Request-path operations (``get``/``put``/``remove``) cost exactly one
    ORAM path access each, hiding *which* entry a request touched.
    Maintenance operations (``entries`` — used only when eviction
    triggers or during replication) perform a full oblivious scan, which
    is the honest price of combining ORAM with capacity management.
    ``total_bytes`` is served from a running counter (a single scalar
    that leaks nothing about individual accesses).
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: SimClock | None = None,
        seed: bytes = b"oblivious-metadata",
        block_bytes: int = 128,
    ):
        self._oram = PathOram(
            capacity=capacity, block_bytes=block_bytes, seed=seed, clock=clock
        )
        self._total_bytes = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._oram)

    def __contains__(self, tag: bytes) -> bool:
        return tag in self._oram

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def get(self, tag: bytes, touch=None):
        entry = self._oram.get(tag)
        if entry is None:
            return None
        entry.hits += 1
        entry.last_access_seq = self._tick()
        return entry

    def put(self, entry, touch=None) -> None:
        if entry.tag in self._oram:
            raise StoreError("duplicate tag insert; use replace semantics explicitly")
        entry.insert_seq = entry.last_access_seq = self._tick()
        self._oram.put(entry.tag, entry)
        self._total_bytes += entry.size

    def remove(self, tag: bytes):
        entry = self._oram.remove(tag)
        if entry is None:
            raise StoreError("cannot remove unknown tag")
        self._total_bytes -= entry.size
        return entry

    def peek(self, tag: bytes):
        """Non-mutating lookup (introspection/tests; still one path)."""
        return self._oram.get(tag)

    def entries(self) -> list:
        """Full oblivious scan (maintenance only)."""
        return [self._oram.get(tag) for tag in self._oram.keys()]

    def total_bytes(self) -> int:
        return self._total_bytes

    def slot_extent_bytes(self) -> int:
        # The ORAM tree lives encrypted in untrusted memory; the enclave
        # holds only position map + stash.
        return 0

    @property
    def oram(self) -> PathOram:
        """Instrumentation hook for tests and the A6 ablation."""
        return self._oram
