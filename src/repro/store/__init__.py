"""The encrypted ResultStore and its management machinery.

Implements §IV-B of the paper: the enclave-protected metadata dictionary
(:mod:`.metadata`), the outside-enclave ciphertext arena
(:mod:`.blobstore`), eviction policies (:mod:`.eviction`), the DoS quota
mechanism of §III-D (:mod:`.quota`), the service itself
(:mod:`.resultstore`), and master-store replication (:mod:`.sync`).
"""

from .authorization import AuthorizationError, AuthorizationPolicy
from .blobstore import BlobStore
from .eviction import FifoPolicy, LfuPolicy, LruPolicy, make_policy
from .metadata import ENTRY_SLOT_BYTES, MetadataDict, MetadataEntry, blob_digest
from .quota import QuotaManager, QuotaPolicy
from .resultstore import ResultStore, StoreConfig, StoreStats, plain_channel_pair
from .sync import SyncReport, replicate_popular

__all__ = [
    "AuthorizationError",
    "AuthorizationPolicy",
    "BlobStore",
    "ENTRY_SLOT_BYTES",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "MetadataDict",
    "MetadataEntry",
    "QuotaManager",
    "QuotaPolicy",
    "ResultStore",
    "StoreConfig",
    "StoreStats",
    "SyncReport",
    "blob_digest",
    "make_policy",
    "plain_channel_pair",
    "replicate_popular",
]
