"""DoS mitigation: per-application PUT quotas (paper §III-D).

"A malicious application may issue a large number of 'update' requests
for polluting the ResultStore with useless results.  To defend against
it, we can adopt the rate-limiting strategy into SPEED, which involves a
quota mechanism to limit the cache space for each application."

Two limits are enforced per ``app_id``: resident bytes and a token-bucket
rate on PUT operations (the bucket refills per simulated second on the
platform clock, keeping the whole mechanism deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QuotaExceededError
from ..sgx.cost_model import SimClock


@dataclass(frozen=True)
class QuotaPolicy:
    """Limits applied to each application individually."""

    max_bytes_per_app: int = 1 << 30
    max_entries_per_app: int = 1 << 20
    puts_per_second: float = float("inf")
    burst: int = 1 << 16


@dataclass
class _AppUsage:
    bytes_used: int = 0
    entries: int = 0
    tokens: float = 0.0
    last_refill_s: float = 0.0


class QuotaManager:
    """Tracks usage and admits or rejects PUTs."""

    def __init__(self, policy: QuotaPolicy, clock: SimClock):
        self.policy = policy
        self._clock = clock
        self._usage: dict[str, _AppUsage] = {}
        self.rejections = 0

    def _get(self, app_id: str) -> _AppUsage:
        usage = self._usage.get(app_id)
        if usage is None:
            usage = _AppUsage(tokens=float(self.policy.burst),
                              last_refill_s=self._clock.elapsed_seconds())
            self._usage[app_id] = usage
        return usage

    def _refill(self, usage: _AppUsage) -> None:
        now = self._clock.elapsed_seconds()
        if self.policy.puts_per_second != float("inf"):
            usage.tokens = min(
                float(self.policy.burst),
                usage.tokens + (now - usage.last_refill_s) * self.policy.puts_per_second,
            )
        usage.last_refill_s = now

    def admit_put(self, app_id: str, n_bytes: int) -> None:
        """Raise :class:`QuotaExceededError` if this PUT would exceed any
        limit; otherwise record it."""
        usage = self._get(app_id)
        self._refill(usage)
        if usage.bytes_used + n_bytes > self.policy.max_bytes_per_app:
            self.rejections += 1
            raise QuotaExceededError(
                f"app {app_id!r} over byte quota "
                f"({usage.bytes_used + n_bytes} > {self.policy.max_bytes_per_app})"
            )
        if usage.entries + 1 > self.policy.max_entries_per_app:
            self.rejections += 1
            raise QuotaExceededError(f"app {app_id!r} over entry quota")
        if self.policy.puts_per_second != float("inf"):
            if usage.tokens < 1.0:
                self.rejections += 1
                raise QuotaExceededError(f"app {app_id!r} over PUT rate limit")
            usage.tokens -= 1.0
        usage.bytes_used += n_bytes
        usage.entries += 1

    def restore(self, app_id: str, n_bytes: int) -> None:
        """Re-admit usage for an entry coming back from a snapshot or the
        write-ahead log.  No limit or rate check applies — the entry was
        admitted before the restart, and dropping it now would let an app
        exceed its quota by simply waiting for a store restart."""
        usage = self._get(app_id)
        usage.bytes_used += n_bytes
        usage.entries += 1

    def release(self, app_id: str, n_bytes: int) -> None:
        """Credit quota back when an entry is evicted or deleted."""
        usage = self._get(app_id)
        usage.bytes_used = max(0, usage.bytes_used - n_bytes)
        usage.entries = max(0, usage.entries - 1)

    def usage_of(self, app_id: str) -> tuple[int, int]:
        usage = self._get(app_id)
        return usage.bytes_used, usage.entries
