"""Untrusted blob storage for result ciphertexts.

"The actual content of [res] is stored outside enclave for space
efficiency, just keeping a pointer in the metadata dictionary" (§III-B).
The adversary of §II-B controls this memory, so the test suite uses
:meth:`BlobStore.tamper` to model it flipping bytes — detected by the
store enclave's blob digest and, independently, by the application's
AEAD check.
"""

from __future__ import annotations

from ..errors import StoreError


class BlobStore:
    """Reference-counted append-only blob arena in untrusted memory."""

    def __init__(self):
        self._blobs: dict[int, bytes] = {}
        self._next_ref = 1
        self.bytes_stored = 0

    def put(self, data: bytes) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self._blobs[ref] = bytes(data)
        self.bytes_stored += len(data)
        return ref

    def get(self, ref: int) -> bytes:
        blob = self._blobs.get(ref)
        if blob is None:
            raise StoreError(f"dangling blob reference {ref}")
        return blob

    def delete(self, ref: int) -> None:
        blob = self._blobs.pop(ref, None)
        if blob is None:
            raise StoreError(f"double free of blob reference {ref}")
        self.bytes_stored -= len(blob)

    def __len__(self) -> int:
        return len(self._blobs)

    # -- adversarial surface (tests only) ---------------------------------
    def tamper(self, ref: int, offset: int = 0, xor: int = 0xFF) -> None:
        """Model the OS-level adversary modifying ciphertext at rest."""
        blob = bytearray(self.get(ref))
        if not 0 <= offset < len(blob):
            raise StoreError("tamper offset out of range")
        blob[offset] ^= xor
        self._blobs[ref] = bytes(blob)

    def swap(self, ref_a: int, ref_b: int) -> None:
        """Model the adversary swapping two stored ciphertexts."""
        a, b = self.get(ref_a), self.get(ref_b)
        self._blobs[ref_a], self._blobs[ref_b] = b, a
