"""The encrypted ResultStore service (paper §IV-B).

The main body runs outside the enclave: it owns the network endpoint and
the untrusted blob arena.  Each request is delegated to the store enclave
(one ECALL per request), where the channel record is opened, the request
parsed, and the enclave-protected metadata dictionary accessed; the reply
is protected before control returns to the host.  A ``use_sgx=False``
variant runs the identical logic without an enclave — the "w/o SGX"
series of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .authorization import AuthorizationPolicy
from .blobstore import BlobStore
from .eviction import EvictionPolicy, make_policy
from .metadata import MetadataDict, MetadataEntry, blob_digest
from .oblivious import ObliviousMetadataDict
from .quota import QuotaManager, QuotaPolicy
from ..crypto.drbg import HmacDrbg
from ..crypto.hashes import DIGEST_SIZE
from ..durable.wal import DurableLog, WalConfig
from ..errors import ProtocolError, QuotaExceededError, StoreError
from ..obs.metrics import namespaced
from ..obs.tracer import NULL_TRACER
from ..net.channel import (
    ChannelEndpoint,
    NullChannelEndpoint,
    establish,
    establish_remote,
)
from ..net.messages import (
    BatchGetRequest,
    BatchGetResponse,
    BatchPutRequest,
    BatchPutResponse,
    ErrorMessage,
    GetRequest,
    GetResponse,
    Message,
    PutRequest,
    PutResponse,
    SyncRequest,
    SyncResponse,
    decode_message,
    encode_message,
    with_request_id,
)
from ..net.rpc import RpcClient
from ..net.transport import Network
from ..sgx.enclave import Enclave
from ..sgx.platform import SgxPlatform

STORE_CODE_IDENTITY = b"speed/resultstore/enclave-v1"
STORE_SIGNER = b"speed-store"
WRAPPED_KEY_SIZE = 16
CHALLENGE_SIZE = 32


@dataclass(frozen=True)
class StoreConfig:
    """Deployment knobs for one ResultStore instance."""

    capacity_bytes: int | None = None
    capacity_entries: int | None = None
    eviction: str = "lru"
    quota: QuotaPolicy | None = None
    use_sgx: bool = True
    verify_blob_digest: bool = True
    # Controlled deduplication (§III-D discussion): when set, only
    # applications whose attested measurement the policy admits may
    # connect.  None = open admission, the paper's base design.
    authorization: "AuthorizationPolicy | None" = None
    # Ablation A3 (DESIGN.md): keep result ciphertexts in enclave memory
    # instead of outside.  The paper rejects this design because the EPC
    # is tiny; setting True shows why (page-fault storms under load).
    blobs_in_epc: bool = False
    # Paper SS III-D discussion / future work: hide the metadata access
    # pattern behind Path ORAM (ablation A6 measures the overhead).
    oblivious_metadata: bool = False
    oblivious_capacity: int = 4096
    # repro.durable: log-structured persistence.  When True every
    # accepted PUT/evict/discard is appended to a sealed, MAC-chained
    # write-ahead log committed before each reply leaves the machine, so
    # the store survives power_fail() via recover().
    durable: bool = False
    wal_group_commit: int = 8
    checkpoint_interval: int = 256
    # GET-recency WAL marks: when > 0, every Nth hit on an entry logs a
    # coalesced REC_TOUCH record so restored LRU/LFU eviction order also
    # reflects reads served after the last checkpoint.  0 disables the
    # marks (recency then restores only up to the checkpoint).
    recency_log_interval: int = 0
    # Whole-state rollback handling: detection always counts into
    # ``durable.rollback_detected``; with strict_rollback=True recovery
    # refuses the stale state with a hard RollbackError instead.
    strict_rollback: bool = False


@dataclass
class StoreStats:
    """Operational counters surfaced to experiments."""

    gets: int = 0
    hits: int = 0
    puts: int = 0
    puts_duplicate: int = 0
    puts_rejected: int = 0
    evictions: int = 0
    tamper_detected: int = 0
    restores: int = 0
    restored_entries: int = 0
    recoveries: int = 0
    power_fails: int = 0

    def hit_rate(self) -> float:
        return self.hits / self.gets if self.gets else 0.0

    #: Legacy keys with inconsistent spelling and their normalized
    #: ``store.<metric>`` names.
    _RENAMES = {
        "puts_duplicate": "puts_duplicated",
        "tamper_detected": "tampers_detected",
        "restores": "restore.restores",
        "restored_entries": "restore.entries_restored",
        "recoveries": "restore.recoveries",
        "power_fails": "restore.power_fails",
    }

    def snapshot(self) -> dict:
        """Flat, JSON-ready counter export (mirrors RuntimeStats.snapshot).

        Canonical keys are ``store.<metric>``; the historical
        un-namespaced keys remain as aliases for one release.
        """
        return namespaced("store", {
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "puts_duplicate": self.puts_duplicate,
            "puts_rejected": self.puts_rejected,
            "evictions": self.evictions,
            "tamper_detected": self.tamper_detected,
            "restores": self.restores,
            "restored_entries": self.restored_entries,
            "recoveries": self.recoveries,
            "power_fails": self.power_fails,
            "hit_rate": self.hit_rate(),
        }, renames=self._RENAMES)


def plain_channel_pair(clock, seed: bytes) -> tuple[ChannelEndpoint, ChannelEndpoint]:
    """Session-key channel without attestation (tests and tooling)."""
    drbg = HmacDrbg(seed, b"store/plain-channel")
    k_c2s, k_s2c = drbg.generate(16), drbg.generate(16)
    client = ChannelEndpoint(clock, send_key=k_c2s, recv_key=k_s2c, label=0)
    server = ChannelEndpoint(clock, send_key=k_s2c, recv_key=k_c2s, label=1)
    return client, server


def null_channel_pair() -> tuple[NullChannelEndpoint, NullChannelEndpoint]:
    """Unprotected endpoints for the paper's "without SGX" comparison."""
    return NullChannelEndpoint(), NullChannelEndpoint()


class ResultStore:
    """One deployed ResultStore reachable at a network address."""

    def __init__(
        self,
        platform: SgxPlatform,
        network: Network,
        address: str = "resultstore",
        config: StoreConfig | None = None,
        seed: bytes = b"resultstore-seed",
        tracer=NULL_TRACER,
    ):
        self.platform = platform
        self.network = network
        self.address = address
        self.config = config or StoreConfig()
        # Observability: store-side spans are recorded on this machine's
        # clock; the enclave inherits the tracer so its ECALL/OCALL
        # transitions appear in the same trace.
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.endpoint = network.endpoint(address, platform.clock)
        self.enclave: Enclave | None = None
        if self.config.use_sgx:
            self.enclave = platform.create_enclave(
                f"resultstore@{address}", STORE_CODE_IDENTITY, signer=STORE_SIGNER
            )
            self.enclave.tracer = self.tracer
        if self.config.oblivious_metadata:
            self._dict: MetadataDict | ObliviousMetadataDict = ObliviousMetadataDict(
                capacity=self.config.oblivious_capacity,
                clock=platform.clock,
                seed=seed + b"/oram",
            )
        else:
            self._dict = MetadataDict()
        self._blobs = BlobStore()
        self._policy: EvictionPolicy = make_policy(self.config.eviction)
        self._quota = (
            QuotaManager(self.config.quota, platform.clock) if self.config.quota else None
        )
        self.durable: DurableLog | None = None
        self._durable_suspended = False
        if self.config.durable:
            if self.enclave is None:
                raise StoreError("durable persistence requires an SGX-mode store")
            if self.config.oblivious_metadata:
                raise StoreError(
                    "durable persistence does not support oblivious metadata yet"
                )
            self.durable = DurableLog(
                self.enclave,
                WalConfig(
                    group_commit_records=self.config.wal_group_commit,
                    checkpoint_interval_records=self.config.checkpoint_interval,
                ),
                tracer=self.tracer,
            )
        self._channels: dict[str, ChannelEndpoint] = {}
        self._seed = seed
        self._conn_counter = 0
        # Migration hand-off marks: id -> {"peer", "role", "committed"
        # (set of (lo, hi) ring ranges), "ended"}.  Volatile — a power
        # failure wipes them and WAL replay rebuilds them.
        self._migrations: dict[str, dict] = {}
        # blobs_in_epc bookkeeping: blob_ref -> (enclave heap offset, size).
        self._epc_blob_extents: dict[int, tuple[int, int]] = {}
        self._epc_blob_cursor = 0
        self.stats = StoreStats()
        network.set_reactor(address, self)

    # -- connection management --------------------------------------------
    def connect(
        self,
        client_address: str,
        app_enclave: Enclave | None = None,
        attestation_service=None,
    ) -> RpcClient:
        """Establish a secure channel for one application and return the
        RPC client its DedupRuntime will use.

        With SGX the channel rides on local attestation between the app
        enclave and the store enclave when both share a platform; an
        application on a *different* machine (the sharded-cluster
        topology) passes the shared ``attestation_service`` and the
        handshake upgrades to remote attestation.  Without SGX (Fig. 6
        comparison) a pre-provisioned session channel is used.

        The client endpoint is registered on the *application's* clock:
        its channel crypto and wire time belong to the app machine.
        """
        client_clock = (
            app_enclave.platform.clock if app_enclave is not None else self.platform.clock
        )
        endpoint = self.network.endpoint(client_address, client_clock)
        self._conn_counter += 1
        if self.config.use_sgx:
            if app_enclave is None:
                raise StoreError("SGX-mode connections require the application enclave")
            if app_enclave.platform is not self.platform:
                if attestation_service is None:
                    raise StoreError(
                        "cross-machine connections require a shared attestation service"
                    )
                established = establish_remote(
                    attestation_service, app_enclave, self.enclave
                )
            else:
                established = establish(app_enclave, self.enclave)
            if self.config.authorization is not None:
                # Controlled deduplication: admit by attested identity.
                self.config.authorization.check(established.client_measurement)
            client_chan, server_chan = established.client, established.server
        else:
            if self.config.authorization is not None:
                raise StoreError(
                    "authorization requires attested (SGX-mode) connections"
                )
            # Fig. 6 "w/o SGX": the paper runs the same operations fully
            # outside enclaves, so no protected channel exists.
            client_chan, server_chan = null_channel_pair()
        # Channel crypto spans: the server side is charged to this
        # machine's clock, the client side to the application's.
        server_chan.tracer = self.tracer
        server_chan.trace_clock = self.platform.clock
        client_chan.tracer = self.tracer
        client_chan.trace_clock = client_clock
        self._channels[client_address] = server_chan
        return RpcClient(
            endpoint, client_chan, self.address,
            tracer=self.tracer, clock=client_clock,
        )

    # -- reactor -------------------------------------------------------------
    def pump(self) -> None:
        """Serve all pending requests (invoked by the network on delivery)."""
        while self.endpoint.pending():
            source, record = self.endpoint.recv()
            channel = self._channels.get(source)
            if channel is None:
                raise StoreError(f"request from unconnected client {source!r}")
            if self.enclave is not None:
                with self.enclave.ecall("serve_request", in_bytes=len(record)):
                    reply = self._process(channel, record)
                    if self.durable is not None:
                        # Group commit: everything this request logged
                        # becomes durable before the reply — the ack —
                        # leaves the machine.
                        from ..durable.checkpoint import maybe_checkpoint

                        self.durable.commit()
                        maybe_checkpoint(self)
            else:
                reply = self._process(channel, record)
            self.endpoint.send(source, reply)

    def _process(self, channel: ChannelEndpoint, record: bytes) -> bytes:
        request_id = 0
        try:
            request = decode_message(channel.unprotect(record))
        except Exception as exc:
            response: Message = ErrorMessage(code=400, detail=str(exc))
        else:
            request_id = request.request_id
            try:
                response = self._dispatch(request)
            except QuotaExceededError as exc:
                # Machine-readable code first, human detail after.
                response = PutResponse(accepted=False, reason=f"{exc.code}: {exc}")
            except Exception as exc:
                response = ErrorMessage(code=500, detail=str(exc))
        return channel.protect(encode_message(with_request_id(response, request_id)))

    def _dispatch(self, request: Message) -> Message:
        if isinstance(request, GetRequest):
            return self._handle_get(request)
        if isinstance(request, PutRequest):
            return self._handle_put(request)
        if isinstance(request, BatchGetRequest):
            return self._handle_batch_get(request)
        if isinstance(request, BatchPutRequest):
            return self._handle_batch_put(request)
        if isinstance(request, SyncRequest):
            return self._handle_sync(request)
        raise ProtocolError(f"unexpected message type {type(request).__name__}")

    # -- touch helper ----------------------------------------------------------
    def _touch(self, region: str, offset: int, n_bytes: int) -> None:
        if self.enclave is not None:
            self.enclave.touch(region, offset, n_bytes)

    # -- GET -----------------------------------------------------------------
    def _handle_get(self, request: GetRequest) -> GetResponse:
        with self.tracer.span("store.get", clock=self.platform.clock) as get_span:
            self.stats.gets += 1
            if len(request.tag) != DIGEST_SIZE:
                raise ProtocolError(f"tag must be {DIGEST_SIZE} bytes")
            with self.tracer.span("store.lookup", clock=self.platform.clock):
                entry = self._dict.get(request.tag, touch=self._touch)
            if entry is None:
                get_span.set("found", False)
                return GetResponse(found=False)
            with self.tracer.span("store.blob_read", clock=self.platform.clock) as read_span:
                sealed = self._blobs.get(entry.blob_ref)
                read_span.set("bytes", len(sealed))
                if self.config.blobs_in_epc:
                    extent = self._epc_blob_extents.get(entry.blob_ref)
                    if extent is not None:
                        self._touch("store/blobs", extent[0], extent[1])
                else:
                    # Copying the ciphertext across the enclave boundary.
                    self.platform.clock.charge_marshal(len(sealed))
                if self.config.verify_blob_digest:
                    self.platform.clock.charge_hash(len(sealed))
                    if blob_digest(sealed) != entry.blob_digest:
                        # Untrusted memory was modified: drop the poisoned
                        # entry and let the application recompute
                        # (fail-safe, §III-D).
                        self.stats.tamper_detected += 1
                        self._evict_entry(entry)
                        read_span.mark("tampered")
                        get_span.set("found", False)
                        return GetResponse(found=False)
            self.stats.hits += 1
            if (
                self.durable is not None
                and not self._durable_suspended
                and self.config.recency_log_interval > 0
                and entry.hits % self.config.recency_log_interval == 0
            ):
                # Coalesced recency mark: one record per N hits keeps the
                # log cheap while restored eviction order tracks reads.
                self.durable.append_touch(entry.tag, entry.hits)
            get_span.set("found", True)
            return GetResponse(
                found=True,
                challenge=entry.challenge,
                wrapped_key=entry.wrapped_key,
                sealed_result=sealed,
            )

    # -- PUT -----------------------------------------------------------------
    def _handle_put(self, request: PutRequest) -> PutResponse:
        with self.tracer.span("store.put", clock=self.platform.clock) as put_span:
            self.stats.puts += 1
            if len(request.tag) != DIGEST_SIZE:
                raise ProtocolError(f"tag must be {DIGEST_SIZE} bytes")
            # Empty challenge/wrapped key = the single-key scheme of §III-B;
            # the cross-application scheme always sends both.
            if len(request.challenge) not in (0, CHALLENGE_SIZE):
                raise ProtocolError(f"challenge must be empty or {CHALLENGE_SIZE} bytes")
            if len(request.wrapped_key) not in (0, WRAPPED_KEY_SIZE):
                raise ProtocolError(f"wrapped key must be empty or {WRAPPED_KEY_SIZE} bytes")
            with self.tracer.span("store.lookup", clock=self.platform.clock):
                duplicate = request.tag in self._dict
            if duplicate:
                # Deterministic tags mean one ciphertext version suffices
                # (§IV-B remark); the first stored version wins.
                self.stats.puts_duplicate += 1
                put_span.set("outcome", "duplicate")
                return PutResponse(accepted=True, reason="already stored")
            size = len(request.sealed_result)
            if self._quota is not None:
                self._quota.admit_put(request.app_id, size)
            self._make_room(size)
            with self.tracer.span(
                "store.blob_write", clock=self.platform.clock, bytes=size
            ):
                self.platform.clock.charge_hash(size)  # blob digest
                ref = self._blobs.put(request.sealed_result)
                if self.config.blobs_in_epc:
                    self._epc_blob_extents[ref] = (self._epc_blob_cursor, size)
                    self._touch("store/blobs", self._epc_blob_cursor, size)
                    self._epc_blob_cursor += size
                else:
                    # Ciphertext leaves the enclave.
                    self.platform.clock.charge_marshal(size)
            entry = MetadataEntry(
                tag=request.tag,
                challenge=request.challenge,
                wrapped_key=request.wrapped_key,
                blob_ref=ref,
                blob_digest=blob_digest(request.sealed_result),
                size=size,
                app_id=request.app_id,
            )
            self._dict.put(entry, touch=self._touch)
            if self.durable is not None and not self._durable_suspended:
                self.durable.append_put(entry, request.sealed_result)
            put_span.set("outcome", "stored")
            return PutResponse(accepted=True)

    # -- batch handlers -------------------------------------------------------
    # The whole batch is served inside the single ECALL that pump() opened
    # for its channel record: one transition charge and one record's worth
    # of channel crypto amortized over N dictionary probes.
    def _handle_batch_get(self, request: BatchGetRequest) -> BatchGetResponse:
        return BatchGetResponse(
            items=tuple(self._handle_get(item) for item in request.items)
        )

    def _handle_batch_put(self, request: BatchPutRequest) -> BatchPutResponse:
        # Per-item verdicts: a rejected or malformed item (over quota, bad
        # field shape) must not poison its batch-mates, exactly as N
        # sequential PUTs would each get their own answer.  Eviction and
        # quota accounting run per item through the same code path.
        results = []
        for item in request.items:
            try:
                results.append(self._handle_put(item))
            except (QuotaExceededError, ProtocolError) as exc:
                results.append(PutResponse(accepted=False, reason=f"{exc.code}: {exc}"))
        return BatchPutResponse(items=tuple(results))

    def _make_room(self, incoming: int) -> None:
        cfg = self.config
        while (
            cfg.capacity_entries is not None and len(self._dict) >= cfg.capacity_entries
        ) or (
            cfg.capacity_bytes is not None
            and self._dict.total_bytes() + incoming > cfg.capacity_bytes
        ):
            entries = self._dict.entries()
            if not entries:
                raise StoreError("capacity too small for a single entry")
            with self.tracer.span(
                "store.evict", clock=self.platform.clock, policy=self.config.eviction
            ):
                self._evict_entry(self._policy.select_victim(entries))
            self.stats.evictions += 1

    def _evict_entry(self, entry: MetadataEntry, discard: bool = False) -> None:
        self._dict.remove(entry.tag)
        self._blobs.delete(entry.blob_ref)
        if self._quota is not None:
            self._quota.release(entry.app_id, entry.size)
        if self.durable is not None and not self._durable_suspended:
            self.durable.append_remove(entry.tag, discard=discard)

    # -- SYNC (master-store replication, §IV-B remark) -------------------------
    def _handle_sync(self, request: SyncRequest) -> SyncResponse:
        known = set(request.known_tags)
        entries = []
        for entry in self._dict.entries():
            if entry.tag in known or entry.hits < request.min_hits:
                continue
            sealed = self._blobs.get(entry.blob_ref)
            self.platform.clock.charge_marshal(len(sealed))
            entries.append((entry.tag, entry.challenge, entry.wrapped_key, sealed))
        return SyncResponse(entries=tuple(entries))

    def ingest_entry(
        self, tag: bytes, challenge: bytes, wrapped_key: bytes, sealed_result: bytes
    ) -> bool:
        """Directly insert a replicated entry (sync path, already
        authenticated by the sync channel); returns False on duplicate."""
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("ingest_entry", in_bytes=len(sealed_result)):
                return self.ingest_entry(tag, challenge, wrapped_key, sealed_result)
        if tag in self._dict:
            return False
        size = len(sealed_result)
        self._make_room(size)
        ref = self._blobs.put(sealed_result)
        entry = MetadataEntry(
            tag=tag,
            challenge=challenge,
            wrapped_key=wrapped_key,
            blob_ref=ref,
            blob_digest=blob_digest(sealed_result),
            size=size,
            app_id="sync",
        )
        self._dict.put(entry, touch=self._touch)
        if self.durable is not None and not self._durable_suspended:
            # Hand-off log: replicated/migrated entries arrive outside the
            # request loop, so they commit here rather than in pump().
            self.durable.append_put(entry, sealed_result)
            self.durable.commit()
        return True

    # -- tag-range migration (cluster resharding) -----------------------------
    def collect_entries(self, predicate) -> list[tuple[bytes, bytes, bytes, bytes]]:
        """Export ``(tag, r, [k], [res])`` tuples whose tag satisfies
        ``predicate`` — the collection half of a tag-range migration.

        Runs as one ECALL; each exported ciphertext is charged as a copy
        across the enclave boundary, exactly like a SYNC collection.
        """
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("migrate_collect"):
                return self.collect_entries(predicate)
        out = []
        for entry in self._dict.entries():
            if not predicate(entry.tag):
                continue
            sealed = self._blobs.get(entry.blob_ref)
            self.platform.clock.charge_marshal(len(sealed))
            out.append((entry.tag, entry.challenge, entry.wrapped_key, sealed))
        return out

    def tags_matching(self, predicate) -> list[bytes]:
        """Tags whose value satisfies ``predicate`` — the cheap scan used
        to find entries a ring change re-homed (no ciphertexts leave)."""
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("migrate_scan"):
                return self.tags_matching(predicate)
        return [e.tag for e in self._dict.entries() if predicate(e.tag)]

    def discard_tags(self, tags) -> int:
        """Drop entries this store no longer owns after a ring change;
        returns the number removed.  Quota held by the owning app is
        released, mirroring eviction."""
        removed = 0
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("migrate_discard"):
                return self.discard_tags(tags)
        for tag in tags:
            entry = self._dict.peek(tag)
            if entry is None:
                continue
            self._evict_entry(entry, discard=True)
            removed += 1
        if self.durable is not None and not self._durable_suspended:
            self.durable.commit()  # hand-off log for the migration source
        return removed

    def can_accept(self, size: int) -> bool:
        """Whether one more ``size``-byte entry fits without evicting.
        Migration uses this to refuse a batch instead of silently
        evicting foreground entries on a full target shard."""
        cfg = self.config
        if cfg.capacity_entries is not None and len(self._dict) >= cfg.capacity_entries:
            return False
        if (
            cfg.capacity_bytes is not None
            and self._dict.total_bytes() + size > cfg.capacity_bytes
        ):
            return False
        return True

    # -- migration hand-off marks ----------------------------------------------
    @property
    def migration_open(self) -> bool:
        """True while this shard participates in an unfinished hand-off."""
        return any(not m["ended"] for m in self._migrations.values())

    def migration_marks(self, migration_id: str) -> dict | None:
        """This shard's durable view of one migration (tests/resume)."""
        mark = self._migrations.get(migration_id)
        if mark is None:
            return None
        return {
            "peer": mark["peer"],
            "role": mark["role"],
            "committed": set(mark["committed"]),
            "ended": mark["ended"],
        }

    def note_migrate(
        self,
        kind: int,
        migration_id: str,
        range_lo: int = 0,
        range_hi: int = 0,
        peer: str = "",
        role: int = 0,
    ) -> None:
        """Record one migration hand-off mark: BEGIN/END bracket this
        shard's participation, RANGE_COMMIT pins one handed-off range.
        Durable stores seal the mark into the WAL before returning, so
        the hand-off protocol survives a power failure on either side."""
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("migrate_mark"):
                return self.note_migrate(
                    kind, migration_id, range_lo, range_hi, peer, role
                )
        from ..durable.wal import WalRecord

        self._note_migrate(WalRecord(
            kind=kind,
            tag=b"",
            migration_id=migration_id,
            range_lo=range_lo,
            range_hi=range_hi,
            peer=peer,
            role=role,
        ))
        if self.durable is not None and not self._durable_suspended:
            self.durable.append_migrate(
                kind, migration_id, range_lo, range_hi, peer, role
            )
            self.durable.commit()

    def _note_migrate(self, record) -> None:
        """Apply one migration mark to the volatile view (live append and
        WAL replay share this)."""
        from ..durable.wal import REC_MIGRATE_COMMIT, REC_MIGRATE_END

        mark = self._migrations.setdefault(record.migration_id, {
            "peer": record.peer,
            "role": record.role,
            "committed": set(),
            "ended": False,
        })
        if record.peer:
            mark["peer"] = record.peer
        if record.kind == REC_MIGRATE_COMMIT:
            mark["committed"].add((record.range_lo, record.range_hi))
        elif record.kind == REC_MIGRATE_END:
            mark["ended"] = True

    def _relog_open_migrations(self) -> None:
        """Re-seal the marks of still-open migrations into the fresh log
        (recovery folds the old log into a checkpoint, which would
        otherwise drop them)."""
        if self.durable is None or not self._migrations:
            return
        from ..durable.wal import (
            REC_MIGRATE_BEGIN,
            REC_MIGRATE_COMMIT,
        )

        logged = False
        for migration_id, mark in self._migrations.items():
            if mark["ended"]:
                continue
            self.durable.append_migrate(
                REC_MIGRATE_BEGIN, migration_id, peer=mark["peer"], role=mark["role"]
            )
            for lo, hi in sorted(mark["committed"]):
                self.durable.append_migrate(
                    REC_MIGRATE_COMMIT, migration_id, lo, hi,
                    peer=mark["peer"], role=mark["role"],
                )
            logged = True
        if logged:
            self.durable.commit()

    def clear(self) -> int:
        """Drop every entry and blob (a crashed store process loses its
        in-memory state); quota held by contributing apps is released.
        Returns the number of entries dropped."""
        if self.enclave is not None and not self.enclave.inside:
            with self.enclave.ecall("clear"):
                return self.clear()
        entries = self._dict.entries()
        # clear() models memory *loss*, not N deliberate deletions — the
        # durable log must not record it as evictions.
        suspended = self._durable_suspended
        self._durable_suspended = True
        try:
            for entry in entries:
                self._evict_entry(entry)
        finally:
            self._durable_suspended = suspended
        return len(entries)

    # -- power failure and recovery (repro.durable) ---------------------------
    def power_fail(self) -> int:
        """Simulate a power failure: every volatile structure — the
        enclave's metadata dictionary, the untrusted blob arena, eviction
        and quota state, and the WAL's in-enclave buffer — is lost in
        place.  Only the durable artifacts (sealed segments, the sealed
        checkpoint, logged ciphertexts) survive for :meth:`recover`.
        Established channels are kept — the subsystem hardens *store
        state*, not the transport.  Returns the entry count wiped."""
        if self.durable is None:
            raise StoreError("power_fail requires a durable-mode store")
        wiped = len(self._dict)
        self._dict = MetadataDict()
        self._blobs = BlobStore()
        self._policy = make_policy(self.config.eviction)
        if self.config.quota:
            self._quota = QuotaManager(self.config.quota, self.platform.clock)
        self._epc_blob_extents.clear()
        self._epc_blob_cursor = 0
        self._migrations = {}
        self.durable.power_fail()
        self.stats.power_fails += 1
        return wiped

    def recover(self):
        """Rebuild state from the durable log after :meth:`power_fail`;
        returns the :class:`~repro.durable.recovery.RecoveryReport`."""
        from ..durable.recovery import recover_store

        return recover_store(self)

    def replay_insert(self, record, sealed_result: bytes) -> bool:
        """Re-insert one logged PUT during WAL replay (recovery only).
        Quota is re-admitted without rate-limiting — the entry was
        admitted before the crash.  Returns False on duplicate."""
        if record.tag in self._dict:
            return False
        self._make_room(record.size)
        ref = self._blobs.put(sealed_result)
        self.platform.clock.charge_marshal(record.size)
        self._dict.put(
            MetadataEntry(
                tag=record.tag,
                challenge=record.challenge,
                wrapped_key=record.wrapped_key,
                blob_ref=ref,
                blob_digest=record.blob_digest,
                size=record.size,
                app_id=record.app_id,
            ),
            touch=self._touch,
        )
        if self._quota is not None:
            self._quota.restore(record.app_id, record.size)
        return True

    def replay_touch(self, record) -> bool:
        """Re-apply one logged GET-recency mark during WAL replay."""
        return self._dict.touch_restore(record.tag, record.hits, touch=self._touch)

    # -- introspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._dict)

    def contains(self, tag: bytes) -> bool:
        return tag in self._dict

    def entry_hits(self, tag: bytes) -> int:
        entry = self._dict.peek(tag)
        return entry.hits if entry else 0

    def stored_tags(self) -> list[bytes]:
        """Every tag currently held, sorted (tests/diagnostics only —
        no eviction state is touched)."""
        return sorted(entry.tag for entry in self._dict.entries())

    def metadata_entry(self, tag: bytes):
        """The live in-enclave entry for ``tag``, or None.  Adversarial
        tests mutate it to model a compromised metadata dictionary; the
        paper's Fig. 3 verification must reject anything they change."""
        return self._dict.peek(tag)

    @property
    def blobstore(self) -> BlobStore:
        """Untrusted memory — exposed for adversarial tests."""
        return self._blobs

    def blob_ref_of(self, tag: bytes) -> int:
        entry = self._dict.peek(tag)
        if entry is None:
            raise StoreError("unknown tag")
        return entry.blob_ref

    def snapshot(self) -> dict:
        """Store counters plus, on durable stores, the ``durable.*``
        log/checkpoint/recovery counters — one flat dict."""
        snap = self.stats.snapshot()
        if self.durable is not None:
            snap.update(self.durable.snapshot())
        return snap
