"""SHA-256 implemented from scratch (FIPS 180-4).

The library's hot paths use CPython's C-accelerated ``hashlib`` (see
:mod:`repro.crypto.hashes`), but the reproduction's "every dependency
built from scratch" claim extends to the hash: this module is a complete
standalone SHA-256 whose round constants are *derived* at import time —
``H0`` from the fractional parts of the square roots of the first 8
primes and ``K`` from the cube roots of the first 64 primes — rather
than transcribed, mirroring how the AES tables are generated in
:mod:`repro.crypto.aes`.  The test suite pins it to the FIPS vectors and
cross-checks it against ``hashlib`` on random inputs.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def _primes(count: int) -> list[int]:
    out = []
    candidate = 2
    while len(out) < count:
        if all(candidate % p for p in out if p * p <= candidate):
            out.append(candidate)
        candidate += 1
    return out


def _isqrt_frac32(n: int) -> int:
    """floor(2^32 * frac(sqrt(n))) using integer arithmetic."""
    import math

    scaled = math.isqrt(n << 64)
    return scaled & _MASK32


def _icbrt_frac32(n: int) -> int:
    """floor(2^32 * frac(cbrt(n))) using integer arithmetic."""
    target = n << 96
    # Integer cube root by Newton/bisection.
    low, high = 0, 1 << 44
    while low < high:
        mid = (low + high + 1) // 2
        if mid * mid * mid <= target:
            low = mid
        else:
            high = mid - 1
    return low & _MASK32


_PRIMES = _primes(64)
_H0 = tuple(_isqrt_frac32(p) for p in _PRIMES[:8])
_K = tuple(_icbrt_frac32(p) for p in _PRIMES)


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def sha256_pure(data: bytes) -> bytes:
    """Compute SHA-256 of ``data`` with the from-scratch implementation."""
    h = list(_H0)
    length_bits = len(data) * 8
    padded = data + b"\x80"
    padded += b"\x00" * ((56 - len(padded)) % 64)
    padded += length_bits.to_bytes(8, "big")

    for block_start in range(0, len(padded), 64):
        block = padded[block_start:block_start + 64]
        w = [int.from_bytes(block[i:i + 4], "big") for i in range(0, 64, 4)]
        for t in range(16, 64):
            s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
            s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
            w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK32)

        a, b, c, d, e, f, g, hh = h
        for t in range(64):
            big_s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (hh + big_s1 + ch + _K[t] + w[t]) & _MASK32
            big_s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (big_s0 + maj) & _MASK32
            hh, g, f, e = g, f, e, (d + temp1) & _MASK32
            d, c, b, a = c, b, a, (temp1 + temp2) & _MASK32

        h = [(x + y) & _MASK32 for x, y in zip(h, (a, b, c, d, e, f, g, hh))]

    return b"".join(x.to_bytes(4, "big") for x in h)
