"""HMAC-DRBG (NIST SP 800-90A) — the deterministic randomness source.

Every randomised component of the reproduction (key generation, the RCE
challenge ``r``, DH private keys, workload generators) draws from an
explicit DRBG instance so that experiments are replayable from a seed.
Inside the simulated enclave this stands in for ``sgx_read_rand``.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import CryptoError


class HmacDrbg:
    """HMAC-SHA-256 DRBG without prediction-resistance reseeding.

    The construction follows SP 800-90A section 10.1.2: the internal state
    is ``(K, V)``; ``generate`` chains ``V = HMAC(K, V)`` and re-keys via
    ``update`` after each request.
    """

    MAX_REQUEST = 1 << 16

    def __init__(self, seed: bytes, personalization: bytes = b""):
        if not seed:
            raise CryptoError("HMAC-DRBG requires non-empty seed material")
        self._k = b"\x00" * 32
        self._v = b"\x01" * 32
        self._update(seed + personalization)
        self._reseed_counter = 1

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: bytes = b"") -> None:
        self._k = self._hmac(self._k, self._v + b"\x00" + provided)
        self._v = self._hmac(self._k, self._v)
        if provided:
            self._k = self._hmac(self._k, self._v + b"\x01" + provided)
            self._v = self._hmac(self._k, self._v)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, n_bytes: int) -> bytes:
        """Produce ``n_bytes`` of pseudorandom output."""
        if n_bytes < 0:
            raise CryptoError("cannot generate a negative number of bytes")
        if n_bytes > self.MAX_REQUEST:
            raise CryptoError(f"request exceeds MAX_REQUEST ({self.MAX_REQUEST})")
        out = b""
        while len(out) < n_bytes:
            self._v = self._hmac(self._k, self._v)
            out += self._v
        self._update()
        self._reseed_counter += 1
        return out[:n_bytes]

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError("bound must be positive")
        n_bytes = (bound.bit_length() + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(n_bytes + 8), "big")
            # 64 extra bits make the modulo bias negligible for simulation use.
            return candidate % bound

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child DRBG, e.g. one per enclave."""
        return HmacDrbg(self.generate(32), personalization=label)
