"""AES-GCM-128 authenticated encryption (NIST SP 800-38D), from scratch.

The paper encrypts every cached computation result with ``AES-GCM-128``
from the SGX SDK crypto library.  This module reproduces that primitive:
CTR for confidentiality (vectorised, :mod:`repro.crypto.ctr`) and GHASH
over GF(2^128) for authenticity.

GHASH strategy: multiplication by the fixed hash subkey ``H`` is done with
per-key byte tables.  The 128 field elements ``B[k] = (1 << k) · H`` are
derived with 127 cheap "divide by x" steps, then the 16×256 table rows are
assembled with one XOR per entry, so per-message setup stays well under a
millisecond while bulk GHASH costs only 16 table lookups per block.

Both expensive setups are cached across records: an :class:`AesGcm`
instance builds its GHASH table once on first use (a channel endpoint
keeps one instance per direction for its whole life, so per-record cost
drops to the bulk work), and the one-shot :func:`seal`/:func:`open_`
helpers reuse a small keyed cipher cache instead of re-running the AES
key schedule and table build for every blob.
"""

from __future__ import annotations

from .aes import AES128, BLOCK_SIZE
from .constant_time import bytes_eq
from ..errors import CryptoError, IntegrityError

TAG_SIZE = 16
IV_SIZE = 12

_R = 0xE1000000000000000000000000000000
_MASK128 = (1 << 128) - 1


def gf_mult(x: int, y: int) -> int:
    """Bitwise GF(2^128) multiplication (NIST algorithm); used for tests
    and for table construction sanity checks."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z & _MASK128


# Table builds since import; the micro-bench asserts caching keeps this
# flat while record counts grow.
table_builds = 0


def _build_ghash_table(h: int) -> list[list[int]]:
    """Byte-indexed multiplication tables for the hash subkey ``h``."""
    global table_builds
    table_builds += 1
    b = [0] * 128  # b[k] = (1 << k) · h
    b[127] = h
    for k in range(126, -1, -1):
        v = b[k + 1]
        b[k] = ((v >> 1) ^ _R) if (v & 1) else (v >> 1)
    table: list[list[int]] = []
    for i in range(16):
        row = [0] * 256
        base = 8 * (15 - i)
        for byte in range(1, 256):
            low = byte & -byte  # lowest set bit
            row[byte] = row[byte ^ low] ^ b[base + low.bit_length() - 1]
        table.append(row)
    return table


class _Ghash:
    """Incremental GHASH accumulator for one hash subkey.

    ``table`` lets a long-lived cipher hand in its cached tables so a
    fresh accumulator per record costs two allocations, not a rebuild.
    """

    def __init__(self, h: int, table: list[list[int]] | None = None):
        self._table = table if table is not None else _build_ghash_table(h)
        self._y = 0
        self._pending = b""

    def update(self, data: bytes) -> None:
        buf = self._pending + data
        full = len(buf) - (len(buf) % BLOCK_SIZE)
        self._pending = buf[full:]
        y = self._y
        table = self._table
        for off in range(0, full, BLOCK_SIZE):
            y ^= int.from_bytes(buf[off:off + BLOCK_SIZE], "big")
            acc = 0
            for i in range(16):
                acc ^= table[i][(y >> (8 * (15 - i))) & 0xFF]
            y = acc
        self._y = y

    def pad_to_block(self) -> None:
        if self._pending:
            self.update(b"\x00" * (BLOCK_SIZE - len(self._pending)))

    def digest(self) -> bytes:
        if self._pending:
            raise CryptoError("GHASH digest with unpadded partial block")
        return self._y.to_bytes(16, "big")


class AesGcm:
    """AES-GCM-128 AEAD with 12-byte IVs and 16-byte tags.

    Mirrors the interface of the SGX SDK's ``sgx_rijndael128GCM_*``
    functions used by the paper's prototype.
    """

    def __init__(self, key: bytes):
        self._aes = AES128(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._table: list[list[int]] | None = None  # built on first record

    def _ghash(self) -> _Ghash:
        if self._table is None:
            self._table = _build_ghash_table(self._h)
        return _Ghash(self._h, self._table)

    def _j0(self, iv: bytes) -> bytes:
        if len(iv) == IV_SIZE:
            return iv + b"\x00\x00\x00\x01"
        g = self._ghash()
        g.update(iv)
        g.pad_to_block()
        g.update((len(iv) * 8).to_bytes(16, "big"))
        return g.digest()

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        g = self._ghash()
        g.update(aad)
        g.pad_to_block()
        g.update(ciphertext)
        g.pad_to_block()
        g.update((len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(8, "big"))
        s = g.digest()
        mask = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, mask))

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"") -> tuple[bytes, bytes]:
        """Return ``(ciphertext, tag)``."""
        from .ctr import ctr_transform

        if not iv:
            raise CryptoError("GCM requires a non-empty IV")
        j0 = self._j0(iv)
        ctr0 = j0[:12] + ((int.from_bytes(j0[12:], "big") + 1) % (1 << 32)).to_bytes(4, "big")
        ciphertext = ctr_transform(self._aes, ctr0, plaintext)
        return ciphertext, self._tag(j0, aad, ciphertext)

    def decrypt(self, iv: bytes, ciphertext: bytes, tag: bytes, aad: bytes = b"") -> bytes:
        """Verify ``tag`` and return the plaintext; raise IntegrityError on
        any mismatch (the ``⊥`` of the paper's Fig. 3)."""
        from .ctr import ctr_transform

        if not iv:
            raise CryptoError("GCM requires a non-empty IV")
        j0 = self._j0(iv)
        expected = self._tag(j0, aad, ciphertext)
        if len(tag) != TAG_SIZE or not bytes_eq(expected, tag):
            raise IntegrityError("GCM tag verification failed")
        ctr0 = j0[:12] + ((int.from_bytes(j0[12:], "big") + 1) % (1 << 32)).to_bytes(4, "big")
        return ctr_transform(self._aes, ctr0, ciphertext)


# Keyed cipher cache for the one-shot helpers.  Convergent (MLE) result
# keys repeat across PUT/GET of the same tag and channel record keys
# repeat for a connection's lifetime, so re-running the AES key schedule
# and the GHASH table build per blob was pure waste.  Bounded FIFO; the
# cache holds key material already present in process memory, so it adds
# no exposure beyond the caller's own key handling.
_CIPHER_CACHE: dict[bytes, AesGcm] = {}
_CIPHER_CACHE_MAX = 128


def _cipher_for(key: bytes) -> AesGcm:
    cipher = _CIPHER_CACHE.get(key)
    if cipher is None:
        if len(_CIPHER_CACHE) >= _CIPHER_CACHE_MAX:
            _CIPHER_CACHE.pop(next(iter(_CIPHER_CACHE)))
        cipher = _CIPHER_CACHE[key] = AesGcm(key)
    return cipher


def seal(key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """One-shot AEAD returning ``iv || tag || ciphertext`` as the paper's
    ``[res]`` notation (ciphertext covering auth code and IV)."""
    ct, tag = _cipher_for(key).encrypt(iv, plaintext, aad)
    return iv + tag + ct


def open_(key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Inverse of :func:`seal`; raises IntegrityError on tampering."""
    if len(sealed) < IV_SIZE + TAG_SIZE:
        raise IntegrityError("sealed blob too short")
    iv, tag, ct = sealed[:IV_SIZE], sealed[IV_SIZE:IV_SIZE + TAG_SIZE], sealed[IV_SIZE + TAG_SIZE:]
    return _cipher_for(key).decrypt(iv, ct, tag, aad)
