"""HKDF (RFC 5869) key derivation over HMAC-SHA-256.

Used to derive secure-channel session keys from the Diffie-Hellman shared
secret during the DedupRuntime ↔ ResultStore handshake, and to derive
sealing keys from the simulated platform root key.
"""

from __future__ import annotations

from .hashes import DIGEST_SIZE, hmac_sha256
from ..errors import CryptoError


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length <= 0 or length > 255 * DIGEST_SIZE:
        raise CryptoError(f"invalid HKDF output length {length}")
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        okm += block
        counter += 1
    return okm[:length]


def hkdf(ikm: bytes, salt: bytes = b"", info: bytes = b"", length: int = 32) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)
