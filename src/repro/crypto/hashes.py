"""Hash and MAC primitives used throughout SPEED.

The paper instantiates its collision-resistant ``Hash(·)`` with SHA-256
from the SGX SDK.  We use the interpreter's built-in SHA-256 (stdlib
``hashlib``) — the algorithm is identical, and the SGX-specific *cost* of
hashing inside an enclave is accounted separately by the cost model in
:mod:`repro.sgx.cost_model`.

``tagged_hash`` provides the domain-separated multi-input hash the paper
writes as ``Hash(func, m)`` and ``Hash(func, m, r)``: each component is
length-prefixed so distinct component tuples can never collide by
concatenation ambiguity (e.g. ``("ab","c")`` vs ``("a","bc")``).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

DIGEST_SIZE = 32


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 digest."""
    return hashlib.sha256(data).digest()


def tagged_hash(domain: bytes, *parts: bytes) -> bytes:
    """Domain-separated hash of a tuple of byte strings.

    Layout: ``SHA256(len(domain) || domain || len(p1) || p1 || ...)`` with
    8-byte big-endian length prefixes.  This is the concrete realisation of
    the paper's ``Hash(func, m)`` / ``Hash(func, m, r)``.
    """
    h = hashlib.sha256()
    h.update(len(domain).to_bytes(8, "big"))
    h.update(domain)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256, used for attestation reports and sealing MACs."""
    return _hmac.new(key, data, hashlib.sha256).digest()
