"""Finite-field Diffie-Hellman for the secure channel handshake.

The paper establishes a "secure channel" between each application's
DedupRuntime and the encrypted ResultStore (Fig. 1 / Algorithm 1, line 2).
On real SGX this rides on local attestation (``sgx_dh_*`` in the SDK,
which itself runs an ephemeral Diffie-Hellman).  We reproduce it with the
RFC 3526 2048-bit MODP group; the shared secret feeds HKDF to derive the
per-direction AES-GCM session keys in :mod:`repro.net.channel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drbg import HmacDrbg
from .hkdf import hkdf
from ..errors import CryptoError

# RFC 3526, group 14 (2048-bit MODP).
MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_2048_G = 2
_PRIVATE_BITS = 256


@dataclass(frozen=True)
class DhKeyPair:
    """An ephemeral DH key pair; ``public = g^private mod p``."""

    private: int
    public: int


def generate_keypair(drbg: HmacDrbg) -> DhKeyPair:
    """Sample a 256-bit private exponent and compute the public value."""
    private = int.from_bytes(drbg.generate(_PRIVATE_BITS // 8), "big") | 1
    public = pow(MODP_2048_G, private, MODP_2048_P)
    return DhKeyPair(private=private, public=public)


def _validate_public(public: int) -> None:
    if not (2 <= public <= MODP_2048_P - 2):
        raise CryptoError("DH public value out of range")


def shared_secret(own: DhKeyPair, peer_public: int) -> bytes:
    """Raw shared secret ``peer^private mod p`` as fixed-width bytes."""
    _validate_public(peer_public)
    secret = pow(peer_public, own.private, MODP_2048_P)
    if secret in (1, MODP_2048_P - 1):
        raise CryptoError("degenerate DH shared secret")
    return secret.to_bytes((MODP_2048_P.bit_length() + 7) // 8, "big")


def derive_session_keys(own: DhKeyPair, peer_public: int, transcript: bytes) -> tuple[bytes, bytes]:
    """Derive the (client→server, server→client) AES-128 session keys.

    Both sides bind the keys to the handshake ``transcript`` (the two
    public values plus the attestation reports) so a man-in-the-middle who
    substitutes a public value ends up with mismatching keys.
    """
    ikm = shared_secret(own, peer_public)
    okm = hkdf(ikm, salt=b"speed/channel", info=transcript, length=32)
    return okm[:16], okm[16:]
