"""Cryptographic substrate for the SPEED reproduction.

Everything the paper's prototype takes from the Intel SGX SDK crypto
library is implemented here from scratch: AES-128 (:mod:`.aes`), counter
mode (:mod:`.ctr`), AES-GCM AEAD (:mod:`.gcm`), SHA-256 helpers
(:mod:`.hashes`), HKDF (:mod:`.hkdf`), an HMAC-DRBG (:mod:`.drbg`),
finite-field Diffie-Hellman (:mod:`.dh`), and the MLE/RCE schemes the
cross-application design builds on (:mod:`.mle`).
"""

from .aes import AES128, BLOCK_SIZE, KEY_SIZE
from .constant_time import bytes_eq
from .ctr import ctr_transform
from .dh import DhKeyPair, derive_session_keys, generate_keypair, shared_secret
from .drbg import HmacDrbg
from .gcm import AesGcm, IV_SIZE, TAG_SIZE, open_, seal
from .hashes import DIGEST_SIZE, hmac_sha256, sha256, tagged_hash
from .hkdf import hkdf, hkdf_expand, hkdf_extract
from .sha256 import sha256_pure
from .mle import (
    ConvergentEncryption,
    MleCiphertext,
    RandomizedConvergentEncryption,
)

__all__ = [
    "AES128",
    "AesGcm",
    "BLOCK_SIZE",
    "ConvergentEncryption",
    "DIGEST_SIZE",
    "DhKeyPair",
    "HmacDrbg",
    "IV_SIZE",
    "KEY_SIZE",
    "MleCiphertext",
    "RandomizedConvergentEncryption",
    "TAG_SIZE",
    "bytes_eq",
    "ctr_transform",
    "derive_session_keys",
    "generate_keypair",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "open_",
    "seal",
    "sha256",
    "sha256_pure",
    "shared_secret",
    "tagged_hash",
]
