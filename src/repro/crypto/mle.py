"""Message-locked encryption primitives (Bellare-Keelveedhi-Ristenpart).

The paper builds its cross-application result protection on RCE
(randomized convergent encryption), the most efficient MLE construction
(§II-D, §III-C).  This module provides the *generic* MLE schemes over
plain messages; the computation-specific variant — where the key material
is locked to ``(func, m)`` instead of the message and hardened with the
store-kept challenge ``r`` — lives in :mod:`repro.core.scheme`.

Schemes
-------
``ConvergentEncryption``  (CE):  ``k = H(m)``; deterministic ciphertext.
``RandomizedConvergentEncryption`` (RCE): fresh random ``k`` encrypts
``m``; ``k`` is wrapped with the one-time pad ``H(m)``; the dedup tag is
``H(H(m))`` so the tag reveals nothing beyond equality.
"""

from __future__ import annotations

from dataclasses import dataclass

from .drbg import HmacDrbg
from .gcm import open_, seal
from .hashes import tagged_hash
from ..errors import CryptoError

KEY_SIZE = 16
IV_SIZE = 12


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise CryptoError("XOR operands must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))


@dataclass(frozen=True)
class MleCiphertext:
    """An MLE ciphertext: dedup tag, wrapped key, and sealed payload."""

    tag: bytes
    wrapped_key: bytes  # empty for plain CE
    sealed: bytes  # iv || gcm tag || ciphertext


class ConvergentEncryption:
    """Deterministic MLE: the key is the hash of the message itself."""

    def key(self, message: bytes) -> bytes:
        return tagged_hash(b"mle/ce/key", message)[:KEY_SIZE]

    def tag(self, message: bytes) -> bytes:
        return tagged_hash(b"mle/ce/tag", message)

    def encrypt(self, message: bytes) -> MleCiphertext:
        k = self.key(message)
        # Deterministic IV derived from the message keeps CE convergent.
        iv = tagged_hash(b"mle/ce/iv", message)[:IV_SIZE]
        return MleCiphertext(tag=self.tag(message), wrapped_key=b"", sealed=seal(k, iv, message))

    def decrypt(self, ct: MleCiphertext, message_hint: bytes) -> bytes:
        """CE decryption requires re-deriving the key from the message (or
        an out-of-band copy of the key); callers that own the message use
        it as the hint."""
        return open_(self.key(message_hint), ct.sealed)


class RandomizedConvergentEncryption:
    """RCE: randomized ciphertexts with deterministic tags (paper §II-D).

    ``encrypt`` picks a fresh ``k``, seals the message under it, and wraps
    ``k`` with the message-derived one-time pad ``H(m)``; anyone who owns
    ``m`` can unwrap.  The tag is a hash of the message-derived key so the
    server can deduplicate without learning ``m``.
    """

    def __init__(self, drbg: HmacDrbg):
        self._drbg = drbg

    def message_key(self, message: bytes) -> bytes:
        return tagged_hash(b"mle/rce/mkey", message)[:KEY_SIZE]

    def tag(self, message: bytes) -> bytes:
        return tagged_hash(b"mle/rce/tag", self.message_key(message))

    def encrypt(self, message: bytes) -> MleCiphertext:
        k = self._drbg.generate(KEY_SIZE)
        iv = self._drbg.generate(IV_SIZE)
        wrapped = _xor(k, self.message_key(message))
        return MleCiphertext(tag=self.tag(message), wrapped_key=wrapped, sealed=seal(k, iv, message))

    def decrypt(self, ct: MleCiphertext, message: bytes) -> bytes:
        """Unwrap with the message-derived pad and open the sealed payload;
        raises IntegrityError if the caller does not actually own ``m``."""
        k = _xor(ct.wrapped_key, self.message_key(message))
        return open_(k, ct.sealed)
