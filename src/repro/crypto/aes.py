"""AES-128 block cipher implemented from scratch.

The paper's prototype uses the AES implementation shipped with the Intel
SGX SDK.  We have no native crypto available in this environment, so this
module provides a self-contained AES-128 whose tables (S-box, inverse
S-box, GF(2^8) multiplication tables) are *derived at import time* from the
field definition rather than transcribed, which keeps the implementation
auditable and removes transcription risk.  Correctness is pinned to the
FIPS-197 vectors in the test suite.

Two execution paths are offered:

* :meth:`AES128.encrypt_block` / :meth:`AES128.decrypt_block` — scalar,
  single 16-byte block.
* :meth:`AES128.encrypt_blocks` — numpy-vectorised encryption of ``N``
  blocks at once, used by the CTR mode to reach usable throughput for the
  megabyte-sized results the paper's Fig. 6 sweeps over.
"""

from __future__ import annotations

import numpy as np

from ..errors import CryptoError

BLOCK_SIZE = 16
KEY_SIZE = 16
_NUM_ROUNDS = 10


def _xtime(b: int) -> int:
    """Multiply by x (0x02) in GF(2^8) with the AES polynomial 0x11B."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def _build_tables():
    """Derive all AES lookup tables from the GF(2^8) field definition."""
    # Discrete log tables over the generator 0x03.
    log = [0] * 256
    exp = [0] * 510
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x ^= _xtime(x)  # x *= 0x03
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    def gf_mul(a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return exp[log[a] + log[b]]

    sbox = [0] * 256
    for i in range(256):
        inv = 0 if i == 0 else exp[255 - log[i]]
        s = inv
        for shift in range(1, 5):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[i] = s ^ 0x63

    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i

    mul = {c: [gf_mul(i, c) for i in range(256)] for c in (2, 3, 9, 11, 13, 14)}
    return sbox, inv_sbox, mul


_SBOX_LIST, _INV_SBOX_LIST, _MUL = _build_tables()

SBOX = np.array(_SBOX_LIST, dtype=np.uint8)
INV_SBOX = np.array(_INV_SBOX_LIST, dtype=np.uint8)
_M2 = np.array(_MUL[2], dtype=np.uint8)
_M3 = np.array(_MUL[3], dtype=np.uint8)
_M9 = np.array(_MUL[9], dtype=np.uint8)
_M11 = np.array(_MUL[11], dtype=np.uint8)
_M13 = np.array(_MUL[13], dtype=np.uint8)
_M14 = np.array(_MUL[14], dtype=np.uint8)

# ShiftRows as a flat permutation of the 16-byte state.  Byte i of a block
# holds state cell (row i % 4, column i // 4); row r rotates left by r.
_SHIFT_ROWS = np.array(
    [(i % 4) + 4 * (((i // 4) + (i % 4)) % 4) for i in range(16)], dtype=np.intp
)
_INV_SHIFT_ROWS = np.empty(16, dtype=np.intp)
_INV_SHIFT_ROWS[_SHIFT_ROWS] = np.arange(16, dtype=np.intp)


def _expand_key(key: bytes) -> list[np.ndarray]:
    """FIPS-197 key expansion for AES-128: 11 round keys of 16 bytes."""
    rk = list(key)
    rcon = 1
    for i in range(4, 4 * (_NUM_ROUNDS + 1)):
        t = rk[4 * (i - 1):4 * i]
        if i % 4 == 0:
            t = t[1:] + t[:1]
            t = [_SBOX_LIST[b] for b in t]
            t[0] ^= rcon
            rcon = _xtime(rcon)
        rk.extend(rk[4 * (i - 4) + j] ^ t[j] for j in range(4))
    return [
        np.array(rk[16 * r:16 * (r + 1)], dtype=np.uint8)
        for r in range(_NUM_ROUNDS + 1)
    ]


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns over an (N, 16) state array."""
    v = state.reshape(-1, 4, 4)  # [block, column, row]
    b0, b1, b2, b3 = v[:, :, 0], v[:, :, 1], v[:, :, 2], v[:, :, 3]
    out = np.empty_like(v)
    out[:, :, 0] = _M2[b0] ^ _M3[b1] ^ b2 ^ b3
    out[:, :, 1] = b0 ^ _M2[b1] ^ _M3[b2] ^ b3
    out[:, :, 2] = b0 ^ b1 ^ _M2[b2] ^ _M3[b3]
    out[:, :, 3] = _M3[b0] ^ b1 ^ b2 ^ _M2[b3]
    return out.reshape(-1, 16)


def _inv_mix_columns(state: np.ndarray) -> np.ndarray:
    """InvMixColumns over an (N, 16) state array."""
    v = state.reshape(-1, 4, 4)
    b0, b1, b2, b3 = v[:, :, 0], v[:, :, 1], v[:, :, 2], v[:, :, 3]
    out = np.empty_like(v)
    out[:, :, 0] = _M14[b0] ^ _M11[b1] ^ _M13[b2] ^ _M9[b3]
    out[:, :, 1] = _M9[b0] ^ _M14[b1] ^ _M11[b2] ^ _M13[b3]
    out[:, :, 2] = _M13[b0] ^ _M9[b1] ^ _M14[b2] ^ _M11[b3]
    out[:, :, 3] = _M11[b0] ^ _M13[b1] ^ _M9[b2] ^ _M14[b3]
    return out.reshape(-1, 16)


class AES128:
    """AES-128 with precomputed round keys.

    Instances are immutable after construction and safe to share between
    the simulated enclave threads.
    """

    def __init__(self, key: bytes):
        if len(key) != KEY_SIZE:
            raise CryptoError(f"AES-128 requires a {KEY_SIZE}-byte key, got {len(key)}")
        self._round_keys = _expand_key(bytes(key))

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt an (N, 16) uint8 array of blocks; returns a new array."""
        if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
            raise CryptoError("encrypt_blocks expects an (N, 16) array")
        state = blocks.astype(np.uint8, copy=True)
        state ^= self._round_keys[0]
        for rnd in range(1, _NUM_ROUNDS):
            state = SBOX[state]
            state = state[:, _SHIFT_ROWS]
            state = _mix_columns(state)
            state ^= self._round_keys[rnd]
        state = SBOX[state]
        state = state[:, _SHIFT_ROWS]
        state ^= self._round_keys[_NUM_ROUNDS]
        return state

    def decrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Decrypt an (N, 16) uint8 array of blocks; returns a new array."""
        if blocks.ndim != 2 or blocks.shape[1] != BLOCK_SIZE:
            raise CryptoError("decrypt_blocks expects an (N, 16) array")
        state = blocks.astype(np.uint8, copy=True)
        state ^= self._round_keys[_NUM_ROUNDS]
        state = state[:, _INV_SHIFT_ROWS]
        state = INV_SBOX[state]
        for rnd in range(_NUM_ROUNDS - 1, 0, -1):
            state ^= self._round_keys[rnd]
            state = _inv_mix_columns(state)
            state = state[:, _INV_SHIFT_ROWS]
            state = INV_SBOX[state]
        state ^= self._round_keys[0]
        return state

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("block must be 16 bytes")
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        return self.encrypt_blocks(arr).tobytes()

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise CryptoError("block must be 16 bytes")
        arr = np.frombuffer(block, dtype=np.uint8).reshape(1, BLOCK_SIZE)
        return self.decrypt_blocks(arr).tobytes()
