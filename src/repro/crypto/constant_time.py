"""Constant-time comparison helpers.

The simulated enclave still follows cryptographic hygiene: tag and MAC
comparisons must not leak how many leading bytes matched.  CPython cannot
give hard constant-time guarantees, but :func:`hmac.compare_digest` is the
standard best-effort primitive and we centralise its use here.
"""

from __future__ import annotations

import hmac


def bytes_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on the first mismatch."""
    if not isinstance(a, (bytes, bytearray)) or not isinstance(b, (bytes, bytearray)):
        raise TypeError("bytes_eq() expects bytes-like arguments")
    return hmac.compare_digest(bytes(a), bytes(b))


def select(flag: bool, when_true: bytes, when_false: bytes) -> bytes:
    """Branch-free-style selection between two equal-length byte strings."""
    if len(when_true) != len(when_false):
        raise ValueError("select() requires equal-length alternatives")
    mask = 0xFF if flag else 0x00
    inv = mask ^ 0xFF
    return bytes((t & mask) | (f & inv) for t, f in zip(when_true, when_false))
