"""AES-128 counter mode, vectorised over whole messages.

CTR is the confidentiality half of GCM.  The keystream is produced by
encrypting a run of counter blocks in one numpy batch, which is what makes
the megabyte-scale result ciphertexts of the paper's Fig. 6 sweep feasible
in pure Python.
"""

from __future__ import annotations

import numpy as np

from .aes import AES128, BLOCK_SIZE
from ..errors import CryptoError


def _counter_blocks(initial: bytes, count: int) -> np.ndarray:
    """Build ``count`` counter blocks with GCM's inc32 on the last 4 bytes."""
    if len(initial) != BLOCK_SIZE:
        raise CryptoError("initial counter block must be 16 bytes")
    prefix = np.frombuffer(initial[:12], dtype=np.uint8)
    start = int.from_bytes(initial[12:], "big")
    counters = (start + np.arange(count, dtype=np.uint64)) % (1 << 32)
    blocks = np.empty((count, BLOCK_SIZE), dtype=np.uint8)
    blocks[:, :12] = prefix
    # Big-endian 32-bit counter in the last four bytes.
    blocks[:, 12] = (counters >> 24).astype(np.uint8)
    blocks[:, 13] = (counters >> 16).astype(np.uint8)
    blocks[:, 14] = (counters >> 8).astype(np.uint8)
    blocks[:, 15] = counters.astype(np.uint8)
    return blocks


def ctr_transform(cipher: AES128, initial_counter: bytes, data: bytes) -> bytes:
    """Encrypt or decrypt ``data`` (CTR is an involution) in one batch."""
    if not data:
        return b""
    n_blocks = (len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE
    keystream = cipher.encrypt_blocks(_counter_blocks(initial_counter, n_blocks))
    ks = keystream.reshape(-1)[: len(data)]
    buf = np.frombuffer(data, dtype=np.uint8)
    return (buf ^ ks).tobytes()
