"""Log-structured persistence for the ResultStore (``repro.durable``).

The paper's ResultStore keeps its metadata dictionary in enclave memory
and its ciphertexts in untrusted RAM; a real power failure discards both.
This package gives a store a durable half, following the shape of
production enclave key-value stores:

* :mod:`repro.durable.wal` — a sealed, MAC-chained write-ahead log.
  Every accepted PUT/evict/discard appends a record to an in-enclave
  buffer; ``commit()`` seals the buffer as one segment (group commit —
  one seal AEAD pass amortized over the batch, charged to the virtual
  clock) and extends a hash chain that binds segment order.
* :mod:`repro.durable.checkpoint` — periodically folds the log into a
  sealed whole-store snapshot (reusing the :mod:`repro.store.persistence`
  serialization) and truncates the covered segments.
* :mod:`repro.durable.recovery` — restores the checkpoint, replays the
  chain-verified log tail, and reports what it found (torn tails, chain
  breaks, missing blobs) as a structured :class:`RecoveryReport`.

The durable artifacts — sealed segments, the sealed checkpoint, and the
logged ciphertexts — live on the untrusted host ("disk") and survive
:meth:`~repro.store.resultstore.ResultStore.power_fail`; everything else
is wiped.  Because the store commits its log before a reply leaves the
machine, every *acknowledged* PUT is durable by construction.
"""

from .checkpoint import CheckpointImage, maybe_checkpoint, take_checkpoint
from .recovery import RecoveryReport, recover_store
from .wal import DurableLog, WalConfig, WalRecord, WalSegment

__all__ = [
    "CheckpointImage",
    "DurableLog",
    "RecoveryReport",
    "WalConfig",
    "WalRecord",
    "WalSegment",
    "maybe_checkpoint",
    "recover_store",
    "take_checkpoint",
]
