"""Crash recovery: checkpoint restore plus chain-verified log replay.

Recovery rebuilds a store's volatile state exclusively from the durable
artifacts a power failure leaves behind:

1. unseal the checkpoint (if any) and repopulate the dictionary, blob
   arena, quota usage, and eviction-policy state from it;
2. walk the sealed segments in order, verifying that each one unseals,
   that its embedded predecessor-chain value matches the running chain,
   and that its first sequence number is the one expected;
3. replay the records — re-inserting logged PUTs (their ciphertexts come
   from the durable blob area and are digest-checked first) and
   re-applying logged evictions/discards;
4. fold the recovered state into a fresh checkpoint, so the durable
   artifacts and enclave memory agree from a clean anchor.

Verification failures are classified, not fatal: an unsealable *final*
segment is a **torn tail** (indistinguishable from a crash mid-commit)
and is dropped; an unsealable or mis-chained earlier segment is a
**chain break** — committed history the host lost or tampered with —
which stops replay at the break.  Both are surfaced in the
:class:`RecoveryReport` and the ``durable.*`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from .checkpoint import checkpoint_counter_id, decode_checkpoint
from .wal import (
    GENESIS_CHAIN,
    REC_MIGRATE_BEGIN,
    REC_MIGRATE_COMMIT,
    REC_MIGRATE_END,
    REC_PUT,
    REC_REMOVE,
    REC_TOUCH,
    chain_step,
    decode_segment,
)
from ..errors import RollbackError, SealingError, SerializationError, StoreError
from ..report import ReportMixin


@dataclass(frozen=True)
class RecoveryReport(ReportMixin):
    """What one recovery found and rebuilt."""

    entries_restored: int      # entries repopulated from the checkpoint
    records_replayed: int      # log records applied after the checkpoint
    puts_replayed: int
    removes_replayed: int
    segments_replayed: int
    records_dropped: int       # records lost to torn tails / chain breaks
    torn_tail: bool
    chain_broken: bool
    blobs_missing: int         # PUT records whose ciphertext failed its digest
    checkpoint_seq: int
    touches_replayed: int = 0  # GET-recency marks re-applied
    migrate_marks_replayed: int = 0
    rollback_detected: bool = False


def recover_store(store) -> RecoveryReport:
    """Rebuild ``store`` from its durable log; returns the report."""
    if store.durable is None:
        raise StoreError("recovery requires a durable-mode store")
    if store.enclave is not None and not store.enclave.inside:
        with store.enclave.ecall("durable_recover"):
            return recover_store(store)
    from .checkpoint import take_checkpoint
    from ..store.metadata import blob_digest
    from ..store.persistence import apply_snapshot_payload

    log = store.durable
    clock = store.platform.clock
    suspended = store._durable_suspended
    store._durable_suspended = True  # replay must not re-log itself
    try:
        with store.tracer.span("durable.recover", clock=clock) as span:
            entries_restored = 0
            expected_seq = 1
            running = GENESIS_CHAIN
            checkpoint_seq = 0
            rollback_detected = False
            if log.checkpoint is not None:
                payload = store.enclave.unseal(log.checkpoint.sealed)
                seq, chain, counter, snapshot_payload = decode_checkpoint(payload)
                # Whole-state rollback check: each checkpoint seals the
                # hardware monotonic-counter value it bumped to.  An
                # embedded value behind the hardware counter means the
                # host presented a stale (but individually authentic)
                # image + log pair.
                hardware = store.platform.monotonic_read(checkpoint_counter_id(store))
                if counter < hardware:
                    rollback_detected = True
                    log.rollback_detected += 1
                    span.mark("rollback_detected")
                    if store.config.strict_rollback:
                        raise RollbackError(
                            f"checkpoint counter {counter} behind hardware "
                            f"counter {hardware}: stale sealed state presented"
                        )
                entries_restored = apply_snapshot_payload(store, snapshot_payload)
                expected_seq = seq + 1
                running = chain
                checkpoint_seq = seq

            puts = removes = touches = migrates = blobs_missing = segments_ok = 0
            torn_tail = chain_broken = False
            stop_index = len(log.segments)
            for index, segment in enumerate(log.segments):
                try:
                    payload = store.enclave.unseal(segment.sealed)
                    prev_chain, first_seq, records = decode_segment(payload)
                except (SealingError, SerializationError, StoreError):
                    if index == len(log.segments) - 1:
                        torn_tail = True
                    else:
                        chain_broken = True
                    stop_index = index
                    break
                if prev_chain != running or first_seq != expected_seq:
                    chain_broken = True
                    stop_index = index
                    break
                # Chain verification is free: the unseal above already
                # authenticated the embedded prev_chain token.
                running = chain_step(segment.sealed.payload)
                for record in records:
                    if record.kind == REC_PUT:
                        blob = log.blob_area.get(record.blob_digest)
                        if blob is not None:
                            clock.charge_hash(len(blob))
                        if blob is None or blob_digest(blob) != record.blob_digest:
                            blobs_missing += 1
                        elif store.replay_insert(record, blob):
                            puts += 1
                    elif record.kind == REC_REMOVE:
                        entry = store.metadata_entry(record.tag)
                        if entry is not None:
                            store._evict_entry(entry)
                            removes += 1
                    elif record.kind == REC_TOUCH:
                        if store.replay_touch(record):
                            touches += 1
                    elif record.kind in (
                        REC_MIGRATE_BEGIN, REC_MIGRATE_COMMIT, REC_MIGRATE_END
                    ):
                        store._note_migrate(record)
                        migrates += 1
                expected_seq += len(records)
                segments_ok += 1

            records_dropped = sum(
                segment.n_records for segment in log.segments[stop_index:]
            )
            log.resume_from(expected_seq, running)
            log.recoveries += 1
            replayed = puts + removes + touches + migrates + blobs_missing
            log.records_replayed += replayed
            if torn_tail:
                log.torn_segments += 1
            if chain_broken:
                log.chain_breaks += 1
            report = RecoveryReport(
                entries_restored=entries_restored,
                records_replayed=replayed,
                puts_replayed=puts,
                removes_replayed=removes,
                segments_replayed=segments_ok,
                records_dropped=records_dropped,
                torn_tail=torn_tail,
                chain_broken=chain_broken,
                blobs_missing=blobs_missing,
                checkpoint_seq=checkpoint_seq,
                touches_replayed=touches,
                migrate_marks_replayed=migrates,
                rollback_detected=rollback_detected,
            )
            span.set("entries_restored", entries_restored)
            span.set("records_replayed", report.records_replayed)
            # Fold everything just rebuilt into a fresh anchor: the torn or
            # broken artifacts are discarded and logging resumes cleanly.
            take_checkpoint(store)
            # The fold dropped any MIGRATE_* marks for a still-open
            # hand-off; re-log them so a second crash before MIGRATE_END
            # still recovers the migration's progress.
            store._relog_open_migrations()
    finally:
        store._durable_suspended = suspended
    store.stats.recoveries += 1
    store.stats.restored_entries += entries_restored + puts
    return report
