"""Folding the write-ahead log into a sealed checkpoint.

A checkpoint is a whole-store snapshot — the same serialization
:func:`repro.store.persistence.snapshot_store` uses — sealed under the
MRSIGNER policy together with the log position it folds in: the last
covered WAL sequence number and the chain head at that point.  Binding
``(seq, chain)`` *inside* the sealed payload means the host cannot pair
an old checkpoint with an unrelated log tail; recovery trusts only the
embedded anchor.  (Rolling the *pair* back together — checkpoint plus
its whole tail — is the classic enclave rollback attack and needs a
hardware monotonic counter, which this simulation leaves out of scope.)

After sealing, the covered segments and their blob-area copies are
dropped: checkpointing doubles as log compaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StoreError
from ..net.framing import FieldReader, FieldWriter
from ..sgx.sealing import SealedBlob, SealPolicy

CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CheckpointImage:
    """One sealed checkpoint — host-durable, opaque to the host."""

    seq: int            # last WAL record sequence folded in (0 = none)
    chain: bytes        # chain head at that point (also sealed inside)
    sealed: SealedBlob


def encode_checkpoint(seq: int, chain: bytes, snapshot_payload: bytes) -> bytes:
    writer = FieldWriter()
    writer.u32(CHECKPOINT_VERSION)
    writer.u64(seq)
    writer.blob(chain)
    writer.blob(snapshot_payload)
    return writer.getvalue()


def decode_checkpoint(payload: bytes) -> tuple[int, bytes, bytes]:
    reader = FieldReader(payload)
    version = reader.u32()
    if version != CHECKPOINT_VERSION:
        raise StoreError(f"unsupported checkpoint version {version}")
    seq = reader.u64()
    chain = reader.blob()
    snapshot_payload = reader.blob()
    reader.expect_end()
    return seq, chain, snapshot_payload


def take_checkpoint(store) -> CheckpointImage:
    """Commit the log, seal the store's full state with the log anchor,
    and truncate the folded segments.  Returns the new image."""
    if store.durable is None:
        raise StoreError("checkpointing requires a durable-mode store")
    if store.enclave is not None and not store.enclave.inside:
        with store.enclave.ecall("durable_checkpoint"):
            return take_checkpoint(store)
    from ..store.persistence import serialize_store_payload

    log = store.durable
    log.commit()
    clock = store.platform.clock
    with store.tracer.span("durable.checkpoint", clock=clock) as span:
        seq = log.next_seq - 1
        chain = log.chain
        payload = encode_checkpoint(seq, chain, serialize_store_payload(store))
        sealed = store.enclave.seal(payload, SealPolicy.MRSIGNER)
        image = CheckpointImage(seq=seq, chain=chain, sealed=sealed)
        log.install_checkpoint(image)
        span.set("seq", seq)
        span.set("bytes", len(sealed.payload))
    return image


def maybe_checkpoint(store) -> CheckpointImage | None:
    """Checkpoint iff the log has grown past its configured interval."""
    log = store.durable
    if log is not None and log.needs_checkpoint():
        return take_checkpoint(store)
    return None
