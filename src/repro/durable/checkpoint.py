"""Folding the write-ahead log into a sealed checkpoint.

A checkpoint is a whole-store snapshot — the same serialization
:func:`repro.store.persistence.snapshot_store` uses — sealed under the
MRSIGNER policy together with the log position it folds in: the last
covered WAL sequence number and the chain head at that point.  Binding
``(seq, chain)`` *inside* the sealed payload means the host cannot pair
an old checkpoint with an unrelated log tail; recovery trusts only the
embedded anchor.

Rolling the *pair* back together — an old checkpoint plus its whole log
tail, each individually authentic — is the classic enclave rollback
attack.  Every checkpoint therefore bumps the platform's hardware
monotonic counter and seals the new value inside the image; recovery
compares the embedded value against the hardware counter and flags any
shortfall as a whole-state rollback (``durable.rollback_detected``,
hard :class:`~repro.errors.RollbackError` under
``StoreConfig(strict_rollback=True)``).

After sealing, the covered segments and their blob-area copies are
dropped: checkpointing doubles as log compaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StoreError
from ..net.framing import FieldReader, FieldWriter
from ..sgx.sealing import SealedBlob, SealPolicy

CHECKPOINT_VERSION = 2


def checkpoint_counter_id(store) -> bytes:
    """The hardware monotonic counter anchoring one store's checkpoints."""
    return b"speed/wal/" + store.address.encode()


@dataclass(frozen=True)
class CheckpointImage:
    """One sealed checkpoint — host-durable, opaque to the host."""

    seq: int            # last WAL record sequence folded in (0 = none)
    chain: bytes        # chain head at that point (also sealed inside)
    sealed: SealedBlob


def encode_checkpoint(
    seq: int, chain: bytes, counter: int, snapshot_payload: bytes
) -> bytes:
    writer = FieldWriter()
    writer.u32(CHECKPOINT_VERSION)
    writer.u64(seq)
    writer.blob(chain)
    writer.u64(counter)
    writer.blob(snapshot_payload)
    return writer.getvalue()


def decode_checkpoint(payload: bytes) -> tuple[int, bytes, int, bytes]:
    reader = FieldReader(payload)
    version = reader.u32()
    if version != CHECKPOINT_VERSION:
        raise StoreError(f"unsupported checkpoint version {version}")
    seq = reader.u64()
    chain = reader.blob()
    counter = reader.u64()
    snapshot_payload = reader.blob()
    reader.expect_end()
    return seq, chain, counter, snapshot_payload


def take_checkpoint(store) -> CheckpointImage:
    """Commit the log, seal the store's full state with the log anchor,
    and truncate the folded segments.  Returns the new image."""
    if store.durable is None:
        raise StoreError("checkpointing requires a durable-mode store")
    if store.enclave is not None and not store.enclave.inside:
        with store.enclave.ecall("durable_checkpoint"):
            return take_checkpoint(store)
    from ..store.persistence import serialize_store_payload

    log = store.durable
    log.commit()
    clock = store.platform.clock
    with store.tracer.span("durable.checkpoint", clock=clock) as span:
        seq = log.next_seq - 1
        chain = log.chain
        # Anchor this image against rollback: the hardware counter is
        # bumped first, so every older sealed image is now visibly stale.
        counter = store.platform.monotonic_increment(checkpoint_counter_id(store))
        payload = encode_checkpoint(seq, chain, counter, serialize_store_payload(store))
        sealed = store.enclave.seal(payload, SealPolicy.MRSIGNER)
        image = CheckpointImage(seq=seq, chain=chain, sealed=sealed)
        log.install_checkpoint(image)
        span.set("seq", seq)
        span.set("bytes", len(sealed.payload))
    return image


def maybe_checkpoint(store) -> CheckpointImage | None:
    """Checkpoint iff the log has grown past its configured interval.

    Deferred while a migration hand-off is open on this shard: folding
    the log would drop the MIGRATE_* marks a mid-migration recovery
    needs, so compaction waits for MIGRATE_END (the window is bounded by
    the migration itself).
    """
    log = store.durable
    if log is not None and log.needs_checkpoint() and not store.migration_open:
        return take_checkpoint(store)
    return None
