"""The sealed, MAC-chained write-ahead log.

One :class:`DurableLog` serves one ResultStore.  It has two halves:

* a **volatile** half living in enclave memory — the record buffer and
  the running chain head — which a power failure destroys;
* a **durable** half living on the untrusted host ("disk") — the sealed
  segments, the sealed checkpoint, and the blob area — which survives.

Records describe metadata mutations only.  A PUT record carries the
entry fields the enclave must protect (challenge ``r``, wrapped key
``[k]``) plus the blob digest that pins the ciphertext; the ciphertext
itself is *not* re-encrypted — it is already AEAD ciphertext under the
application's key and lives outside the enclave by design (§IV-B), so
the log writes it through to the durable blob area as-is and the sealed
digest detects any at-rest tampering during recovery.

Group commit: appends only buffer; :meth:`DurableLog.commit` seals the
whole buffer as a single segment, paying one seal AEAD pass for the
batch.  Each segment embeds the chain token of its predecessor — the
predecessor's 28-byte seal header (``iv || tag``), which the seal's own
AEAD tag already authenticates, so chaining costs no hash beyond the
seal itself — and a host that drops, reorders, or substitutes a
committed middle segment is caught at recovery as a chain break.  A corrupted or half-written *last*
segment is indistinguishable from a crash mid-commit and is dropped as a
torn tail — exactly the un-acked-write ambiguity real logs have.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StoreError
from ..net.framing import FieldReader, FieldWriter
from ..obs.tracer import NULL_TRACER
from ..sgx.sealing import SealedBlob, SealPolicy

WAL_FORMAT_VERSION = 2
GENESIS_CHAIN = b"\x00" * 32

#: Record kinds.
REC_PUT = 1
REC_REMOVE = 2
#: Tag-range migration hand-off marks (cluster resharding).  BEGIN/END
#: bracket one shard's participation in a migration; one RANGE_COMMIT is
#: logged per handed-off range — on the destination after the range's
#: entries are durably ingested, on the source right before its stale
#: copies are discarded.  Replay rebuilds the shard's view of which
#: ranges were already handed off, so a power failure on either side
#: mid-migration recovers to a consistent ownership map.
REC_MIGRATE_BEGIN = 3
REC_MIGRATE_COMMIT = 4
REC_MIGRATE_END = 5
#: Coalesced GET-recency mark: the entry's hit counter at log time, so
#: restored LRU/LFU order also reflects reads served after the last
#: checkpoint (logged every ``recency_log_interval`` hits).
REC_TOUCH = 6

#: Removal subkinds (reporting only; both replay identically).
REMOVE_EVICT = 0
REMOVE_DISCARD = 1

#: Migration roles.
MIGRATE_SOURCE = 0
MIGRATE_DEST = 1


@dataclass(frozen=True)
class WalConfig:
    """Durability knobs for one store's log."""

    #: Seal the buffer whenever it reaches this many records even
    #: mid-request; the store always commits at the end of each served
    #: request anyway, so acks stay durable at any setting.
    group_commit_records: int = 8
    #: Fold the log into a sealed checkpoint once this many committed
    #: records accumulate.
    checkpoint_interval_records: int = 256


@dataclass(frozen=True)
class WalRecord:
    """One logged metadata mutation."""

    kind: int
    tag: bytes
    challenge: bytes = b""
    wrapped_key: bytes = b""
    blob_digest: bytes = b""
    size: int = 0
    app_id: str = ""
    subkind: int = 0
    # REC_TOUCH: the entry's hit count when the mark was logged.
    hits: int = 0
    # REC_MIGRATE_*: migration identity and the handed-off ring range.
    migration_id: str = ""
    range_lo: int = 0
    range_hi: int = 0
    peer: str = ""
    role: int = MIGRATE_SOURCE


@dataclass(frozen=True)
class WalSegment:
    """One committed segment — host-durable, opaque to the host."""

    first_seq: int
    n_records: int
    chain: bytes        # chain head after folding this segment in
    sealed: SealedBlob


def _encode_records(writer: FieldWriter, records) -> None:
    writer.u32(len(records))
    for record in records:
        writer.u8(record.kind)
        writer.blob(record.tag)
        if record.kind == REC_PUT:
            writer.blob(record.challenge)
            writer.blob(record.wrapped_key)
            writer.blob(record.blob_digest)
            writer.u64(record.size)
            writer.text(record.app_id)
        elif record.kind == REC_REMOVE:
            writer.u8(record.subkind)
        elif record.kind == REC_TOUCH:
            writer.u64(record.hits)
        elif record.kind in (REC_MIGRATE_BEGIN, REC_MIGRATE_COMMIT, REC_MIGRATE_END):
            writer.text(record.migration_id)
            writer.u64(record.range_lo)
            writer.u64(record.range_hi)
            writer.text(record.peer)
            writer.u8(record.role)
        else:
            raise StoreError(f"unknown WAL record kind {record.kind}")


def encode_segment(prev_chain: bytes, first_seq: int, records) -> bytes:
    """Serialize one segment's plaintext (sealed before leaving the
    enclave).  The predecessor's chain value rides inside the sealed
    payload, so segment order is bound by the seal itself."""
    writer = FieldWriter()
    writer.u32(WAL_FORMAT_VERSION)
    writer.blob(prev_chain)
    writer.u64(first_seq)
    _encode_records(writer, records)
    return writer.getvalue()


def decode_segment(payload: bytes) -> tuple[bytes, int, list[WalRecord]]:
    """Parse one unsealed segment payload back into records."""
    reader = FieldReader(payload)
    version = reader.u32()
    # v1 segments (PUT/REMOVE only) decode identically; v2 added the
    # migration and touch record kinds.
    if version not in (1, WAL_FORMAT_VERSION):
        raise StoreError(f"unsupported WAL segment version {version}")
    prev_chain = reader.blob()
    first_seq = reader.u64()
    records = []
    for _ in range(reader.u32()):
        kind = reader.u8()
        tag = reader.blob()
        if kind == REC_PUT:
            records.append(WalRecord(
                kind=kind,
                tag=tag,
                challenge=reader.blob(),
                wrapped_key=reader.blob(),
                blob_digest=reader.blob(),
                size=reader.u64(),
                app_id=reader.text(),
            ))
        elif kind == REC_REMOVE:
            records.append(WalRecord(kind=kind, tag=tag, subkind=reader.u8()))
        elif kind == REC_TOUCH:
            records.append(WalRecord(kind=kind, tag=tag, hits=reader.u64()))
        elif kind in (REC_MIGRATE_BEGIN, REC_MIGRATE_COMMIT, REC_MIGRATE_END):
            records.append(WalRecord(
                kind=kind,
                tag=tag,
                migration_id=reader.text(),
                range_lo=reader.u64(),
                range_hi=reader.u64(),
                peer=reader.text(),
                role=reader.u8(),
            ))
        else:
            raise StoreError(f"unknown WAL record kind {kind}")
    reader.expect_end()
    return prev_chain, first_seq, records


#: The sealed payload layout is ``iv(12) || tag(16) || ct`` — the first
#: 28 bytes are a compact, unforgeable identifier of the whole segment.
SEAL_HEADER_BYTES = 28


def chain_step(sealed_payload: bytes) -> bytes:
    """The chain token after one sealed segment: its seal header.

    No extra hash is needed to link segments.  Each segment seals its
    predecessor's chain token *inside* the AEAD payload, and the seal
    tag authenticates that payload — so the 28-byte ``iv || tag`` header
    already binds both the segment's records and its position in the
    chain.  Committing pays only the seal; recovery verifies the chain
    for free with the unseal it performs anyway.
    """
    return sealed_payload[:SEAL_HEADER_BYTES]


class DurableLog:
    """Write-ahead log + durable artifacts for one ResultStore."""

    def __init__(self, enclave, config: WalConfig | None = None, tracer=NULL_TRACER):
        self.enclave = enclave
        self.config = config or WalConfig()
        self.tracer = NULL_TRACER if tracer is None else tracer
        # -- durable half (survives power_fail) ---------------------------
        self.segments: list[WalSegment] = []
        self.blob_area: dict[bytes, bytes] = {}   # blob digest -> ciphertext
        self.checkpoint = None                    # CheckpointImage | None
        # -- volatile half (wiped by power_fail) --------------------------
        self._buffer: list[WalRecord] = []
        self._chain = GENESIS_CHAIN
        self._next_seq = 1
        # -- counters -----------------------------------------------------
        self.appends = 0
        self.commits = 0
        self.records_logged = 0
        self.log_bytes = 0
        self.checkpoints = 0
        self.recoveries = 0
        self.records_replayed = 0
        self.torn_segments = 0
        self.chain_breaks = 0
        self.power_failures = 0
        self.rollback_detected = 0

    # -- appending (inside the store enclave) -----------------------------
    def append_put(self, entry, sealed_result: bytes) -> None:
        """Log one accepted PUT and write its ciphertext through to the
        durable blob area (a host-side copy, like any blob leaving the
        enclave's control)."""
        clock = self.enclave.platform.clock
        with self.tracer.span(
            "durable.wal_append", clock=clock, kind="put", bytes=len(sealed_result)
        ):
            clock.charge_marshal(len(sealed_result))
            self.blob_area[entry.blob_digest] = bytes(sealed_result)
            self._append(WalRecord(
                kind=REC_PUT,
                tag=entry.tag,
                challenge=entry.challenge,
                wrapped_key=entry.wrapped_key,
                blob_digest=entry.blob_digest,
                size=entry.size,
                app_id=entry.app_id,
            ))

    def append_remove(self, tag: bytes, discard: bool = False) -> None:
        """Log one eviction (or migration discard) by tag."""
        with self.tracer.span(
            "durable.wal_append", clock=self.enclave.platform.clock, kind="remove"
        ):
            self._append(WalRecord(
                kind=REC_REMOVE,
                tag=tag,
                subkind=REMOVE_DISCARD if discard else REMOVE_EVICT,
            ))

    def append_touch(self, tag: bytes, hits: int) -> None:
        """Log one coalesced GET-recency mark (every Nth hit on a tag)."""
        with self.tracer.span(
            "durable.wal_append", clock=self.enclave.platform.clock, kind="touch"
        ):
            self._append(WalRecord(kind=REC_TOUCH, tag=tag, hits=hits))

    def append_migrate(
        self,
        kind: int,
        migration_id: str,
        range_lo: int = 0,
        range_hi: int = 0,
        peer: str = "",
        role: int = MIGRATE_SOURCE,
    ) -> None:
        """Log one migration hand-off mark (BEGIN / RANGE_COMMIT / END)."""
        if kind not in (REC_MIGRATE_BEGIN, REC_MIGRATE_COMMIT, REC_MIGRATE_END):
            raise StoreError(f"not a migration record kind: {kind}")
        with self.tracer.span(
            "durable.wal_append", clock=self.enclave.platform.clock, kind="migrate"
        ):
            self._append(WalRecord(
                kind=kind,
                tag=b"",
                migration_id=migration_id,
                range_lo=range_lo,
                range_hi=range_hi,
                peer=peer,
                role=role,
            ))

    def _append(self, record: WalRecord) -> None:
        self._buffer.append(record)
        self.appends += 1
        if len(self._buffer) >= self.config.group_commit_records:
            self.commit()

    def commit(self) -> int:
        """Seal the buffered records as one segment; returns how many
        became durable.  Must run inside the store enclave (the seal key
        is only available there)."""
        if not self._buffer:
            return 0
        clock = self.enclave.platform.clock
        with self.tracer.span(
            "durable.wal_commit", clock=clock, records=len(self._buffer)
        ):
            payload = encode_segment(self._chain, self._next_seq, self._buffer)
            sealed = self.enclave.seal(payload, SealPolicy.MRSIGNER)
            self._chain = chain_step(sealed.payload)
            committed = len(self._buffer)
            self.segments.append(WalSegment(
                first_seq=self._next_seq,
                n_records=committed,
                chain=self._chain,
                sealed=sealed,
            ))
            self._next_seq += committed
            self._buffer.clear()
            self.commits += 1
            self.records_logged += committed
            self.log_bytes += len(sealed.payload)
        return committed

    # -- state ------------------------------------------------------------
    @property
    def pending_records(self) -> int:
        return len(self._buffer)

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def chain(self) -> bytes:
        return self._chain

    def records_in_log(self) -> int:
        return sum(segment.n_records for segment in self.segments)

    def needs_checkpoint(self) -> bool:
        return self.records_in_log() >= self.config.checkpoint_interval_records

    # -- lifecycle --------------------------------------------------------
    def power_fail(self) -> None:
        """Lose the volatile half: uncommitted records and the running
        chain head.  The durable artifacts are untouched; recovery
        re-derives the chain from the checkpoint anchor."""
        self._buffer.clear()
        self._chain = GENESIS_CHAIN
        self._next_seq = 1
        self.power_failures += 1

    def install_checkpoint(self, image) -> None:
        """Adopt a fresh checkpoint: it covers every committed record, so
        the segments it folded in and the blob copies they referenced are
        dropped (compaction)."""
        if self._buffer:
            raise StoreError("checkpoint requires a committed (empty) buffer")
        self.checkpoint = image
        self.segments.clear()
        self.blob_area.clear()
        self.checkpoints += 1

    def resume_from(self, seq: int, chain: bytes) -> None:
        """Point the volatile half at the recovered position so normal
        logging continues the chain recovery verified."""
        self._next_seq = seq
        self._chain = chain

    # -- observability ----------------------------------------------------
    def snapshot(self) -> dict:
        """Canonical ``durable.*`` counters (merged into the store's)."""
        return {
            "durable.appends": self.appends,
            "durable.commits": self.commits,
            "durable.records_logged": self.records_logged,
            "durable.log_bytes": self.log_bytes,
            "durable.segments": len(self.segments),
            "durable.pending_records": self.pending_records,
            "durable.blob_area_bytes": sum(len(b) for b in self.blob_area.values()),
            "durable.checkpoints": self.checkpoints,
            "durable.recoveries": self.recoveries,
            "durable.records_replayed": self.records_replayed,
            "durable.torn_segments": self.torn_segments,
            "durable.chain_breaks": self.chain_breaks,
            "durable.power_failures": self.power_failures,
            "durable.rollback_detected": self.rollback_detected,
        }
