"""Exception hierarchy for the SPEED reproduction.

Every error raised by this library derives from :class:`SpeedError`, so a
caller can catch one type at an application boundary.  Subsystems define
narrower types here (rather than locally) to avoid import cycles between
the crypto, SGX-simulator, network, store, and runtime packages.
"""

from __future__ import annotations


class SpeedError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(SpeedError):
    """A cryptographic operation failed (bad key/IV size, internal error)."""


class IntegrityError(CryptoError):
    """An authenticated-decryption or MAC check failed.

    Corresponds to the ``⊥`` symbol in Fig. 3 of the paper: the attempted
    decryption did not pass the authenticity check.
    """


class EnclaveError(SpeedError):
    """Violation of the simulated SGX enclave semantics."""


class EnclaveMemoryError(EnclaveError):
    """The enclave ran out of (simulated) EPC and paging is disabled."""


class AttestationError(EnclaveError):
    """Local or remote attestation failed (bad measurement or MAC)."""


class SealingError(EnclaveError):
    """Unsealing failed: wrong enclave identity or corrupted blob."""


class TransportError(SpeedError):
    """The simulated transport could not deliver a message."""


class ChannelError(SpeedError):
    """Secure-channel handshake or record protection failed."""


class ProtocolError(SpeedError):
    """A malformed or unexpected wire message was received."""


class SerializationError(SpeedError):
    """A value could not be serialized or deserialized by a parser."""


class StoreError(SpeedError):
    """The encrypted ResultStore rejected or could not serve a request."""


class QuotaExceededError(StoreError):
    """An application exceeded its PUT quota (DoS mitigation, paper III-D)."""


class DedupError(SpeedError):
    """The DedupRuntime could not complete a deduplicated call."""


class VerificationError(DedupError):
    """The Fig. 3 verification protocol rejected a stored result."""
