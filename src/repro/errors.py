"""Exception hierarchy for the SPEED reproduction.

Every error raised by this library derives from :class:`SpeedError`, so a
caller can catch one type at an application boundary.  Subsystems define
narrower types here (rather than locally) to avoid import cycles between
the crypto, SGX-simulator, network, store, and runtime packages.

Every class carries a stable, machine-readable ``code`` (snake_case,
unique across the hierarchy).  Wire-level failure annotations — the
``reason`` field of :class:`~repro.net.messages.GetResponse` /
:class:`~repro.net.messages.PutResponse` — carry these codes instead of
free-form prose, so a client can switch on the failure kind without
string matching.  :func:`error_for_code` maps a code back to its class.
"""

from __future__ import annotations


class SpeedError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable identifier for this failure kind.
    code = "speed_error"


class CryptoError(SpeedError):
    """A cryptographic operation failed (bad key/IV size, internal error)."""

    code = "crypto_error"


class IntegrityError(CryptoError):
    """An authenticated-decryption or MAC check failed.

    Corresponds to the ``⊥`` symbol in Fig. 3 of the paper: the attempted
    decryption did not pass the authenticity check.
    """

    code = "integrity_error"


class EnclaveError(SpeedError):
    """Violation of the simulated SGX enclave semantics."""

    code = "enclave_error"


class EnclaveMemoryError(EnclaveError):
    """The enclave ran out of (simulated) EPC and paging is disabled."""

    code = "enclave_memory"


class AttestationError(EnclaveError):
    """Local or remote attestation failed (bad measurement or MAC)."""

    code = "attestation_failed"


class SealingError(EnclaveError):
    """Unsealing failed: wrong enclave identity or corrupted blob."""

    code = "sealing_failed"


class TransportError(SpeedError):
    """The simulated transport could not deliver a message."""

    code = "transport_error"


class NoLiveOwnerError(TransportError):
    """No owner shard of a tag was reachable (cluster routing).

    The fail-safe action is the same as a miss: recompute (Algorithm 1).
    The distinct code lets callers separate "recompute because unknown"
    from "recompute because the owning shards were unreachable".
    """

    code = "no_live_owner"


class RetryExhaustedError(TransportError):
    """A retried RPC ran out of attempts without a usable response.

    Subclasses :class:`TransportError` so callers that treat a shard
    timeout as "this shard did not serve the request" (the cluster
    router's failover logic) need no special case for retried clients.
    """

    code = "retry_exhausted"


class CircuitOpenError(TransportError):
    """A per-shard circuit breaker refused the call without sending.

    Raised by the cluster router when a shard's breaker is open: the
    shard failed repeatedly in the recent past, so the router fails fast
    instead of paying another timeout.  Also a :class:`TransportError`
    subclass — to the routing layer an open circuit *is* an unreachable
    shard.
    """

    code = "circuit_open"


class ChannelError(SpeedError):
    """Secure-channel handshake or record protection failed."""

    code = "channel_error"


class ProtocolError(SpeedError):
    """A malformed or unexpected wire message was received."""

    code = "protocol_error"


class SerializationError(SpeedError):
    """A value could not be serialized or deserialized by a parser."""

    code = "serialization_error"


class StoreError(SpeedError):
    """The encrypted ResultStore rejected or could not serve a request."""

    code = "store_error"


class QuotaExceededError(StoreError):
    """An application exceeded its PUT quota (DoS mitigation, paper III-D)."""

    code = "quota_exceeded"


class RollbackError(StoreError):
    """A whole-state rollback of a durable store was detected.

    The recovered checkpoint carries an older monotonic-counter value
    than the platform's hardware counter, meaning the host presented a
    stale (but individually authentic) sealed state.  By default the
    store counts the event (``durable.rollback_detected``) and accepts
    the stale state; with ``StoreConfig(strict_rollback=True)`` recovery
    raises this error instead.
    """

    code = "state_rollback"


class MigrationError(SpeedError):
    """A tag-range migration between shards could not proceed."""

    code = "migration_error"


class MigrationInProgressError(MigrationError):
    """A topology change was requested while another is still streaming.

    Only one resharding window may be open at a time: the dual-ownership
    overlay in :class:`~repro.cluster.ring.ShardRing` tracks exactly one
    pending ring.
    """

    code = "migration_in_progress"


class MigrationStateError(MigrationError):
    """A migration step was invoked out of order (no open window,
    committing an unknown range, or finishing with ranges pending)."""

    code = "migration_state"


class MigrationIngestError(MigrationError):
    """A destination shard refused part of a migrated batch (for
    example: the target's quota filled mid-stream).  The migrator
    aborts the transition and restores the previous ownership map."""

    code = "migration_ingest"


class DedupError(SpeedError):
    """The DedupRuntime could not complete a deduplicated call."""

    code = "dedup_error"


class VerificationError(DedupError):
    """The Fig. 3 verification protocol rejected a stored result."""

    code = "verification_failed"


def _collect_codes(cls: type[SpeedError], into: dict[str, type[SpeedError]]) -> None:
    into.setdefault(cls.code, cls)
    for sub in cls.__subclasses__():
        _collect_codes(sub, into)


def error_codes() -> dict[str, type[SpeedError]]:
    """Map every registered ``code`` to its exception class."""
    codes: dict[str, type[SpeedError]] = {}
    _collect_codes(SpeedError, codes)
    return codes


def error_for_code(code: str) -> type[SpeedError]:
    """The exception class registered for ``code`` (:class:`SpeedError`
    itself for an unknown code, so callers can always raise *something*
    of the right family)."""
    return error_codes().get(code, SpeedError)
