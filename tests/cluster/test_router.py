"""Client-side routing: replication, failover, read-repair, batches."""

import pytest

from repro.cluster.router import NO_LIVE_OWNER
from repro.errors import ProtocolError, TransportError
from repro.net.messages import BatchPutResponse, GetResponse, PutResponse

from tests.cluster.conftest import (
    make_cluster,
    make_get,
    make_put,
    puts_spanning_all_shards,
    raw_router,
)


class TestRoutingBasics:
    def test_put_lands_on_all_owners(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(0)
        response = router.call(put)
        assert response.accepted
        owners = cluster4.cluster.owners_of(put.tag)
        assert len(owners) == 2
        assert cluster4.cluster.holders_of(put.tag) == sorted(owners)

    def test_get_served_by_primary(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(1)
        router.call(put)
        response = router.call(make_get(put))
        assert response.found
        assert response.sealed_result == put.sealed_result
        assert router.stats.failovers == 0

    def test_unknown_tag_is_clean_miss(self, cluster4):
        router = raw_router(cluster4)
        response = router.call(make_get(make_put(2)))
        assert not response.found
        assert response.reason == ""  # a real miss, not unavailability

    def test_non_store_message_rejected(self, cluster4):
        router = raw_router(cluster4)
        with pytest.raises(ProtocolError):
            router.call(PutResponse(accepted=True))


class TestFailover:
    def test_get_fails_over_to_replica(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(3)
        router.call(put)
        primary = cluster4.cluster.owners_of(put.tag)[0]
        cluster4.cluster.kill_shard(primary)
        response = router.call(make_get(put))
        assert response.found
        assert response.sealed_result == put.sealed_result
        assert router.stats.failovers == 1
        assert router.stats.get_timeouts == 1

    def test_all_owners_dead_is_unavailable_not_miss(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(4)
        router.call(put)
        for shard in cluster4.cluster.owners_of(put.tag):
            cluster4.cluster.kill_shard(shard)
        response = router.call(make_get(put))
        assert not response.found
        assert response.reason == NO_LIVE_OWNER
        assert router.stats.unavailable == 1

    def test_put_with_all_owners_dead_times_out(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(5)
        for shard in cluster4.cluster.owners_of(put.tag):
            cluster4.cluster.kill_shard(shard)
        with pytest.raises(TransportError):
            router.call(put)

    def test_put_during_outage_lands_on_live_replica(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(6)
        primary, replica = cluster4.cluster.owners_of(put.tag)
        cluster4.cluster.kill_shard(primary)
        response = router.call(put)
        assert response.accepted
        assert cluster4.cluster.holders_of(put.tag) == [replica]

    def test_revived_shard_keeps_pre_crash_state(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(7)
        router.call(put)
        primary = cluster4.cluster.owners_of(put.tag)[0]
        cluster4.cluster.kill_shard(primary)
        assert not cluster4.cluster.shard_alive(primary)
        cluster4.cluster.revive_shard(primary)
        assert cluster4.cluster.shard_alive(primary)
        response = router.call(make_get(put))
        assert response.found
        assert router.stats.failovers == 0  # primary answered again


class TestReadRepair:
    def fill_during_outage(self, deployment, router):
        """PUT one entry while its primary is down; return (put, primary)."""
        put = make_put(0, prefix=b"repair")
        primary = deployment.cluster.owners_of(put.tag)[0]
        deployment.cluster.kill_shard(primary)
        router.call(put)  # lands on the live replica only
        deployment.cluster.revive_shard(primary)
        return put, primary

    def test_replica_hit_repairs_the_primary(self, cluster4):
        router = raw_router(cluster4)
        put, primary = self.fill_during_outage(cluster4, router)
        assert primary not in cluster4.cluster.holders_of(put.tag)
        response = router.call(make_get(put))
        assert response.found
        assert router.stats.read_repairs == 1
        # The repair is a one-way PUT: after the ack drains, the primary
        # holds the entry and serves it directly.
        drained = router.drain_responses()
        assert drained == []  # repair acks are router-internal
        assert router.stats.repair_acks == 1
        assert primary in cluster4.cluster.holders_of(put.tag)
        stats_before = router.stats.read_repairs
        assert router.call(make_get(put)).found
        assert router.stats.read_repairs == stats_before

    def test_repair_ack_never_reaches_the_runtime(self, cluster4):
        router = raw_router(cluster4)
        put, _ = self.fill_during_outage(cluster4, router)
        router.call(make_get(put))
        # Even mixed with a real one-way PUT, only that PUT's ack emerges.
        other = make_put(999, prefix=b"other")
        router_id = router.send_oneway(other)
        out = router.drain_responses()
        assert [r.request_id for r in out] == [router_id]


class TestOnewayCorrelation:
    def test_single_ack_forwarded_once(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(8)
        router_id = router.send_oneway(put)
        out = router.drain_responses()
        assert len(out) == 1
        assert out[0].request_id == router_id
        assert out[0].accepted
        # The replica's ack was absorbed, not surfaced.
        assert router.stats.replica_put_acks == 1
        assert router.drain_responses() == []

    def test_oneway_to_dead_owners_stays_unacknowledged(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(9)
        for shard in cluster4.cluster.owners_of(put.tag):
            cluster4.cluster.kill_shard(shard)
        router.send_oneway(put)
        assert router.drain_responses() == []  # never acked, never faked

    def test_batch_acks_merge_in_item_order(self, cluster4):
        router = raw_router(cluster4)
        puts = puts_spanning_all_shards(cluster4, per_shard=2)
        router_id = router.send_oneway_batch(puts)
        out = router.drain_responses()
        assert len(out) == 1
        batch = out[0]
        assert isinstance(batch, BatchPutResponse)
        assert batch.request_id == router_id
        assert len(batch.items) == len(puts)
        assert all(item.accepted for item in batch.items)


class TestBatchedCalls:
    def test_batch_get_round_trip_in_order(self, cluster4):
        router = raw_router(cluster4)
        puts = puts_spanning_all_shards(cluster4, per_shard=2)
        for put in puts:
            router.call(put)
        responses = router.call_batch([make_get(p) for p in puts])
        assert len(responses) == len(puts)
        for put, response in zip(puts, responses):
            assert response.found
            assert response.sealed_result == put.sealed_result

    def test_batch_put_round_trip_in_order(self, cluster4):
        router = raw_router(cluster4)
        puts = puts_spanning_all_shards(cluster4, per_shard=2)
        responses = router.call_batch(puts)
        assert len(responses) == len(puts)
        assert all(r.accepted for r in responses)
        for put in puts:
            owners = cluster4.cluster.owners_of(put.tag)
            assert cluster4.cluster.holders_of(put.tag) == sorted(owners)

    def test_mixed_batch_rejected(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(10)
        with pytest.raises(ProtocolError):
            router.call_batch([put, make_get(put)])

    def test_batch_get_fails_over_whole_subbatch(self, cluster4):
        router = raw_router(cluster4)
        puts = puts_spanning_all_shards(cluster4, per_shard=2)
        for put in puts:
            router.call(put)
        victim = cluster4.cluster.shard_ids[0]
        cluster4.cluster.kill_shard(victim)
        responses = router.call_batch([make_get(p) for p in puts])
        assert all(r.found for r in responses)
        assert router.stats.failovers >= 1


class TestBatchGetPartialShardTimeout:
    """Regression: a BATCH_GET spanning several shards where one shard
    times out must return per-item failures for *that shard's items
    only*, in their original positions (issue satellite 6)."""

    def test_only_dead_shards_items_fail(self):
        # RF 1: the dead shard's items have no replica to fall back on.
        d = make_cluster(n_shards=4, replication_factor=1,
                         seed=b"batch-timeout")
        router = raw_router(d)
        puts = puts_spanning_all_shards(d, per_shard=3)
        for put in puts:
            router.call(put)
        victim = d.cluster.ring.primary(puts[0].tag)
        victim_indices = {
            i for i, p in enumerate(puts)
            if d.cluster.ring.primary(p.tag) == victim
        }
        assert 0 < len(victim_indices) < len(puts)
        d.cluster.kill_shard(victim)

        responses = router.call_batch([make_get(p) for p in puts])
        assert len(responses) == len(puts)
        for i, (put, response) in enumerate(zip(puts, responses)):
            assert isinstance(response, GetResponse)
            if i in victim_indices:
                assert not response.found
                assert response.reason == NO_LIVE_OWNER
            else:
                assert response.found
                assert response.sealed_result == put.sealed_result

    def test_replicated_items_survive_the_same_timeout(self):
        d = make_cluster(n_shards=4, replication_factor=2,
                         seed=b"batch-timeout-rf2")
        router = raw_router(d)
        puts = puts_spanning_all_shards(d, per_shard=3)
        for put in puts:
            router.call(put)
        d.cluster.kill_shard(d.cluster.shard_ids[0])
        responses = router.call_batch([make_get(p) for p in puts])
        assert [r.found for r in responses] == [True] * len(puts)


class TestTopology:
    def test_detach_makes_items_unavailable(self, cluster4):
        router = raw_router(cluster4)
        put = make_put(11)
        router.call(put)
        for shard in list(router.shard_ids):
            router.detach_shard(shard)
        response = router.call(make_get(put))
        assert not response.found
        assert response.reason == NO_LIVE_OWNER

    def test_double_attach_rejected(self, cluster4):
        router = raw_router(cluster4)
        shard = router.shard_ids[0]
        with pytest.raises(ProtocolError):
            router.attach_shard(shard, object())
