"""Durability under replication: per-shard power failures, stale
recoveries, and read-repair reconvergence."""

from repro.durable import take_checkpoint
from repro.store.resultstore import StoreConfig

from .conftest import make_cluster, make_get, make_put, raw_router


def durable_cluster(n_shards=3, replication_factor=2, seed=b"durable-cluster"):
    return make_cluster(
        n_shards=n_shards, replication_factor=replication_factor, seed=seed,
        store_config=StoreConfig(durable=True),
    )


class TestPowerFailShard:
    def test_power_failed_shard_recovers_every_entry(self):
        d = durable_cluster()
        router = raw_router(d)
        puts = [make_put(i, prefix=b"pf") for i in range(12)]
        for put in puts:
            assert router.call(put).accepted

        for shard_id in list(d.cluster.shard_ids):
            before = set(d.cluster.shards[shard_id].store.stored_tags())
            report = d.cluster.power_fail_shard(shard_id)
            after = set(d.cluster.shards[shard_id].store.stored_tags())
            assert after == before
            assert not report.torn_tail and not report.chain_broken

        for put in puts:
            assert router.call(make_get(put)).found

    def test_holders_unchanged_across_power_failures(self):
        d = durable_cluster()
        router = raw_router(d)
        puts = [make_put(i, prefix=b"hold") for i in range(8)]
        for put in puts:
            assert router.call(put).accepted
        holders = {p.tag: d.cluster.holders_of(p.tag) for p in puts}
        for shard_id in list(d.cluster.shard_ids):
            d.cluster.power_fail_shard(shard_id)
        assert holders == {p.tag: d.cluster.holders_of(p.tag) for p in puts}


class TestStaleRecoveryReconverges:
    def test_read_repair_refills_a_shard_recovered_from_an_older_checkpoint(self):
        d = durable_cluster(n_shards=3, replication_factor=2)
        router = raw_router(d)

        # Two writes owned by the same primary, a checkpoint between
        # them; then the host loses the post-checkpoint log suffix, so
        # recovery comes back one write behind its replica.
        ring = d.cluster.ring
        first = make_put(0, prefix=b"stale")
        primary = ring.primary(first.tag)
        later = next(
            put for put in (make_put(i, prefix=b"stale") for i in range(1, 200))
            if ring.primary(put.tag) == primary
        )
        assert router.call(first).accepted
        node = d.cluster.shards[primary]
        take_checkpoint(node.store)
        assert router.call(later).accepted

        node.store.durable.segments.clear()   # host drops the log tail
        node.store.power_fail()
        report = node.store.recover()
        assert report.checkpoint_seq >= 1
        assert node.store.contains(first.tag)
        assert not node.store.contains(later.tag)       # recovered stale
        assert d.cluster.holders_of(later.tag) == [     # replica still has it
            s for s in d.cluster.owners_of(later.tag) if s != primary
        ]

        # The read is served from the surviving replica and the repair
        # re-PUT brings the stale shard back to full replication.
        repairs0 = router.stats.read_repairs
        response = router.call(make_get(later))
        assert response.found
        assert router.stats.read_repairs == repairs0 + 1
        assert router.drain_responses() == []           # absorb repair acks
        assert primary in d.cluster.holders_of(later.tag)
        assert len(d.cluster.holders_of(later.tag)) == 2
