"""Regression tests for the deprecated ``StoreCluster.add_shard`` /
``remove_shard`` shims.

The shims must stay behavior-compatible with the first-class Session
topology API until they are dropped: same warning contract, same legacy
return shapes, and — the regression that matters — the exact same end
state (ring membership and per-shard entry placement) as
``Session.add_shard()`` / ``Session.remove_shard()`` on an identically
seeded deployment.
"""

import warnings

import pytest

from repro import connect
from repro.cluster import MigrationReport


def warm_session(seed: bytes, shards: int = 3, n_inputs: int = 24):
    session = connect(shards=shards, replication_factor=2, seed=seed,
                      tracing=False)

    @session.mark(version="1.0")
    def shim_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x55 for b in data)

    inputs = [i.to_bytes(4, "big") * 16 for i in range(n_inputs)]
    shim_kernel.map(inputs)
    session.flush_puts()
    return session, shim_kernel, inputs


def placement(cluster) -> dict:
    """shard id -> sorted stored tags: the observable end state."""
    return {
        sid: sorted(node.store.stored_tags())
        for sid, node in sorted(cluster.shards.items())
    }


class TestWarningContract:
    def test_add_shard_warning_text_is_stable(self):
        session, *_ = warm_session(b"shim-warn-add")
        with pytest.warns(
            DeprecationWarning,
            match=r"StoreCluster\.add_shard is deprecated; "
                  r"use Session\.add_shard\(\)",
        ):
            session.cluster.add_shard()

    def test_remove_shard_warning_text_is_stable(self):
        session, *_ = warm_session(b"shim-warn-rm", shards=4)
        with pytest.warns(
            DeprecationWarning,
            match=r"StoreCluster\.remove_shard is deprecated; "
                  r"use Session\.remove_shard\(\)",
        ):
            session.cluster.remove_shard("shard-0")


class TestLegacyReturnShape:
    def test_add_shard_returns_node_and_report(self):
        session, *_ = warm_session(b"shim-shape-add")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            node, report = session.cluster.add_shard()
        assert node is session.cluster.shards[node.shard_id]
        assert isinstance(report, MigrationReport)
        assert report.moved > 0

    def test_remove_shard_returns_report(self):
        session, *_ = warm_session(b"shim-shape-rm", shards=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            report = session.cluster.remove_shard("shard-1")
        assert isinstance(report, MigrationReport)
        assert report.moved > 0


class TestBehaviorMatchesSessionApi:
    def test_add_shard_end_state_matches(self):
        via_session, *_ = warm_session(b"shim-equiv-add")
        via_shim, *_ = warm_session(b"shim-equiv-add")

        report = via_session.add_shard()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            node, legacy = via_shim.cluster.add_shard()

        assert node.shard_id == report.shard_id
        assert legacy.moved == report.entries_moved
        assert sorted(via_shim.cluster.ring.shards) == \
            sorted(via_session.cluster.ring.shards)
        assert placement(via_shim.cluster) == placement(via_session.cluster)

    def test_remove_shard_end_state_matches(self):
        via_session, *_ = warm_session(b"shim-equiv-rm", shards=4)
        via_shim, *_ = warm_session(b"shim-equiv-rm", shards=4)

        report = via_session.remove_shard("shard-2")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = via_shim.cluster.remove_shard("shard-2")

        assert legacy.moved == report.entries_moved
        assert "shard-2" not in via_shim.cluster.shards
        assert sorted(via_shim.cluster.ring.shards) == \
            sorted(via_session.cluster.ring.shards)
        assert placement(via_shim.cluster) == placement(via_session.cluster)

    def test_shim_results_stay_readable(self):
        session, kernel, inputs = warm_session(b"shim-readable")
        expected = [bytes(b ^ 0x55 for b in data) for data in inputs]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            session.cluster.add_shard()
        assert kernel.map(inputs) == expected
