"""Pipelined router surface: submit()/wait(), grouped GET sub-batches.

Semantics must match the synchronous ``call``/``call_batch`` path item
for item — including failover between submit and wait, read-repair on a
primary live miss, and unavailable reporting when every owner is gone.
"""

import pytest

from repro.errors import ProtocolError

from .conftest import make_cluster, make_get, make_put, raw_router


def warm(router, n, prefix=b"pipe"):
    puts = [make_put(i, prefix=prefix) for i in range(n)]
    for put in puts:
        assert router.call(put).accepted
    return puts


class TestPerOpPipeline:
    def test_submitted_gets_match_synchronous_calls(self):
        d = make_cluster()
        router = raw_router(d)
        puts = warm(router, 6)
        handles = [router.submit(make_get(p)) for p in puts]
        responses = [router.wait(h) for h in handles]
        for put, response in zip(puts, responses):
            assert response.found
            assert response.sealed_result == router.call(
                make_get(put)
            ).sealed_result

    def test_submitted_puts_match_synchronous_calls(self):
        d = make_cluster()
        router = raw_router(d)
        puts = [make_put(i, prefix=b"pipe-put") for i in range(4)]
        handles = [router.submit(p) for p in puts]
        assert all(router.wait(h).accepted for h in handles)
        for put in puts:
            assert router.call(make_get(put)).found

    def test_get_fails_over_when_primary_is_down_at_submit(self):
        d = make_cluster(n_shards=4, replication_factor=2)
        router = raw_router(d)
        puts = warm(router, 8)
        target = puts[0]
        primary = d.cluster.ring.primary(target.tag)
        d.cluster.kill_shard(primary)  # submit cannot reach the primary
        failovers0 = router.stats.failovers
        handle = router.submit(make_get(target))
        response = router.wait(handle)
        assert response.found
        assert router.stats.failovers == failovers0 + 1
        d.cluster.revive_shard(primary)

    def test_wait_on_unknown_handle_raises(self):
        d = make_cluster()
        router = raw_router(d)
        with pytest.raises(ProtocolError):
            router.wait(12345)


class TestGroupedPipeline:
    def test_plan_gets_partitions_by_primary_and_covers_everything(self):
        d = make_cluster()
        router = raw_router(d)
        puts = warm(router, 12)
        gets = [make_get(p) for p in puts]
        plan = router.plan_gets(gets)
        covered = sorted(i for group in plan for i in group)
        assert covered == list(range(len(gets)))
        ring = d.cluster.ring
        for group in plan:
            primaries = {ring.primary(gets[i].tag) for i in group}
            assert len(primaries) == 1

    def test_grouped_wait_matches_call_batch(self):
        d = make_cluster()
        router = raw_router(d)
        puts = warm(router, 10)
        gets = [make_get(p) for p in puts]
        expected = [r.sealed_result for r in router.call_batch(gets)]
        plan = router.plan_gets(gets)
        handles = [
            (group, router.submit_gets([gets[i] for i in group]))
            for group in plan
        ]
        got = [None] * len(gets)
        for group, handle in handles:
            for i, response in zip(group, router.wait_gets(handle, len(group))):
                assert response.found
                got[i] = response.sealed_result
        assert got == expected

    def test_group_fails_over_when_primary_is_down_at_submit(self):
        d = make_cluster(n_shards=4, replication_factor=2)
        router = raw_router(d)
        puts = warm(router, 12)
        gets = [make_get(p) for p in puts]
        plan = router.plan_gets(gets)
        group = max(plan, key=len)
        primary = d.cluster.ring.primary(gets[group[0]].tag)
        d.cluster.kill_shard(primary)  # the whole group's record is lost
        failovers0 = router.stats.failovers
        handle = router.submit_gets([gets[i] for i in group])
        responses = router.wait_gets(handle, len(group))
        assert all(r.found for r in responses)
        assert router.stats.failovers == failovers0 + len(group)
        d.cluster.revive_shard(primary)

    def test_primary_live_miss_consults_replicas_and_repairs(self):
        d = make_cluster(n_shards=4, replication_factor=2)
        router = raw_router(d)
        put = make_put(0, prefix=b"repair")
        primary = d.cluster.ring.primary(put.tag)
        d.cluster.kill_shard(primary)      # write lands on the replica only
        assert router.call(put).accepted
        d.cluster.revive_shard(primary)    # primary back, but empty
        repairs0 = router.stats.read_repairs
        handle = router.submit_gets([make_get(put)])
        responses = router.wait_gets(handle, 1)
        assert responses[0].found
        assert router.stats.read_repairs == repairs0 + 1

    def test_no_live_owner_reports_unavailable_not_lost(self):
        d = make_cluster(n_shards=2, replication_factor=1)
        router = raw_router(d)
        puts = warm(router, 4)
        gets = [make_get(p) for p in puts]
        for sid in list(d.cluster.shard_ids)[1:]:
            d.cluster.kill_shard(sid)
        plan = router.plan_gets(gets)
        unavailable0 = router.stats.unavailable
        for group in plan:
            handle = router.submit_gets([gets[i] for i in group])
            router.wait_gets(handle, len(group))
        assert router.stats.unavailable > unavailable0 or all(
            router.call(g).found
            for group in plan for g in [gets[i] for i in group]
        )

    def test_wait_gets_rejects_item_count_mismatch_and_keeps_slot(self):
        d = make_cluster()
        router = raw_router(d)
        puts = warm(router, 2)
        gets = [make_get(p) for p in puts]
        handle = router.submit_gets(gets)
        with pytest.raises(ProtocolError):
            router.wait_gets(handle, 5)
        responses = router.wait_gets(handle, 2)  # slot survived the error
        assert all(r.found for r in responses)

class TestGroupedPutPipeline:
    def test_plan_puts_partitions_by_primary_and_covers_everything(self):
        d = make_cluster()
        router = raw_router(d)
        puts = [make_put(i, prefix=b"gput") for i in range(12)]
        plan = router.plan_puts(puts)
        covered = sorted(i for group in plan for i in group)
        assert covered == list(range(len(puts)))
        ring = d.cluster.ring
        for group in plan:
            primaries = {ring.primary(puts[i].tag) for i in group}
            assert len(primaries) == 1

    def test_grouped_put_matches_synchronous_calls(self):
        d = make_cluster(n_shards=4, replication_factor=2)
        router = raw_router(d)
        puts = [make_put(i, prefix=b"gput-sync") for i in range(10)]
        plan = router.plan_puts(puts)
        handles = [
            (group, router.submit_puts([puts[i] for i in group]))
            for group in plan
        ]
        accepted = [None] * len(puts)
        for group, handle in handles:
            for i, response in zip(group, router.wait_puts(handle, len(group))):
                accepted[i] = response.accepted
        assert all(accepted)
        # Same durability as the synchronous path: fully replicated,
        # every entry readable.
        for put in puts:
            assert len(d.cluster.holders_of(put.tag)) == 2
            assert router.call(make_get(put)).found

    def test_grouped_put_reports_no_live_owner(self):
        d = make_cluster(n_shards=2, replication_factor=1)
        router = raw_router(d)
        puts = [make_put(i, prefix=b"gput-dead") for i in range(6)]
        dead = list(d.cluster.shard_ids)[1]
        d.cluster.kill_shard(dead)
        plan = router.plan_puts(puts)
        responses = [None] * len(puts)
        for group in plan:
            handle = router.submit_puts([puts[i] for i in group])
            for i, response in zip(group, router.wait_puts(handle, len(group))):
                responses[i] = response
        ring = d.cluster.ring
        for put, response in zip(puts, responses):
            if ring.primary(put.tag) == dead:
                assert not response.accepted
                assert "no_live_owner" in response.reason
            else:
                assert response.accepted

    def test_wait_puts_rejects_item_count_mismatch_and_keeps_slot(self):
        d = make_cluster()
        router = raw_router(d)
        puts = [make_put(i, prefix=b"gput-count") for i in range(2)]
        handle = router.submit_puts(puts)
        with pytest.raises(ProtocolError):
            router.wait_puts(handle, 5)
        responses = router.wait_puts(handle, 2)  # slot survived the error
        assert all(r.accepted for r in responses)

    def test_wait_and_wait_gets_refuse_each_others_slots(self):
        d = make_cluster()
        router = raw_router(d)
        puts = warm(router, 2)
        group_handle = router.submit_gets([make_get(puts[0])])
        call_handle = router.submit(make_get(puts[1]))
        with pytest.raises(ProtocolError):
            router.wait(group_handle)
        with pytest.raises(ProtocolError):
            router.wait_gets(call_handle)
        # Both slots survived the type mismatch and still settle.
        assert router.wait_gets(group_handle, 1)[0].found
        assert router.wait(call_handle).found
