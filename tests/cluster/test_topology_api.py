"""Session topology API: add_shard/remove_shard/rebalance, structured
TopologyReport, the report rendering convention, and the deprecation of
the raw StoreCluster entry points."""

import warnings

import pytest

from repro import TopologyReport, connect
from repro.cluster import MigrationReport
from repro.report import ReportMixin

from tests.cluster.conftest import make_cluster, make_get, make_put, raw_router


def warm_session(n_inputs=30, seed=b"topo-session", shards=3):
    session = connect(shards=shards, replication_factor=2, seed=seed,
                      tracing=False)

    @session.mark(version="1.0")
    def topo_kernel(data: bytes) -> bytes:
        return bytes(b ^ 0x77 for b in data)

    inputs = [i.to_bytes(4, "big") * 16 for i in range(n_inputs)]
    values = topo_kernel.map(inputs)
    session.flush_puts()
    return session, topo_kernel, inputs, values


class TestSessionAddShard:
    def test_add_shard_returns_structured_report(self):
        session, kernel, inputs, values = warm_session()
        report = session.add_shard()
        assert isinstance(report, TopologyReport)
        assert report.action == "add_shard"
        assert report.shard_id == "shard-3"
        assert report.ranges_moved > 0
        assert report.entries_moved > 0
        assert report.bytes_moved > 0
        assert report.duration_s > 0
        assert kernel.map(inputs) == values

    def test_add_shard_registers_metrics_source(self):
        session, *_ = warm_session(seed=b"topo-metrics")
        report = session.add_shard()
        keys = session.metrics.snapshot()
        assert any(k.startswith(f"store.{report.shard_id}.") for k in keys)

    def test_ownership_exact_after_add(self):
        session, kernel, inputs, _ = warm_session(seed=b"topo-own")
        session.add_shard()
        cluster = session.cluster
        for tag in session.runtime.acked_put_tags:
            assert cluster.holders_of(tag) == sorted(cluster.owners_of(tag))


class TestSessionRemoveShard:
    def test_remove_shard_returns_structured_report(self):
        session, kernel, inputs, values = warm_session(
            seed=b"topo-rm", shards=4
        )
        report = session.remove_shard("shard-1")
        assert isinstance(report, TopologyReport)
        assert report.action == "remove_shard"
        assert report.shard_id == "shard-1"
        assert "shard-1" not in session.cluster.shards
        assert kernel.map(inputs) == values

    def test_remove_shard_unregisters_metrics_source(self):
        session, *_ = warm_session(seed=b"topo-rm-metrics", shards=4)
        session.remove_shard("shard-2")
        keys = session.metrics.snapshot()
        assert not any(k.startswith("store.shard-2.") for k in keys)


class TestSessionRebalance:
    def test_rebalance_is_idempotent_on_a_settled_cluster(self):
        session, *_ = warm_session(seed=b"topo-rebal")
        session.add_shard()
        report = session.rebalance()
        assert isinstance(report, TopologyReport)
        assert report.action == "rebalance"
        assert report.entries_moved == 0


class TestTopologyReportRendering:
    def test_reports_share_the_mixin_convention(self):
        assert issubclass(TopologyReport, ReportMixin)
        assert issubclass(MigrationReport, ReportMixin)

    def test_to_dict_is_flat_and_json_ready(self):
        import json

        session, *_ = warm_session(seed=b"topo-dict")
        report = session.add_shard()
        data = report.to_dict()
        assert data["action"] == "add_shard"
        assert data["entries_moved"] == report.entries_moved
        json.dumps(data)

    def test_table_renders_every_field(self):
        session, *_ = warm_session(seed=b"topo-table")
        report = session.add_shard()
        text = report.table()
        assert "TopologyReport" in text
        for name in ("action", "shard_id", "entries_moved", "duration_s"):
            assert name in text


class TestDeprecatedClusterEntryPoints:
    def test_add_shard_shim_warns_and_still_works(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"dep-add")
        router = raw_router(d)
        puts = [make_put(i, prefix=b"dep") for i in range(20)]
        for put in puts:
            assert router.call(put).accepted
        with pytest.warns(DeprecationWarning, match="Session.add_shard"):
            node, report = d.cluster.add_shard()
        assert isinstance(report, MigrationReport)
        assert node.shard_id in d.cluster.ring.shards
        for put in puts:
            assert router.call(make_get(put)).found

    def test_remove_shard_shim_warns_and_still_works(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"dep-rm")
        with pytest.warns(DeprecationWarning, match="Session.remove_shard"):
            report = d.cluster.remove_shard("shard-0")
        assert isinstance(report, MigrationReport)
        assert "shard-0" not in d.cluster.shards

    def test_streaming_entry_points_do_not_warn(self):
        d = make_cluster(n_shards=3, replication_factor=2, seed=b"dep-clean")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            migrator = d.cluster.begin_add_shard()
            migrator.run()
