"""End-to-end: DedupRuntime over a sharded cluster behaves exactly like
the single-store deployment — same results, same security guarantees."""

from repro import Deployment
from repro.core.serialization import AnyParser, default_registry
from repro.core.tag import derive_tag
from repro.security import CachePoisoningAdversary
from repro.store.resultstore import StoreConfig

from tests.conftest import DOUBLE_DESC, double_bytes, make_libs
from tests.cluster.conftest import make_cluster


def inputs(n, prefix=b"doc"):
    return [prefix + i.to_bytes(4, "big") + b"x" * 24 for i in range(n)]


def tag_of(app, data):
    func_identity = app.runtime.libraries.function_identity(DOUBLE_DESC)
    encoded = AnyParser(default_registry()).encode(data)
    return derive_tag(func_identity, encoded)


class TestBitIdenticalWithSingleStore:
    def test_execute_matches_single_store(self):
        single = Deployment(seed=b"xcheck-single")
        app_s = single.create_application("app", make_libs())
        dedup_s = app_s.deduplicable(DOUBLE_DESC)
        clustered = make_cluster(seed=b"xcheck-cluster")
        app_c = clustered.create_application("app", make_libs())
        dedup_c = app_c.deduplicable(DOUBLE_DESC)

        corpus = inputs(12) + inputs(12)  # second half repeats: hits
        out_single = [dedup_s(d) for d in corpus]
        out_cluster = [dedup_c(d) for d in corpus]
        single.flush_all_puts()
        clustered.flush_all_puts()
        assert out_cluster == out_single == [double_bytes(d) for d in corpus]
        assert app_c.runtime.stats.hits == app_s.runtime.stats.hits
        assert app_c.runtime.stats.misses == app_s.runtime.stats.misses
        assert app_c.runtime.puts_unacknowledged == 0

    def test_execute_many_matches_single_store(self):
        single = Deployment(seed=b"xmany-single")
        app_s = single.create_application("app", make_libs())
        clustered = make_cluster(seed=b"xmany-cluster")
        app_c = clustered.create_application("app", make_libs())

        corpus = inputs(10) + inputs(6)  # intra-batch duplicates
        out_single = app_s.runtime.execute_many(DOUBLE_DESC, corpus)
        out_cluster = app_c.runtime.execute_many(DOUBLE_DESC, corpus)
        single.flush_all_puts()
        clustered.flush_all_puts()
        assert out_cluster == out_single == [double_bytes(d) for d in corpus]
        # Rerunning the batch hits the cluster for every item.
        rerun = app_c.runtime.execute_many(DOUBLE_DESC, corpus)
        assert rerun == out_cluster
        assert app_c.runtime.puts_unacknowledged == 0

    def test_cross_app_sharing_through_cluster(self):
        d = make_cluster(seed=b"xshare")
        app_a = d.create_application("app-a", make_libs())
        app_b = d.create_application("app-b", make_libs())
        dedup_a = app_a.deduplicable(DOUBLE_DESC)
        dedup_b = app_b.deduplicable(DOUBLE_DESC)
        corpus = inputs(8)
        out_a = [dedup_a(x) for x in corpus]
        d.flush_all_puts()
        out_b = [dedup_b(x) for x in corpus]
        assert out_b == out_a
        assert app_b.runtime.stats.hits == len(corpus)
        assert app_b.runtime.stats.misses == 0


class TestRuntimeSurvivesShardDeath:
    def test_execute_recomputes_when_unreplicated_entry_dies(self):
        d = make_cluster(n_shards=4, replication_factor=1, seed=b"die-rf1")
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        data = inputs(1)[0]
        assert dedup(data) == double_bytes(data)
        app.runtime.flush_puts()
        d.cluster.kill_shard(d.cluster.owners_of(tag_of(app, data))[0])
        # RF 1 and the only holder is dead: the runtime treats the
        # unavailability as a miss and recomputes — never an error.
        assert dedup(data) == double_bytes(data)
        assert app.runtime.stats.misses == 2

    def test_execute_hits_replica_when_primary_dies(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"die-rf2")
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        data = inputs(1)[0]
        dedup(data)
        app.runtime.flush_puts()
        d.cluster.kill_shard(d.cluster.owners_of(tag_of(app, data))[0])
        assert dedup(data) == double_bytes(data)
        assert app.runtime.stats.hits == 1
        assert app.runtime.client.stats.failovers == 1

    def test_execute_many_with_one_shard_down(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"die-many")
        app = d.create_application("app", make_libs())
        corpus = inputs(16)
        expected = app.runtime.execute_many(DOUBLE_DESC, corpus)
        app.runtime.flush_puts()
        d.cluster.kill_shard("shard-0")
        rerun = app.runtime.execute_many(DOUBLE_DESC, corpus)
        assert rerun == expected
        assert app.runtime.stats.misses == len(corpus)  # only the first run


class TestTamperedReplicaNeverServes:
    def test_store_side_digest_catches_tampered_replica(self):
        d = make_cluster(n_shards=4, replication_factor=2, seed=b"tamper-1")
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        data = inputs(1)[0]
        dedup(data)
        app.runtime.flush_puts()
        tag = tag_of(app, data)
        primary, replica = d.cluster.owners_of(tag)
        CachePoisoningAdversary(d.cluster.shards[replica].store).tamper_tag(tag)
        d.cluster.kill_shard(primary)
        # The replica detects the bad digest, drops the entry, serves a
        # miss; the runtime recomputes the correct result.
        assert dedup(data) == double_bytes(data)
        assert d.cluster.shards[replica].store.stats.tamper_detected == 1
        assert app.runtime.stats.verification_failures == 0
        assert app.runtime.stats.misses == 2

    def test_fig3_verification_is_last_line_against_replicas(self):
        # Store-side digest disabled: the poisoned ciphertext reaches the
        # app, whose Fig. 3 MAC/tag verification rejects it and
        # recomputes — a tampered replica can never serve a result.
        d = make_cluster(
            n_shards=4, replication_factor=2, seed=b"tamper-2",
            store_config=StoreConfig(verify_blob_digest=False),
        )
        app = d.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        data = inputs(1)[0]
        dedup(data)
        app.runtime.flush_puts()
        tag = tag_of(app, data)
        primary, replica = d.cluster.owners_of(tag)
        CachePoisoningAdversary(d.cluster.shards[replica].store).tamper_tag(tag)
        d.cluster.kill_shard(primary)
        assert dedup(data) == double_bytes(data)
        assert app.runtime.stats.verification_failures == 1


class TestIntrospection:
    def test_snapshot_shape(self, cluster4):
        app = cluster4.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        for data in inputs(6):
            dedup(data)
        cluster4.flush_all_puts()
        snap = cluster4.cluster.snapshot()
        assert snap["replication_factor"] == 2
        assert set(snap["shards"]) == set(cluster4.cluster.shard_ids)
        assert snap["total_entries"] == sum(
            s["entries"] for s in snap["shards"].values()
        )
        assert snap["total_entries"] == 12  # 6 entries x RF 2
        for shard in snap["shards"].values():
            assert shard["alive"] is True
            assert 0.0 <= shard["load_share"] <= 1.0

    def test_runtime_snapshot_includes_cluster_traffic(self, cluster4):
        app = cluster4.create_application("app", make_libs())
        dedup = app.deduplicable(DOUBLE_DESC)
        data = inputs(1)[0]
        dedup(data)
        cluster4.flush_all_puts()
        dedup(data)
        snap = app.runtime.snapshot()
        assert snap["calls"] == 2
        assert snap["hits"] == 1
        assert snap["puts_accepted"] == 1
        assert snap["pending_puts"] == 0
